"""Section 2.4: the Outages mailing-list survey statistics.

Paper numbers: 89 posts, 64 diagnostic, 45 with a reference event
(70.3%), 10 of which live in another administrative domain (35 usable);
partial failures are the most prevalent category.
"""

from conftest import emit

from repro.survey import analyze, build_corpus


def test_survey_statistics(benchmark):
    stats = benchmark.pedantic(
        lambda: analyze(build_corpus()), rounds=3, iterations=1
    )
    rows = [
        {
            "total": stats.total,
            "diagnostic": stats.diagnostic,
            "with_reference": stats.with_reference,
            "pct": round(stats.reference_fraction * 100, 1),
            "cross_domain": stats.cross_domain,
            "in_domain": stats.in_domain,
            "partial": stats.by_category.get("partial", 0),
            "sudden": stats.by_category.get("sudden", 0),
            "intermittent": stats.by_category.get("intermittent", 0),
        }
    ]
    emit("Section 2.4: Outages survey", rows)
    benchmark.extra_info["rows"] = rows

    assert stats.total == 89
    assert stats.diagnostic == 64
    assert stats.with_reference == 45
    assert round(stats.reference_fraction * 100, 1) == 70.3
    assert stats.cross_domain == 10
    assert stats.in_domain == 35
    # Partial failures are the most prevalent category.
    assert stats.by_category["partial"] == max(stats.by_category.values())
    # Both reference-finding strategies appear.
    assert set(stats.by_strategy) == {"look-back-in-time", "sibling-system"}
