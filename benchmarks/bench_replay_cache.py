"""Replay snapshot cache: candidate-replay phase speed-up.

The Figure 7 benchmark shows query turnaround dominated by replay;
this benchmark measures the mechanism that breaks that shape
(docs/performance.md).  The workloads are the replay-heavy diagnoses —
minimality post-passes, which replay the bad log once per candidate
change — timed with the cache off and on, plus a ``workers=2`` run to
pin the determinism contract from the same harness.

Reported per workload:

- ``replay_off_s`` / ``replay_on_s`` — the ``diffprov.replay`` phase
  total (span-tree seconds, same source as ``--metrics``), best of
  ``ROUNDS`` runs each;
- ``speedup`` — off/on ratio of the candidate-replay phase (the
  acceptance bar is >= 1.5x on at least one workload);
- cache hit/miss/store counters from the cached run;
- ``identical`` — canonical-report equality across cache-off,
  cache-on, and workers=2.

Run as a script (writes BENCH_replay_cache.json)::

    PYTHONPATH=src python benchmarks/bench_replay_cache.py --out BENCH_replay_cache.json

or through pytest-benchmark like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_replay_cache.py --benchmark-only -s
"""

import argparse
import json
import sys

from repro.core.diffprov import DiffProv, DiffProvOptions
from repro.observability import Telemetry
from repro.scenarios import ALL_SCENARIOS

# (scenario, params): replay-heavy minimality workloads.  SDN4 carries
# several candidate changes through the post-pass; SDN1 at benchmark
# scale replays a longer background-traffic log.
WORKLOADS = [
    ("SDN4", {"background_packets": 20}),
    ("SDN1", {"background_packets": 20}),
]
ROUNDS = 3


def _diagnose(name, params, replay_cache, workers=1):
    scenario = ALL_SCENARIOS[name](**params).setup()
    telemetry = Telemetry()
    options = DiffProvOptions(
        minimize=True,
        replay_cache=replay_cache,
        workers=workers,
        telemetry=telemetry,
    )
    report = DiffProv(scenario.program, options).diagnose(
        scenario.good_execution,
        scenario.bad_execution,
        scenario.good_event,
        scenario.bad_event,
        scenario.good_time,
        scenario.bad_time,
    )
    phases = {p["name"]: p["seconds"] for p in report.telemetry["phases"]}
    counters = report.telemetry["metrics"]["counters"]
    return report, phases, counters


def _best_replay_seconds(name, params, replay_cache):
    """Best-of-ROUNDS candidate-replay phase time (noise floor)."""
    best = None
    report = counters = None
    for _ in range(ROUNDS):
        report, phases, counters = _diagnose(name, params, replay_cache)
        seconds = phases.get("diffprov.replay", 0.0)
        best = seconds if best is None else min(best, seconds)
    return best, report, counters


def run_benchmark():
    rows = []
    for name, params in WORKLOADS:
        off_s, off_report, _ = _best_replay_seconds(name, params, False)
        on_s, on_report, counters = _best_replay_seconds(name, params, True)
        par_report, _, _ = _diagnose(name, params, True, workers=2)
        identical = (
            off_report.canonical_json()
            == on_report.canonical_json()
            == par_report.canonical_json()
        )
        rows.append(
            {
                "scenario": name,
                "replay_off_s": round(off_s, 4),
                "replay_on_s": round(on_s, 4),
                "speedup": round(off_s / max(on_s, 1e-9), 2),
                "replays": off_report.replays,
                "cache_hits": counters.get("replay.cache.hits", 0),
                "cache_misses": counters.get("replay.cache.misses", 0),
                "cache_stores": counters.get("replay.cache.stores", 0),
                "identical": identical,
            }
        )
    return rows


def check(rows):
    for row in rows:
        assert row["identical"], (
            f"{row['scenario']}: cache/parallel changed the report"
        )
        assert row["cache_hits"] > 0, row
    best = max(row["speedup"] for row in rows)
    assert best >= 1.5, (
        f"candidate-replay speed-up {best}x below the 1.5x bar: {rows}"
    )


def test_replay_cache_speedup(benchmark):
    rows = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    from conftest import emit

    emit("Replay cache: candidate-replay phase, off vs on", rows)
    benchmark.extra_info["rows"] = rows
    check(rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_replay_cache.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    rows = run_benchmark()
    check(rows)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(
            {"benchmark": "replay_cache", "rows": rows}, handle, indent=2
        )
        handle.write("\n")
    for row in rows:
        print(
            f"{row['scenario']:6s} replay {row['replay_off_s']*1000:7.1f}ms -> "
            f"{row['replay_on_s']*1000:7.1f}ms  ({row['speedup']}x, "
            f"{row['cache_hits']} hits/{row['cache_misses']} misses, "
            f"identical={row['identical']})"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
