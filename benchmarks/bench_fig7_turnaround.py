"""Figure 7: turnaround time of differential provenance queries.

Paper shape: query time is dominated by replaying the log to
reconstruct the relevant provenance; the DiffProv reasoning itself is
too small to be visible.  DiffProv queries cost about 2x a classic
single-tree ("Y!") query, because the bad tree must be replayed again
after each tuple change; SDN4 doubles again (two rounds).  MapReduce
queries with a reference in a *separate* execution pay one more replay
for the reference tree.

Timing comes from the pipeline's own telemetry (span-tree phase
totals), not ad-hoc stopwatches around the call, so the per-phase
breakdown in the emitted JSON matches exactly what ``diffprov diagnose
--metrics`` reports.
"""

import time

from conftest import SCENARIO_ORDER, emit, get_scenario

from repro.core import DiffProv, DiffProvOptions
from repro.observability import Telemetry
from repro.provenance.query import provenance_query

# Phases attributed to DiffProv reasoning proper (everything that is
# neither replay nor tree materialization).
REASONING_PHASES = (
    "diffprov.find_seed",
    "diffprov.divergence",
    "diffprov.make_appear",
    "diffprov.minimize",
)


def ybang_query(scenario):
    """The baseline: materialize the bad tree only (a classic query)."""
    started = time.perf_counter()
    result = scenario.bad_execution.replay()
    tree = provenance_query(result.graph, scenario.bad_event, scenario.bad_time)
    return time.perf_counter() - started, tree.size()


def diffprov_query(scenario):
    scenario.good_execution._materialized = None
    if scenario.bad_execution is not scenario.good_execution:
        scenario.bad_execution._materialized = None
    telemetry = Telemetry()
    # replay_cache=False: this benchmark reproduces the paper's
    # replay-dominated cost shape, which the snapshot cache exists to
    # break (bench_replay_cache.py measures that side).
    debugger = DiffProv(
        scenario.program,
        DiffProvOptions(telemetry=telemetry, replay_cache=False),
    )
    report = debugger.diagnose(
        scenario.good_execution,
        scenario.bad_execution,
        scenario.good_event,
        scenario.bad_event,
        scenario.good_time,
        scenario.bad_time,
    )
    return report


def test_fig7_turnaround(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for name in SCENARIO_ORDER:
            scenario = get_scenario(name)
            y_seconds, _ = ybang_query(scenario)
            report = diffprov_query(scenario)
            phases = {
                p["name"]: p["seconds"] for p in report.telemetry["phases"]
            }
            counters = report.telemetry["metrics"]["counters"]
            d_seconds = phases["diffprov.diagnose"]
            replay_seconds = phases.get("diffprov.replay", 0.0) + phases.get(
                "diffprov.query", 0.0
            )
            reasoning = sum(phases.get(key, 0.0) for key in REASONING_PHASES)
            rows.append(
                {
                    "scenario": name,
                    "yband_s": round(y_seconds, 4),
                    "diffprov_s": round(d_seconds, 4),
                    "replay+query_s": round(replay_seconds, 4),
                    "reasoning_s": round(reasoning, 5),
                    "replays": counters.get("diffprov.replays", 0),
                    "ratio": round(d_seconds / max(y_seconds, 1e-9), 2),
                    "phases": {
                        name: round(seconds, 5)
                        for name, seconds in sorted(phases.items())
                    },
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Figure 7: query turnaround (DiffProv vs single-tree baseline)", rows)
    benchmark.extra_info["rows"] = rows

    for row in rows:
        # Replay/tree-query dominates; reasoning is negligible.
        assert row["reasoning_s"] < 0.3 * row["diffprov_s"], row
        # DiffProv costs more than one classic query (extra replays) but
        # stays within a small constant factor of it.
        assert row["diffprov_s"] > row["yband_s"], row
        assert row["ratio"] < 12, row
        # The span tree must actually cover the replays it claims.
        assert row["replays"] >= 1, row

    # SDN4 needs two rounds, so it costs more than SDN1-SDN3.
    by_name = {r["scenario"]: r for r in rows}
    sdn_single = [by_name[n]["diffprov_s"] for n in ("SDN1", "SDN2", "SDN3")]
    assert by_name["SDN4"]["diffprov_s"] > min(sdn_single)
