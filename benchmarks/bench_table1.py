"""Table 1: vertexes returned by the five diagnostic techniques.

Paper row shape per scenario: the good and bad provenance trees have
tens-to-hundreds of vertexes, the plain tree diff is comparable or
*larger*, and DiffProv returns a single change per fault (``1/1`` for
SDN4's two rounds).
"""

from conftest import emit, get_scenario, SCENARIO_ORDER

PAPER_TABLE1 = {
    "SDN1": {"good": 156, "bad": 201, "diff": 278, "diffprov": [1]},
    "SDN2": {"good": 156, "bad": 156, "diff": 238, "diffprov": [1]},
    "SDN3": {"good": 156, "bad": 201, "diff": 74, "diffprov": [1]},
    "SDN4": {"good": 201, "bad": 156, "diff": 278, "diffprov": [1, 1]},
    "MR1-D": {"good": 1051, "bad": 1051, "diff": 2080, "diffprov": [1]},
    "MR2-D": {"good": 1001, "bad": 976, "diff": 1526, "diffprov": [1]},
    "MR1-I": {"good": 588, "bad": 588, "diff": 1154, "diffprov": [1]},
    "MR2-I": {"good": 588, "bad": 573, "diff": 849, "diffprov": [1]},
}


def test_table1(benchmark):
    rows = []

    def regenerate():
        rows.clear()
        for name in SCENARIO_ORDER:
            scenario = get_scenario(name)
            row = scenario.table1_row()
            rows.append(
                {
                    "scenario": name,
                    "good_tree": row["good_tree"],
                    "bad_tree": row["bad_tree"],
                    "plain_diff": row["plain_diff"],
                    "diffprov": "/".join(map(str, row["diffprov_per_round"]))
                    or "0",
                    "paper_diffprov": "/".join(
                        map(str, PAPER_TABLE1[name]["diffprov"])
                    ),
                }
            )
        return rows

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit("Table 1 (vertex counts; paper DiffProv column for comparison)", rows)
    benchmark.extra_info["rows"] = rows

    for row in rows:
        name = row["scenario"]
        # Shape checks, not absolute numbers (our substrate differs):
        # DiffProv pinpoints one change per round, exactly as the paper.
        assert row["diffprov"] == row["paper_diffprov"], name
        # Trees are 1-2 orders of magnitude larger than the diagnosis.
        assert row["good_tree"] >= 30, name
        assert row["bad_tree"] >= 30, name

    # The plain diff exceeds both trees wherever the paths diverge
    # (SDN1/SDN4), reproducing the Section 2.5 butterfly effect.
    by_name = {r["scenario"]: r for r in rows}
    for name in ("SDN1", "SDN4"):
        row = by_name[name]
        assert row["plain_diff"] > max(row["good_tree"], row["bad_tree"])
