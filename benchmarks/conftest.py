"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Numbers
are attached to the pytest-benchmark report via ``extra_info`` and also
printed (run with ``-s`` to see the tables inline).
"""

import pytest

from repro.scenarios import ALL_SCENARIOS

SCENARIO_ORDER = [
    "SDN1",
    "SDN2",
    "SDN3",
    "SDN4",
    "MR1-D",
    "MR2-D",
    "MR1-I",
    "MR2-I",
]

_SCENARIO_PARAMS = {
    "SDN1": {"background_packets": 20},
    "SDN2": {"background_packets": 20},
    "SDN3": {"background_packets": 20},
    "SDN4": {"background_packets": 20},
    "MR1-D": {"corpus_lines": 20},
    "MR2-D": {"corpus_lines": 20},
    "MR1-I": {"corpus_lines": 20},
    "MR2-I": {"corpus_lines": 20},
}

_cache = {}


def get_scenario(name):
    """Build (and cache) a scenario at benchmark scale."""
    if name not in _cache:
        scenario = ALL_SCENARIOS[name](**_SCENARIO_PARAMS.get(name, {}))
        scenario.setup()
        _cache[name] = scenario
    return _cache[name]


@pytest.fixture(params=SCENARIO_ORDER)
def scenario(request):
    return get_scenario(request.param)


def emit(title, rows):
    """Print a small aligned table of benchmark results."""
    if not rows:
        return
    keys = list(rows[0])
    widths = {
        k: max(len(str(k)), *(len(str(r[k])) for r in rows)) for k in keys
    }
    print(f"\n== {title} ==")
    print("  ".join(str(k).ljust(widths[k]) for k in keys))
    for row in rows:
        print("  ".join(str(row[k]).ljust(widths[k]) for k in keys))
