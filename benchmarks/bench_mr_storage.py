"""Section 6.5 (MapReduce side): logs stay tiny because they hold only
metadata.

Paper numbers: 26 kB of log for a 12.8 GB Wikipedia input, 1.5 kB for a
1 GB corpus.  Shape: the log size is essentially *independent* of the
input size — it records the 235 config entries, the mapper signature,
and the input file's path + checksum, never the contents.
"""

from conftest import emit

from repro.mapreduce.config import JobConfig
from repro.mapreduce.corpus import generate_corpus
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import ImperativeMapReduceExecution
from repro.mapreduce.wordcount import CORRECT_MAPPER

CORPUS_LINES = [50, 500, 5000]


def log_size_for(lines):
    hdfs = HDFS()
    stored = hdfs.write("/in.txt", generate_corpus(lines=lines))
    execution = ImperativeMapReduceExecution(
        "job", hdfs, "/in.txt", JobConfig(), CORRECT_MAPPER
    )
    return stored.size_bytes, execution.log.total_bytes


def test_mr_log_is_metadata_only(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for lines in CORPUS_LINES:
            input_bytes, log_bytes = log_size_for(lines)
            rows.append(
                {
                    "corpus_lines": lines,
                    "input_bytes": input_bytes,
                    "log_bytes": log_bytes,
                    "ratio": round(log_bytes / input_bytes, 4),
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Section 6.5: MapReduce log size vs input size", rows)
    benchmark.extra_info["rows"] = rows

    # The log does not grow with the input (metadata only): a 100x
    # larger corpus leaves the log unchanged.
    sizes = [row["log_bytes"] for row in rows]
    assert max(sizes) == min(sizes)
    # And it is small in absolute terms (the paper's is kilobytes).
    assert sizes[0] < 32_000
    # While the input grows by ~100x.
    assert rows[-1]["input_bytes"] > 50 * rows[0]["input_bytes"]
