"""Section 6.3: ten queries with unsuitable reference events.

Paper shape: every query fails with a typed error — three because the
seeds have different types, seven because alignment would require
changing immutable tuples — and the output indicates what aspect of the
reference caused the problem.
"""

from conftest import emit

from repro.scenarios.unsuitable import UnsuitableReferenceStudy


def test_unsuitable_references(benchmark):
    study = UnsuitableReferenceStudy(background_packets=8, corpus_lines=14)
    outcomes = benchmark.pedantic(study.run, rounds=1, iterations=1)
    tally = UnsuitableReferenceStudy.tally(outcomes)
    rows = [
        {"scenario": o.scenario, "category": o.category} for o in outcomes
    ]
    emit("Section 6.3: unsuitable-reference queries", rows)
    emit("tally", [tally])
    benchmark.extra_info["tally"] = tally

    assert len(outcomes) == 10
    assert all(not o.success for o in outcomes)
    assert tally == {"seed-type-mismatch": 3, "immutable-change-required": 7}
    assert all(o.message for o in outcomes)
