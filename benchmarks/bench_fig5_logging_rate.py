"""Figure 5: log growth rate vs. traffic rate (500-byte packets).

Paper shape: the logging rate 1) scales linearly with the traffic rate
from 1 Mbps to 10 Gbps, and 2) stays well within a commodity SSD's
sequential write rate (~400 MB/s) even at 10 Gbps — because only a
fixed-size record (header + timestamp) is kept per packet, at the
border switch only.
"""

from conftest import emit

from repro.replay.log import PACKET_RECORD_BYTES, EventLog
from repro.sdn import model
from repro.sdn.traces import TraceConfig, packets_for_rate, synthetic_trace

RATES_MBPS = [1, 10, 100, 1000, 10_000]
PACKET_SIZE = 500
WINDOW_SECONDS = 0.1  # simulated capture window per rate
SSD_WRITE_RATE_MBPS = 400 * 8  # 400 MB/s


def log_window(rate_mbps):
    """Log one simulated capture window at the given traffic rate."""
    count = packets_for_rate(rate_mbps, PACKET_SIZE, WINDOW_SECONDS)
    trace = synthetic_trace(TraceConfig(count=min(count, 20_000), seed=rate_mbps))
    log = EventLog()
    logged = 0
    for packet in trace:
        log.append(
            "insert",
            model.packet("border", logged, packet.src, packet.dst),
            mutable=False,
            size=PACKET_RECORD_BYTES,
        )
        logged += 1
    # Scale up if the window was capped (keeps the benchmark bounded
    # while accounting the true packet count).
    scale = count / max(1, logged)
    return log.total_bytes * scale, count


def test_fig5_logging_rate(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for rate in RATES_MBPS:
            window_bytes, packets = log_window(rate)
            rate_mbps_logged = window_bytes * 8 / WINDOW_SECONDS / 1e6
            rows.append(
                {
                    "traffic_mbps": rate,
                    "packets": packets,
                    "log_mbps": round(rate_mbps_logged, 3),
                    "log_MBps": round(rate_mbps_logged / 8, 3),
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Figure 5: logging rate vs traffic rate (500B packets)", rows)
    benchmark.extra_info["rows"] = rows

    # Linear scaling: each 10x rate step gives ~10x the log rate.
    for previous, current in zip(rows, rows[1:]):
        ratio = current["log_mbps"] / previous["log_mbps"]
        assert 8 <= ratio <= 12, (previous, current)

    # Within the SSD's sequential write rate even at 10 Gbps.
    assert rows[-1]["log_mbps"] < SSD_WRITE_RATE_MBPS

    # The per-packet record is fixed-size: log rate is exactly
    # (record/packet_size) of the traffic rate.
    expected_fraction = PACKET_RECORD_BYTES / PACKET_SIZE
    for row in rows:
        fraction = row["log_mbps"] / row["traffic_mbps"]
        assert abs(fraction - expected_fraction) < 0.02, row
