"""Ablation 1 (Section 2.5): taint equivalence vs. naive comparison.

Without the taint-based equivalence relation, small differences at the
leaves (headers, timestamps) cascade into a butterfly effect: the plain
diff reports differences almost everywhere, and DiffProv itself — run
with taints disabled — can no longer even align the seeds and fails.
"""

from conftest import emit, get_scenario

from repro.core import DiffProvOptions
from repro.provenance.diff import tree_edit_distance


def test_naive_diff_blowup(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for name in ("SDN1", "SDN4"):
            scenario = get_scenario(name)
            good, bad = scenario.trees()
            report = scenario.diagnose()
            rows.append(
                {
                    "scenario": name,
                    "good_tree": good.size(),
                    "bad_tree": bad.size(),
                    "plain_diff": scenario.plain_diff_size(),
                    "edit_distance": tree_edit_distance(good, bad),
                    "diffprov": report.num_changes,
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation: naive diff vs DiffProv", rows)
    benchmark.extra_info["rows"] = rows

    for row in rows:
        # The strawmen report tens of differences; DiffProv reports the
        # root cause only.
        assert row["plain_diff"] > max(row["good_tree"], row["bad_tree"])
        assert row["edit_distance"] > 5 * row["diffprov"]
        assert row["diffprov"] <= 2


def test_diffprov_without_taints_fails(benchmark):
    scenario = get_scenario("SDN1")

    def run():
        scenario.good_execution._materialized = None
        return scenario.diagnose(DiffProvOptions(enable_taint=False, max_rounds=3))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # Without APPLYTAINT the expected counterparts are the good run's
    # literal tuples (wrong packet headers), so alignment cannot finish.
    assert not report.success
    benchmark.extra_info["failure"] = report.failure_category
