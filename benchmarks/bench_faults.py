"""Robustness sweep: DiffProv turnaround and coverage under message loss.

Not a paper figure — this extends the Figure 7 turnaround measurement
to a faulty substrate.  SDN1's broken-flow-entry diagnosis is rerun at
increasing loss rates (applied to both provenance logging and remote
partition fetches).  Shape asserted: the diagnosis keeps localizing
the root cause at every rate (graceful degradation, never a crash),
the fault-free run is not degraded while lossy runs are, coverage
(``fetched_fraction``) stays high because timed-out fetches are
retried and lost provenance is recovered from the event log, and the
retry/recovery overhead stays within a small constant factor of the
fault-free turnaround.

Turnaround and retry/timeout counts come from the diagnosis telemetry
(span phases and the deterministic metrics snapshot) rather than
stopwatches around the call, and each row carries its per-phase
breakdown.
"""

from conftest import emit

from repro.core import DiffProvOptions
from repro.observability import Telemetry
from repro.scenarios import ALL_SCENARIOS

LOSS_RATES = (0.0, 0.01, 0.05, 0.10)
SEED = 7
ROOT_CAUSE_PREFIX = "4.3.2.0/23"


def build_scenario(rate):
    """SDN1-F at benchmark scale with both loss knobs set to ``rate``."""
    spec = (
        f"loss={rate:g},fetch-loss={rate:g},retries=3,timeout=1,seed={SEED}"
    )
    scenario = ALL_SCENARIOS["SDN1-F"](background_packets=20, faults=spec)
    scenario.setup()  # the primary (faulty) run, outside the timed query
    return scenario


def test_fault_degradation_sweep(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for rate in LOSS_RATES:
            scenario = build_scenario(rate)
            telemetry = Telemetry()
            report = scenario.diagnose(DiffProvOptions(telemetry=telemetry))
            phases = {
                p["name"]: p["seconds"] for p in report.telemetry["phases"]
            }
            counters = report.telemetry["metrics"]["counters"]
            stats = list(report.distributed_stats.values())
            timeouts = sum(
                counters.get(f"distributed.{side}.timeouts", 0)
                for side in ("good", "bad")
            )
            retries = sum(
                counters.get(f"distributed.{side}.retries", 0)
                for side in ("good", "bad")
            )
            rows.append(
                {
                    "loss_pct": round(100 * rate, 1),
                    "turnaround_s": round(phases["diffprov.diagnose"], 4),
                    "success": report.success,
                    "degraded": report.degraded,
                    "lost_events": report.lost_events,
                    "fetched_fraction": round(
                        min(s.fetched_fraction for s in stats), 4
                    ),
                    "timeouts": timeouts,
                    "retries": retries,
                    "replays": counters.get("diffprov.replays", 0),
                    "root_cause": any(
                        ROOT_CAUSE_PREFIX in str(change)
                        for change in report.changes
                    ),
                    "phases": {
                        name: round(seconds, 5)
                        for name, seconds in sorted(phases.items())
                    },
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Fault sweep: turnaround + coverage vs message-loss rate", rows)
    benchmark.extra_info["rows"] = rows

    for row in rows:
        # Graceful degradation: every rate still localizes the fault.
        assert row["success"], row
        assert row["root_cause"], row
        assert row["fetched_fraction"] > 0, row
        # The distribution accounting is attached on healthy runs too.
        assert row["fetched_fraction"] <= 1.0, row

    baseline, lossy = rows[0], rows[1:]
    # The fraction of the graph a tree query touches is small (background
    # traffic inflates the graph); what matters is that retries keep the
    # lossy coverage close to the fault-free coverage.
    for row in lossy:
        assert row["fetched_fraction"] >= 0.5 * baseline["fetched_fraction"], (
            row,
            baseline,
        )
    assert not baseline["degraded"] and baseline["lost_events"] == 0
    assert baseline["timeouts"] == 0 and baseline["retries"] == 0
    # Nonzero loss is detected and surfaced, not silently absorbed.
    assert all(r["degraded"] for r in lossy), rows
    assert all(r["lost_events"] > 0 for r in lossy), rows
    # Recovery replays and retries cost time, but only a small factor.
    worst = max(r["turnaround_s"] for r in lossy)
    assert worst < 25 * max(baseline["turnaround_s"], 1e-3), rows
