"""Figure 6: log growth rate vs. packet size at 1 Gbps.

Paper shape: the logging rate *decreases* as packets grow, because the
log stores a fixed-size record per packet — bigger packets mean fewer
packets (and records) per second at a fixed bit rate.
"""

from conftest import emit

from repro.replay.log import PACKET_RECORD_BYTES, EventLog
from repro.sdn import model
from repro.sdn.traces import TraceConfig, packets_for_rate, synthetic_trace

RATE_MBPS = 1000  # 1 Gbps
PACKET_SIZES = [500, 750, 1000, 1250, 1500]
WINDOW_SECONDS = 0.01


def test_fig6_packet_size(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for size in PACKET_SIZES:
            count = packets_for_rate(RATE_MBPS, size, WINDOW_SECONDS)
            trace = synthetic_trace(TraceConfig(count=min(count, 20_000), seed=size))
            log = EventLog()
            for index, packet in enumerate(trace):
                log.append(
                    "insert",
                    model.packet("border", index, packet.src, packet.dst),
                    mutable=False,
                    size=PACKET_RECORD_BYTES,
                )
            scale = count / max(1, len(trace))
            log_mbps = log.total_bytes * scale * 8 / WINDOW_SECONDS / 1e6
            rows.append(
                {
                    "packet_size": size,
                    "packets_per_window": count,
                    "log_mbps": round(log_mbps, 3),
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Figure 6: logging rate vs packet size at 1 Gbps", rows)
    benchmark.extra_info["rows"] = rows

    # Strictly decreasing in packet size.
    for previous, current in zip(rows, rows[1:]):
        assert current["log_mbps"] < previous["log_mbps"], (previous, current)

    # 3x larger packets -> ~3x lower logging rate.
    assert rows[0]["log_mbps"] / rows[-1]["log_mbps"] > 2.5
