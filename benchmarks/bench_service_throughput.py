"""Diagnosis service: throughput scaling, overload shedding, latency.

The service's job is to keep diagnosis latency bounded under load by
shedding what it cannot serve (docs/service.md).  This benchmark
measures the three promises:

- ``throughput`` — requests/second for a burst of DNS diagnoses at
  1, 2 and 4 workers (the same request served by a bigger fleet);
- ``shed_rate`` — the fraction of a 2x-capacity flood that gets a
  typed ``overloaded`` response instead of queueing unboundedly
  (must be non-zero: admission control is on);
- ``p50_admitted_s`` vs ``p50_unloaded_s`` — median latency of the
  requests *admitted* during the flood, which the bounded queue must
  keep within 2x of the unloaded median (shedding pays for latency).

Run as a script (writes BENCH_service.json)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --out BENCH_service.json

or through pytest-benchmark like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py --benchmark-only -s
"""

import argparse
import asyncio
import json
import statistics
import sys
import time

from repro.service import DiagnosisServer, ServiceClient

WORKER_COUNTS = [1, 2, 4]
BURST = 24          # throughput burst per worker count
# A one-shard, one-slot server for the overload stage: admitted work
# never shares the CPU with other diagnoses, so the admitted/unloaded
# latency ratio isolates what admission control promises (no unbounded
# queueing) from plain core contention on small CI boxes.
CAPACITY = 1        # max_queue for the overload stage (covers in-flight)
FLOOD_ROUNDS = 8    # rounds of 2x-capacity bursts
LATENCY_SAMPLES = 10


# The latency stage uses a minimality run (~0.25s of worker time) so
# the admitted/unloaded ratio measures queueing, not the fixed
# per-request dispatch overhead that dominates a ~5ms DNS diagnosis.
LATENCY_SCENARIO = ("SDN1", {"minimize": True})


async def _timed_diagnose(client):
    scenario, options = LATENCY_SCENARIO
    start = time.perf_counter()
    response = await client.diagnose(scenario, options=options)
    return response, time.perf_counter() - start


async def _warm(client, count):
    """Touch every shard so the measured runs hit warm caches."""
    for _ in range(count):
        response = await client.diagnose("DNS")
        assert response["status"] == "ok", response


async def _throughput(workers):
    async with DiagnosisServer(workers=workers, max_queue=2 * BURST) as server:
        client = ServiceClient(server)
        await _warm(client, 2 * workers)
        start = time.perf_counter()
        responses = await asyncio.gather(
            *[client.diagnose("DNS") for _ in range(BURST)]
        )
        elapsed = time.perf_counter() - start
    assert all(r["status"] == "ok" for r in responses)
    return BURST / elapsed


async def _overload():
    """2x-capacity floods: shed rate plus admitted/unloaded latency."""
    async with DiagnosisServer(workers=CAPACITY, max_queue=CAPACITY) as server:
        client = ServiceClient(server)
        for _ in range(2 * CAPACITY):  # warm every shard on the workload
            response, _seconds = await _timed_diagnose(client)
            assert response["status"] == "ok", response

        unloaded = []
        for _ in range(LATENCY_SAMPLES):
            response, seconds = await _timed_diagnose(client)
            assert response["status"] == "ok"
            unloaded.append(seconds)

        admitted, shed, total = [], 0, 0
        for _ in range(FLOOD_ROUNDS):
            outcomes = await asyncio.gather(
                *[_timed_diagnose(client) for _ in range(2 * CAPACITY)]
            )
            for response, seconds in outcomes:
                total += 1
                if response["status"] == "overloaded":
                    assert response["reason"] == "queue-full", response
                    assert response["retry_after_s"] > 0, response
                    shed += 1
                else:
                    assert response["status"] == "ok", response
                    admitted.append(seconds)
    return {
        "flood_requests": total,
        "admitted": len(admitted),
        "shed": shed,
        "shed_rate": round(shed / total, 3),
        "p50_unloaded_s": round(statistics.median(unloaded), 4),
        "p50_admitted_s": round(statistics.median(admitted), 4),
    }


def run_benchmark():
    throughput = {
        str(workers): round(asyncio.run(_throughput(workers)), 1)
        for workers in WORKER_COUNTS
    }
    overload = asyncio.run(_overload())
    return {"throughput_rps": throughput, "overload": overload}


def check(results):
    for workers, rps in results["throughput_rps"].items():
        assert rps > 0, f"no throughput at {workers} workers: {results}"
    overload = results["overload"]
    assert overload["shed_rate"] > 0, (
        f"a 2x flood shed nothing — admission control is off: {overload}"
    )
    assert overload["admitted"] > 0, overload
    # The bounded queue's whole point: being admitted still means
    # being served promptly.
    assert overload["p50_admitted_s"] <= 2 * overload["p50_unloaded_s"], (
        f"admitted latency blew past 2x the unloaded median: {overload}"
    )


def test_service_throughput(benchmark):
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    from conftest import emit

    emit("Diagnosis service: throughput, shedding, latency", [results])
    benchmark.extra_info["results"] = results
    check(results)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_service.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    results = run_benchmark()
    check(results)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump({"benchmark": "service", **results}, handle, indent=2)
        handle.write("\n")
    for workers in WORKER_COUNTS:
        print(f"workers={workers}: "
              f"{results['throughput_rps'][str(workers)]:7.1f} req/s")
    overload = results["overload"]
    print(f"2x overload: shed {overload['shed']}/{overload['flood_requests']} "
          f"({overload['shed_rate']:.0%}), admitted p50 "
          f"{overload['p50_admitted_s']*1000:.1f}ms vs unloaded "
          f"{overload['p50_unloaded_s']*1000:.1f}ms")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
