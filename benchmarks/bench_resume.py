"""Journal overhead and resume payoff (docs/resilience.md).

The write-ahead journal buys crash-safety with one fsync'd JSONL line
per phase boundary, round, and candidate verdict.  This benchmark pins
the cost and the payoff:

- ``journal_overhead`` — journaled wall-time over unjournaled
  wall-time, minus one; the acceptance bar is **< 5%** of the uncached
  diagnosis (``fsync=True``, the crash-safe default).  A
  ``journal_overhead_nofsync`` column shows the ``fsync=False`` knob
  for operators on slow disks.
- ``resume_speedup`` — uninterrupted wall-time over resumed wall-time
  when the journal already holds every minimality verdict (the
  best-case resume: all candidate replays skipped).
- ``identical`` — canonical-report equality across unjournaled,
  journaled, and resumed runs (the determinism contract).

Run as a script (writes BENCH_resume.json)::

    PYTHONPATH=src python benchmarks/bench_resume.py --out BENCH_resume.json

or through pytest-benchmark like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_resume.py --benchmark-only -s
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.core.diffprov import DiffProv, DiffProvOptions
from repro.resilience import DiagnosisJournal
from repro.scenarios import ALL_SCENARIOS

# Minimality workloads: one verdict line per candidate change, the
# journal's busiest shape.  Uncached (replay_cache=False) per the
# acceptance bar — the cache would hide replay work the journal's
# relative cost is measured against.
WORKLOADS = [
    ("SDN4", {"background_packets": 20}),
    ("SDN1", {"background_packets": 20}),
]
ROUNDS = 3


def _diagnose(name, params, journal=None):
    scenario = ALL_SCENARIOS[name](**params).setup()
    options = DiffProvOptions(
        minimize=True, replay_cache=False, journal=journal
    )
    started = time.perf_counter()
    report = DiffProv(scenario.program, options).diagnose(
        scenario.good_execution,
        scenario.bad_execution,
        scenario.good_event,
        scenario.bad_event,
        scenario.good_time,
        scenario.bad_time,
    )
    return report, time.perf_counter() - started


def _best(name, params, journal_path=None, resume=False, fsync=True):
    """Best-of-ROUNDS wall time (noise floor) and the last report."""
    best = None
    report = None
    for _ in range(ROUNDS):
        journal = None
        if journal_path is not None:
            if not resume and os.path.exists(journal_path):
                os.unlink(journal_path)
            journal = DiagnosisJournal(
                journal_path, resume=resume, fsync=fsync
            )
        try:
            report, seconds = _diagnose(name, params, journal)
        finally:
            if journal is not None:
                journal.close()
        best = seconds if best is None else min(best, seconds)
    return best, report


def run_benchmark():
    rows = []
    tmp = tempfile.mkdtemp(prefix="bench-resume-")
    for name, params in WORKLOADS:
        path = os.path.join(tmp, f"{name}.journal")
        plain_s, plain_report = _best(name, params)
        journaled_s, journaled_report = _best(name, params, path)
        nofsync_s, _ = _best(
            name, params, os.path.join(tmp, f"{name}-nf.journal"),
            fsync=False,
        )
        # Resume against the journal the last journaled round completed:
        # every minimality verdict is already recorded.
        resumed_s, resumed_report = _best(name, params, path, resume=True)
        identical = (
            plain_report.canonical_json()
            == journaled_report.canonical_json()
            == resumed_report.canonical_json()
        )
        journal_section = (resumed_report.resilience or {}).get("journal", {})
        rows.append(
            {
                "scenario": name,
                "plain_s": round(plain_s, 4),
                "journaled_s": round(journaled_s, 4),
                "resumed_s": round(resumed_s, 4),
                "journal_overhead": round(journaled_s / plain_s - 1.0, 4),
                "journal_overhead_nofsync": round(
                    nofsync_s / plain_s - 1.0, 4
                ),
                "resume_speedup": round(plain_s / max(resumed_s, 1e-9), 2),
                "skipped_candidates": journal_section.get(
                    "skipped_candidates", 0
                ),
                "identical": identical,
            }
        )
    return rows


def check(rows):
    for row in rows:
        assert row["identical"], (
            f"{row['scenario']}: journaling or resume changed the report"
        )
        # The acceptance bar: crash-safe journaling costs < 5% of the
        # uncached diagnosis wall-time.
        assert row["journal_overhead"] < 0.05, (
            f"{row['scenario']}: journal overhead "
            f"{row['journal_overhead']:.1%} breaches the 5% bar: {row}"
        )
    assert any(row["skipped_candidates"] > 0 for row in rows), rows


def test_resume_overhead(benchmark):
    rows = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    from conftest import emit

    emit("Diagnosis journal: overhead and resume payoff", rows)
    benchmark.extra_info["rows"] = rows
    check(rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_resume.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    rows = run_benchmark()
    check(rows)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump({"benchmark": "resume", "rows": rows}, handle, indent=2)
        handle.write("\n")
    for row in rows:
        print(row)
    return 0


if __name__ == "__main__":
    sys.exit(main())
