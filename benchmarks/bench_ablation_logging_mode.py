"""Ablation 3 (Section 5): runtime vs. query-time provenance capture.

The logging engine can either materialize provenance while the system
runs ("runtime" mode: every packet pays; queries are instant) or log
base events only and reconstruct provenance by replay when a query
arrives ("query-time" mode: cheap at runtime, the paper's choice since
diagnostic queries are rare).  The benchmark measures both sides of the
trade.
"""

import time

from conftest import emit

from repro.provenance.query import provenance_query
from repro.replay import Execution
from repro.scenarios.sdn1 import figure1_topology, install_figure1_config
from repro.sdn import model
from repro.sdn.traces import TraceConfig, synthetic_trace

PACKETS = 200


def build(mode):
    program = model.sdn_program()
    execution = Execution(program, mode=mode)
    install_figure1_config(execution, figure1_topology(), "4.3.2.0/24")
    trace = synthetic_trace(
        TraceConfig(count=PACKETS, src_prefixes=("4.3.2.0/23",), seed=9)
    )
    started = time.perf_counter()
    last_event = None
    for index, packet in enumerate(trace):
        execution.insert(
            model.packet("s1", index, packet.src, packet.dst), mutable=False
        )
    runtime_seconds = time.perf_counter() - started
    return execution, runtime_seconds


def query_time(execution):
    # Query the last packet that reached web1.
    deliveries = None
    started = time.perf_counter()
    graph = execution.graph
    live = graph.live_tuples("delivered")
    tree = provenance_query(graph, live[-1])
    seconds = time.perf_counter() - started
    return seconds, tree.size()


def test_logging_modes(benchmark):
    rows = []

    def run():
        rows.clear()
        for mode in ("runtime", "query-time"):
            execution, runtime_seconds = build(mode)
            first_query_seconds, size = query_time(execution)
            second_query_seconds, _ = query_time(execution)
            rows.append(
                {
                    "mode": mode,
                    "runtime_s": round(runtime_seconds, 4),
                    "first_query_s": round(first_query_seconds, 4),
                    "repeat_query_s": round(second_query_seconds, 5),
                    "tree": size,
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: runtime vs query-time provenance capture", rows)
    benchmark.extra_info["rows"] = rows

    runtime_row = rows[0]
    query_row = rows[1]
    # Query-time mode is cheaper while the system runs ...
    assert query_row["runtime_s"] < runtime_row["runtime_s"]
    # ... but pays a replay on the first diagnostic query.
    assert query_row["first_query_s"] > runtime_row["first_query_s"]
    # Both modes answer the same tree.
    assert runtime_row["tree"] == query_row["tree"]
