"""Observability overhead: the ops surface must cost (almost) nothing.

The fleet-wide operations layer — per-tenant SLO books, the flight
recorder, worker metric deltas, trace-context derivation — is on by
default (``DiagnosisServer(ops=True)``), so its cost is paid by every
request whether or not anyone scrapes it.  This benchmark serves the
same warmed burst of DNS diagnoses twice, with the ops surface on and
off, and asserts the throughput difference stays under 5%.

Run as a script (writes BENCH_observability.json)::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --out BENCH_observability.json

or through pytest-benchmark like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_observability_overhead.py --benchmark-only -s
"""

import argparse
import asyncio
import json
import sys
import time

from repro.service import DiagnosisServer, ServiceClient

BURST = 24          # requests per measured round
ROUNDS = 3          # best-of-N to shrug off scheduler noise
WARMUP = 4          # per-server warm requests (cold caches measured once)
OVERHEAD_BUDGET = 0.05


async def _burst_rps(ops):
    """Best-of-``ROUNDS`` requests/second for one server config."""
    async with DiagnosisServer(
        workers=1, max_queue=2 * BURST, ops=ops,
    ) as server:
        client = ServiceClient(server)
        for _ in range(WARMUP):
            response = await client.diagnose("DNS")
            assert response["status"] == "ok", response
        best = 0.0
        for _ in range(ROUNDS):
            start = time.perf_counter()
            responses = await asyncio.gather(
                *[client.diagnose("DNS") for _ in range(BURST)]
            )
            elapsed = time.perf_counter() - start
            assert all(r["status"] == "ok" for r in responses)
            best = max(best, BURST / elapsed)
        if ops:
            # The books must actually have been kept during the runs
            # we just timed — otherwise this measures nothing.
            book = server.ops.slo.snapshot()["default"]
            assert book["ok"] == WARMUP + ROUNDS * BURST, book
    return best


def run_benchmark():
    # Best-of-N per configuration shrugs off one-sided scheduler
    # noise; the 5% budget leaves room for what remains.
    rps_on = asyncio.run(_burst_rps(ops=True))
    rps_off = asyncio.run(_burst_rps(ops=False))
    overhead = max(0.0, (rps_off - rps_on) / rps_off) if rps_off else 0.0
    return {
        "requests": ROUNDS * BURST,
        "rps_ops_on": round(rps_on, 1),
        "rps_ops_off": round(rps_off, 1),
        "overhead": round(overhead, 4),
        "budget": OVERHEAD_BUDGET,
    }


def check(results):
    assert results["rps_ops_on"] > 0, results
    assert results["rps_ops_off"] > 0, results
    assert results["overhead"] < OVERHEAD_BUDGET, (
        f"ops surface costs {results['overhead']:.1%} of throughput, "
        f"budget is {OVERHEAD_BUDGET:.0%}: {results}"
    )


def test_observability_overhead(benchmark):
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    from conftest import emit

    emit("Observability overhead: ops surface on vs off", [results])
    benchmark.extra_info["results"] = results
    check(results)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_observability.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    results = run_benchmark()
    check(results)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump({"benchmark": "observability", **results}, handle, indent=2)
        handle.write("\n")
    print(f"ops on : {results['rps_ops_on']:7.1f} req/s")
    print(f"ops off: {results['rps_ops_off']:7.1f} req/s")
    print(f"overhead: {results['overhead']:.2%} "
          f"(budget {results['budget']:.0%})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
