"""Section 6.4: runtime latency overhead of logging.

Paper numbers: +6.7% per-packet latency in the SDN setup, +2.3% for a
MapReduce job, dropping to +0.2% once HDFS checksums are computed at
write time instead of on every read ("the dominating cost was getting
the checksums of the data files in HDFS").

Shape to reproduce: logging keeps a small overhead relative to the
primary system, and the checksum cache removes most of the MapReduce
cost.  Absolute percentages differ from the paper — our in-process
Python job has no disk/JVM work to hide the instrumentation behind —
so the assertions check ordering, not magnitudes.
"""

import time

from conftest import emit

from repro.mapreduce.config import JobConfig
from repro.mapreduce.corpus import generate_corpus
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import WordCountJob
from repro.mapreduce.wordcount import CORRECT_MAPPER
from repro.provenance.recorder import ProvenanceRecorder
from repro.replay.execution import Execution
from repro.scenarios.sdn1 import figure1_topology, install_figure1_config
from repro.sdn import model
from repro.sdn.traces import TraceConfig, synthetic_trace

PACKETS = 300
REPEATS = 5
CORPUS_LINES = 400
SPLIT_READS = 60  # tasks re-read their input splits


def stream_packets(logging_enabled):
    program = model.sdn_program()
    execution = Execution(program, logging_enabled=logging_enabled)
    install_figure1_config(execution, figure1_topology(), "4.3.2.0/24")
    trace = synthetic_trace(
        TraceConfig(count=PACKETS, src_prefixes=("10.0.0.0/8",), seed=3)
    )
    started = time.perf_counter()
    for index, packet in enumerate(trace):
        execution.insert(
            model.packet("s1", index, packet.src, packet.dst), mutable=False
        )
    return time.perf_counter() - started


def run_job(record, cache_checksums):
    hdfs = HDFS(cache_checksums=cache_checksums)
    hdfs.write("/in.txt", generate_corpus(lines=CORPUS_LINES))
    job = WordCountJob("job", hdfs, "/in.txt", JobConfig(), CORRECT_MAPPER)
    recorder = ProvenanceRecorder() if record else None
    started = time.perf_counter()
    for _ in range(SPLIT_READS):
        hdfs.read("/in.txt")
    job.run(recorder)
    return time.perf_counter() - started


def _best(fn, *args):
    return min(fn(*args) for _ in range(REPEATS))


def test_sdn_logging_latency(benchmark):
    baseline = _best(stream_packets, False)
    benchmark.pedantic(lambda: stream_packets(True), rounds=1, iterations=1)
    logged = _best(stream_packets, True)
    overhead = (logged - baseline) / baseline * 100
    rows = [
        {
            "setup": "SDN (per-packet logging)",
            "baseline_s": round(baseline, 4),
            "logged_s": round(logged, 4),
            "overhead_pct": round(overhead, 2),
            "paper_pct": 6.7,
        }
    ]
    emit("Section 6.4: SDN logging latency", rows)
    benchmark.extra_info["rows"] = rows
    # Logging appends one fixed-size record per packet: the overhead
    # must be a small fraction of packet processing.
    assert overhead < 30


def test_mapreduce_logging_latency(benchmark):
    baseline = _best(run_job, False, True)
    uncached = _best(run_job, True, False)
    cached = _best(run_job, True, True)
    benchmark.pedantic(lambda: run_job(True, True), rounds=1, iterations=1)
    rows = [
        {
            "setup": "MapReduce, checksums per read",
            "seconds": round(uncached, 4),
            "overhead_pct": round((uncached - baseline) / baseline * 100, 1),
            "paper_pct": 2.3,
        },
        {
            "setup": "MapReduce, checksums cached",
            "seconds": round(cached, 4),
            "overhead_pct": round((cached - baseline) / baseline * 100, 1),
            "paper_pct": 0.2,
        },
    ]
    emit("Section 6.4: MapReduce logging latency", rows)
    benchmark.extra_info["rows"] = rows
    # Caching checksums removes the dominating cost (the paper's
    # 2.3% -> 0.2% optimization).
    assert cached < uncached


def test_checksum_cache_effect(benchmark):
    """The dominating MapReduce cost is checksumming on every read."""

    def reads(cache):
        hdfs = HDFS(cache_checksums=cache)
        hdfs.write("/in.txt", generate_corpus(lines=200))
        for _ in range(50):
            hdfs.read("/in.txt")
        return hdfs.checksum_computations

    cached_computations = reads(True)
    uncached_computations = reads(False)
    benchmark.pedantic(lambda: reads(True), rounds=1, iterations=1)
    benchmark.extra_info["cached"] = cached_computations
    benchmark.extra_info["uncached"] = uncached_computations
    assert cached_computations == 1
    assert uncached_computations == 51
