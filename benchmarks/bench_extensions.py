"""Extension benchmarks: the features beyond the paper's prototype.

Not a paper table — these quantify the §4.8/§4.9 extensions so their
costs are on record next to the reproduced figures:

- automatic reference discovery (candidates tried, total time) vs. an
  operator-supplied reference;
- the Δ-minimization post-pass (extra replays bought by it);
- distributed query accounting (fraction of the graph materialized).
"""

import time

from conftest import emit

from repro.core import DiffProv, DiffProvOptions
from repro.core.autoref import auto_diagnose
from repro.provenance.distributed import PartitionedProvenance
from repro.scenarios.dns import DNSStaleReplica
from repro.scenarios.flap import FlappingRoute
from repro.scenarios.sdn1 import SDN1BrokenFlowEntry


def test_autoref_overhead(benchmark):
    scenario = DNSStaleReplica().setup()

    def operator_supplied():
        scenario.good_execution._materialized = None
        return scenario.diagnose()

    def automatic():
        scenario.good_execution._materialized = None
        return auto_diagnose(
            scenario.program,
            scenario.good_execution,
            scenario.bad_execution,
            scenario.bad_event,
        )

    started = time.perf_counter()
    manual_report = operator_supplied()
    manual_seconds = time.perf_counter() - started
    started = time.perf_counter()
    result = automatic()
    auto_seconds = time.perf_counter() - started
    benchmark.pedantic(automatic, rounds=1, iterations=1)

    rows = [
        {
            "mode": "operator reference",
            "seconds": round(manual_seconds, 4),
            "tried": 1,
            "changes": manual_report.num_changes,
        },
        {
            "mode": "automatic reference",
            "seconds": round(auto_seconds, 4),
            "tried": len(result.tried),
            "changes": result.report.num_changes,
        },
    ]
    emit("Extension: automatic reference discovery", rows)
    benchmark.extra_info["rows"] = rows
    assert result.found
    # The automatic search finds the same diagnosis, paying one full
    # diagnosis attempt per candidate tried.
    assert result.report.changes == manual_report.changes
    assert len(result.tried) >= 1


def test_minimization_cost(benchmark):
    scenario = SDN1BrokenFlowEntry(background_packets=12).setup()

    def run(minimize):
        scenario.good_execution._materialized = None
        report = scenario.diagnose(DiffProvOptions(minimize=minimize))
        return report

    plain = run(False)
    minimized = run(True)
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    rows = [
        {"mode": "plain", "replays": plain.replays,
         "changes": plain.num_changes},
        {"mode": "minimize", "replays": minimized.replays,
         "changes": minimized.num_changes},
    ]
    emit("Extension: Δ minimization", rows)
    benchmark.extra_info["rows"] = rows
    assert minimized.changes == plain.changes  # nothing to drop here
    # The post-pass costs up to one replay per change (+ variants).
    assert minimized.replays <= plain.replays + 2 * plain.num_changes


def test_distributed_query_fraction(benchmark):
    scenario = FlappingRoute(flaps=3, probes_per_phase=3).setup()
    partitioned = PartitionedProvenance(scenario.good_execution.graph)

    def query():
        return partitioned.query(scenario.good_event)

    tree, stats = benchmark.pedantic(query, rounds=3, iterations=1)
    rows = [
        {
            "graph_vertexes": stats.graph_size,
            "fetched": stats.vertices_fetched,
            "fraction": round(stats.fetched_fraction, 3),
            "cross_node": stats.cross_node_fetches,
            "nodes": len(stats.nodes_contacted),
        }
    ]
    emit("Extension: distributed query accounting (§4.8)", rows)
    benchmark.extra_info["rows"] = rows
    # "Only that part of the provenance tree is materialized on demand":
    # one query touches a small fraction of the global graph.
    assert stats.fetched_fraction < 0.25
