"""Engine hot path: join indexes, interned tuples, lazy provenance.

Every DiffProv phase bottoms out in candidate replays
(``diffprov.replay``), which is exactly where the hot-path rework
lands: composite join indexes planned per rule, a head-predicate
dispatch index, interned tuples, and a provenance recorder that
records compact annotations instead of eagerly building the
seven-vertex graph on every replay.  This benchmark pins the claim
from both sides:

- ``replay_linear_s`` — the linear-scan, eager-provenance reference
  engine (``EngineConfig("reference")``), the mode the equivalence
  tests compare against;
- ``replay_eager_s`` — indexed joins but eager provenance
  (``EngineConfig(backend="indexed", provenance="eager")``), isolating
  the recorder share of the win;
- ``replay_fast_s`` — the defaults (compiled/annotated);
- ``speedup`` — linear/fast ratio of the candidate-replay phase (the
  acceptance bar is >= 2x on at least one workload);
- ``index_hits``/``index_misses``/``reconstructions`` — the
  MetricsRegistry counters proving the fast path actually engaged;
- ``identical`` — canonical-report byte-equality across the reference
  engine, the defaults at workers 1/2/4, replay-cache on and off, and
  a journal-resumed run (the determinism contract).

Run as a script (writes BENCH_engine_hotpath.json)::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --out BENCH_engine_hotpath.json

or through pytest-benchmark like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_hotpath.py --benchmark-only -s
"""

import argparse
import json
import os
import sys
import tempfile

from repro.core.diffprov import DiffProv, DiffProvOptions
from repro.datalog import EngineConfig
from repro.observability import Telemetry
from repro.resilience import DiagnosisJournal
from repro.scenarios import ALL_SCENARIOS

# Two fig7-family workloads at a scale where access paths matter.
# MR1-D's declarative wordcount joins scan the word table (hundreds of
# tuples per replay) — the composite-index showcase.  SDN1 joins
# against small flow tables, so it bounds the win from below on
# scan-light programs.
WORKLOADS = [
    ("MR1-D", {"corpus_lines": 120}),
    ("SDN1", {"background_packets": 120}),
]
ROUNDS = 3


def _diagnose(
    name,
    params,
    engine=None,
    workers=1,
    replay_cache=False,
    journal=None,
):
    scenario = ALL_SCENARIOS[name](**params).setup()
    config = EngineConfig.coerce(engine)
    for execution in {
        id(scenario.good_execution): scenario.good_execution,
        id(scenario.bad_execution): scenario.bad_execution,
    }.values():
        execution.engine_config = config
    telemetry = Telemetry()
    options = DiffProvOptions(
        minimize=True,
        replay_cache=replay_cache,
        workers=workers,
        telemetry=telemetry,
        journal=journal,
    )
    report = DiffProv(scenario.program, options).diagnose(
        scenario.good_execution,
        scenario.bad_execution,
        scenario.good_event,
        scenario.bad_event,
        scenario.good_time,
        scenario.bad_time,
    )
    phases = {p["name"]: p["seconds"] for p in report.telemetry["phases"]}
    counters = report.telemetry["metrics"]["counters"]
    return report, phases, counters


def _best_replay_seconds(name, params, **config):
    """Best-of-ROUNDS candidate-replay phase time (noise floor)."""
    best = None
    report = counters = None
    for _ in range(ROUNDS):
        report, phases, counters = _diagnose(name, params, **config)
        seconds = phases.get("diffprov.replay", 0.0)
        best = seconds if best is None else min(best, seconds)
    return best, report, counters


def run_benchmark():
    rows = []
    tmp = tempfile.mkdtemp(prefix="bench-hotpath-")
    for name, params in WORKLOADS:
        linear_s, linear_report, _ = _best_replay_seconds(
            name, params, engine="reference"
        )
        eager_s, eager_report, _ = _best_replay_seconds(
            name,
            params,
            engine=EngineConfig(backend="indexed", provenance="eager"),
        )
        fast_s, fast_report, counters = _best_replay_seconds(name, params)

        # Determinism matrix: workers x replay-cache x resume.
        reports = [linear_report, eager_report, fast_report]
        for workers in (2, 4):
            report, _, _ = _diagnose(name, params, workers=workers)
            reports.append(report)
        cached_report, _, _ = _diagnose(name, params, replay_cache=True)
        reports.append(cached_report)
        journal_path = os.path.join(tmp, f"{name}.journal")
        journal = DiagnosisJournal(journal_path, resume=False)
        try:
            report, _, _ = _diagnose(name, params, journal=journal)
        finally:
            journal.close()
        reports.append(report)
        journal = DiagnosisJournal(journal_path, resume=True)
        try:
            resumed_report, _, _ = _diagnose(name, params, journal=journal)
        finally:
            journal.close()
        reports.append(resumed_report)

        canonical = fast_report.canonical_json()
        identical = all(r.canonical_json() == canonical for r in reports)
        journal_section = (resumed_report.resilience or {}).get("journal", {})
        rows.append(
            {
                "scenario": name,
                "replay_linear_s": round(linear_s, 4),
                "replay_eager_s": round(eager_s, 4),
                "replay_fast_s": round(fast_s, 4),
                "speedup": round(linear_s / max(fast_s, 1e-9), 2),
                "lazy_share": round(eager_s / max(fast_s, 1e-9), 2),
                "index_hits": counters.get("engine.index.hits", 0),
                "index_misses": counters.get("engine.index.misses", 0),
                "reconstructions": counters.get(
                    "provenance.lazy.reconstructions", 0
                ),
                "resumed_skips": journal_section.get("skipped_candidates", 0),
                "identical": identical,
            }
        )
    return rows


def check(rows):
    for row in rows:
        assert row["identical"], (
            f"{row['scenario']}: the hot path changed the report"
        )
        assert row["index_hits"] > 0, row
    best = max(row["speedup"] for row in rows)
    assert best >= 2.0, (
        f"candidate-replay speed-up {best}x below the 2x bar: {rows}"
    )


def test_engine_hotpath_speedup(benchmark):
    rows = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    from conftest import emit

    emit("Engine hot path: candidate-replay phase, reference vs fast", rows)
    benchmark.extra_info["rows"] = rows
    check(rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_engine_hotpath.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    rows = run_benchmark()
    check(rows)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(
            {"benchmark": "engine_hotpath", "rows": rows}, handle, indent=2
        )
        handle.write("\n")
    for row in rows:
        print(
            f"{row['scenario']:6s} replay {row['replay_linear_s']*1000:7.1f}ms -> "
            f"{row['replay_fast_s']*1000:7.1f}ms  ({row['speedup']}x, "
            f"{row['index_hits']} index hits, "
            f"{row['reconstructions']} reconstructions, "
            f"identical={row['identical']})"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
