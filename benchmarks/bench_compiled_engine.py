"""Compiled columnar backend vs the indexed interpreter at scale.

The compiled backend (``EngineConfig("compiled")``) exists for one
workload: the Section 6.7 Stanford network at paper scale, where each
candidate replay against the indexed backend must *clone* the whole
configuration (hundreds of thousands of flow entries) while the
compiled backend forks it copy-on-write in O(switches).  This
benchmark pins that claim on a scaled-down-but-still-large Stanford
build (28k entries/router, ~448k total):

- ``compiled_s`` / ``indexed_s`` — wall-clock seconds for one full
  DiffProv diagnosis under each backend (setup/build excluded);
- ``speedup`` — indexed/compiled ratio; the acceptance bar is >= 5x;
- ``identical`` — the two reports are byte-identical
  (``canonical_json``), the equivalence contract at scale;
- with ``--full-scale``, one extra compiled-only row at the paper's
  757k entries / 1500 ACLs proving the full-scale diagnosis completes
  in seconds (the reference/indexed engines need minutes there, which
  is exactly why the compiled backend exists).

Run as a script (writes BENCH_compiled_engine.json)::

    PYTHONPATH=src python benchmarks/bench_compiled_engine.py --out BENCH_compiled_engine.json

or through pytest-benchmark like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_compiled_engine.py --benchmark-only -s
"""

import argparse
import json
import sys
import time

from repro.scenarios.stanford import StanfordForwardingError

# Large enough that the per-replay configuration copy dominates the
# indexed backend, small enough for CI: ~448k forwarding entries.
SCALED = {"entries_per_router": 28_000, "acl_rules": 1000}
BACKGROUND = 40
SPEEDUP_BAR = 5.0


def _diagnose(engine, background=BACKGROUND, **params):
    scenario = StanfordForwardingError(
        background_packets=background, engine=engine, **params
    ).setup()
    started = time.perf_counter()
    report = scenario.diagnose()
    seconds = time.perf_counter() - started
    return scenario, report, seconds


def run_benchmark(full_scale=False):
    rows = []

    scenario, compiled_report, compiled_s = _diagnose("compiled", **SCALED)
    _, indexed_report, indexed_s = _diagnose("indexed", **SCALED)
    identical = (
        compiled_report.canonical_json() == indexed_report.canonical_json()
    )
    rows.append(
        {
            "workload": "stanford-scaled",
            "entries": scenario.config.total_entries(),
            "acl_rules": SCALED["acl_rules"],
            "compiled_s": round(compiled_s, 3),
            "indexed_s": round(indexed_s, 3),
            "speedup": round(indexed_s / max(compiled_s, 1e-9), 2),
            "identical": identical,
            "diffprov_changes": compiled_report.num_changes,
            "success": compiled_report.success,
        }
    )

    if full_scale:
        scenario, report, seconds = _diagnose(
            "compiled", background=400, full_scale=True
        )
        rows.append(
            {
                "workload": "stanford-full-scale",
                "entries": scenario.config.total_entries(),
                "acl_rules": 1500,
                "compiled_s": round(seconds, 3),
                "indexed_s": None,
                "speedup": None,
                "identical": None,
                "diffprov_changes": report.num_changes,
                "success": report.success,
            }
        )
    return rows


def check(rows):
    scaled = rows[0]
    assert scaled["success"], scaled
    assert scaled["diffprov_changes"] == 1, scaled
    assert scaled["identical"], (
        "compiled and indexed reports diverged at scale"
    )
    assert scaled["speedup"] >= SPEEDUP_BAR, (
        f"compiled speedup {scaled['speedup']}x below the "
        f"{SPEEDUP_BAR}x bar: {rows}"
    )
    for row in rows[1:]:
        assert row["success"] and row["diffprov_changes"] == 1, row
        # "Diagnosis in seconds" at 757k entries, not minutes.
        assert row["compiled_s"] < 60, row


def test_compiled_engine_speedup(benchmark):
    rows = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    from conftest import emit

    emit("Compiled backend vs indexed interpreter (scaled Stanford)", rows)
    benchmark.extra_info["rows"] = rows
    check(rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_compiled_engine.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--full-scale", action="store_true",
        help="also run the paper-scale 757k-entry diagnosis (compiled only)",
    )
    args = parser.parse_args(argv)
    rows = run_benchmark(full_scale=args.full_scale)
    check(rows)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(
            {"benchmark": "compiled_engine", "rows": rows}, handle, indent=2
        )
        handle.write("\n")
    for row in rows:
        if row["indexed_s"] is not None:
            print(
                f"{row['workload']:22s} {row['entries']:>7d} entries  "
                f"indexed {row['indexed_s']:6.2f}s -> compiled "
                f"{row['compiled_s']:6.2f}s  ({row['speedup']}x, "
                f"identical={row['identical']})"
            )
        else:
            print(
                f"{row['workload']:22s} {row['entries']:>7d} entries  "
                f"compiled {row['compiled_s']:6.2f}s "
                f"(changes={row['diffprov_changes']})"
            )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
