"""Ablation 2 (Section 4.7): good-tree-guided search vs. blind search.

DiffProv uses the good tree as a guide, so its work is linear in |T_G|
and it replays once per round.  The naive alternative enumerates
combinations of mutable base-tuple changes, replaying after each try —
exponential in the number of faults.  We measure both on SDN-style
programs with one and two faults.
"""

import time

from conftest import emit

from repro.core import DiffProv
from repro.core.blindsearch import blind_search, candidate_changes
from repro.datalog import parse_program, parse_tuple
from repro.replay import Execution

PROGRAM = """
table stim(Id, Y) event immutable.
table cfg(K, V) mutable.
table stage1(Id, Y) event.
table stage2(Id, Y) event.
table final(Id).
table fallback(Id).

r1 stage1(Id, Y) :- stim(Id, Y), cfg('first', Y).
r2 stage2(Id, Y) :- stage1(Id, Y), cfg('second', Y).
r3 final(Id) :- stage2(Id, Y), cfg('third', Y).
r4 fallback(Id) :- stim(Id, Y).
"""

NOISE_KEYS = 12  # unrelated config entries enlarging the search space


def build(faults):
    """A good run and a bad run with ``faults`` broken stages.

    The noise config entries differ between the runs (as real deployed
    configurations do), so the blind search must consider them all as
    candidate changes — that is exactly what blows its search space up.
    """
    program = parse_program(PROGRAM)
    good = Execution(program, name="good")
    bad = Execution(program, name="bad")
    good_id, bad_id = 1, 2
    for execution, broken, offset in ((good, 0, 0), (bad, faults, 100)):
        for index in range(NOISE_KEYS):
            execution.insert(parse_tuple(f"cfg('noise{index}', {index + offset})"))
        for stage_index, stage in enumerate(("first", "second", "third")):
            value = 5 if stage_index >= broken else 6 + stage_index
            execution.insert(parse_tuple(f"cfg('{stage}', {value})"))
    good.insert(parse_tuple(f"stim({good_id}, 5)"))
    bad.insert(parse_tuple(f"stim({bad_id}, 5)"))
    return program, good, bad, good_id, bad_id


def test_guided_vs_blind(benchmark):
    rows = []

    def run():
        rows.clear()
        for faults in (1, 2):
            program, good, bad, good_id, bad_id = build(faults)
            good_event = parse_tuple(f"final({good_id})")
            bad_event = parse_tuple(f"fallback({bad_id})")
            expected = parse_tuple(f"final({bad_id})")

            started = time.perf_counter()
            report = DiffProv(program).diagnose(good, bad, good_event, bad_event)
            guided_seconds = time.perf_counter() - started
            guided_replays = report.replays

            anchor = bad.log.index_of_insert(parse_tuple(f"stim({bad_id}, 5)"))
            started = time.perf_counter()
            blind = blind_search(good, bad, expected, anchor)
            blind_seconds = time.perf_counter() - started

            rows.append(
                {
                    "faults": faults,
                    "candidates": len(candidate_changes(good, bad)),
                    "guided_replays": guided_replays,
                    "guided_s": round(guided_seconds, 4),
                    "blind_attempts": blind.attempts,
                    "blind_s": round(blind_seconds, 4),
                    "both_correct": report.success and blind.found,
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: guided (DiffProv) vs blind search", rows)
    benchmark.extra_info["rows"] = rows

    one, two = rows
    assert one["both_correct"] and two["both_correct"]
    # Guided work grows by one round per fault ...
    assert two["guided_replays"] <= one["guided_replays"] + 2
    # ... while blind attempts explode combinatorially.
    assert two["blind_attempts"] > 8 * one["blind_attempts"]
    assert two["blind_attempts"] > 20 * two["guided_replays"]
