"""Streaming monitor: throughput, diagnosis latency, GC (docs/streaming.md).

The monitor's promises are operational, so the benchmark pins the three
that matter at 3am:

- ``events_per_s`` — sustained ingest-to-record throughput over the
  whole FLAP-S stream (every down-phase diagnosed, nothing shed).
- ``diag_p50_ms`` / ``diag_p95_ms`` — detection-to-diagnosis latency
  per incident: the time from an incident entering the pending queue's
  head to its record being emitted (window materialization, reference
  selection, and the DiffProv rounds included).
- ``peak_live`` — the GC claim: peak live window state is O(window),
  not O(stream).  **Doubling the stream length must leave peak memory
  flat** (the acceptance bar: byte-equal ``peak_live`` across all
  stream lengths at a fixed ``capacity``).

Run as a script (writes BENCH_streaming.json)::

    PYTHONPATH=src python benchmarks/bench_streaming.py --out BENCH_streaming.json

or through pytest-benchmark like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py --benchmark-only -s
"""

import argparse
import json
import sys
import time

from repro.streaming import ScenarioStreamSource, StreamMonitor

# Doubling stream lengths at one fixed window capacity: the flat-peak
# column is the whole point, the throughput columns ride along.
FLAPS = (25, 50, 100)
CAPACITY = 24


class _TimedMonitor(StreamMonitor):
    """StreamMonitor that times each incident's diagnosis turnaround."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.latencies_s = []

    def _diagnose(self, incident, probe):
        started = time.perf_counter()
        try:
            return super()._diagnose(incident, probe)
        finally:
            self.latencies_s.append(time.perf_counter() - started)


def _percentile(values, fraction):
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _run(flaps):
    source = ScenarioStreamSource.for_name("FLAP-S", flaps=flaps)
    monitor = _TimedMonitor(source, capacity=CAPACITY)
    started = time.perf_counter()
    monitor.run()
    wall_s = time.perf_counter() - started
    summary = monitor.summary()
    return {
        "flaps": flaps,
        "events": summary.watermark,
        "wall_s": round(wall_s, 4),
        "events_per_s": round(summary.watermark / wall_s, 1),
        "diagnoses": summary.diagnoses,
        "degraded": summary.degraded,
        "shed": summary.shed,
        "diag_p50_ms": round(_percentile(monitor.latencies_s, 0.50) * 1e3, 2),
        "diag_p95_ms": round(_percentile(monitor.latencies_s, 0.95) * 1e3, 2),
        "peak_live": summary.peak_live,
    }


def run_benchmark():
    return [_run(flaps) for flaps in FLAPS]


def check(rows):
    baseline = rows[0]
    for row in rows:
        # Completeness on the clean stream: one diagnosis per
        # down-phase, none degraded, none shed.
        assert row["diagnoses"] == row["flaps"], row
        assert row["degraded"] == 0 and row["shed"] == 0, row
        assert row["diag_p50_ms"] <= row["diag_p95_ms"], row
        # The GC acceptance bar: stream length grew 4x across the rows,
        # peak live window state did not move at all.
        assert row["peak_live"] == baseline["peak_live"], (
            f"GC leak: peak_live {row['peak_live']} at flaps={row['flaps']} "
            f"vs {baseline['peak_live']} at flaps={baseline['flaps']}"
        )
    assert rows[-1]["events"] >= 2 * rows[0]["events"], rows


def test_streaming_monitor(benchmark):
    rows = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    from conftest import emit

    emit("Streaming monitor: throughput, latency, flat-peak GC", rows)
    benchmark.extra_info["rows"] = rows
    check(rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_streaming.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    rows = run_benchmark()
    check(rows)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump({"benchmark": "streaming", "rows": rows}, handle, indent=2)
        handle.write("\n")
    for row in rows:
        print(row)
    return 0


if __name__ == "__main__":
    sys.exit(main())
