"""Section 6.7: complex network diagnostics (the Stanford setup).

Paper shape: the provenance trees of the fault and the reference are
small (67 and 75 vertexes — the fault involves few hops) yet the plain
diff is larger than either (108); despite 20 unrelated injected faults
and heavy background traffic, DiffProv identifies exactly the one
misconfigured entry on S2 (here: the drop rule for 172.20.10.32/27 on
oz2).

Under pytest, ``--full-scale`` semantics come from the environment
variable ``STANFORD_FULL_SCALE=1`` (47k entries/router, 1.5k ACLs).
As a script the flags are explicit::

    PYTHONPATH=src python benchmarks/bench_stanford.py --full-scale --engine compiled

The full-scale run is only practical with the compiled backend (the
default): the indexed/reference engines copy the 757k-entry
configuration per candidate replay, the compiled one forks it
copy-on-write.
"""

import argparse
import os
import sys
import time

from repro.scenarios.stanford import StanfordForwardingError

FULL_SCALE = bool(os.environ.get("STANFORD_FULL_SCALE"))


def test_stanford_forwarding_error(benchmark):
    from conftest import emit

    scenario = StanfordForwardingError(
        full_scale=FULL_SCALE,
        background_packets=200 if not FULL_SCALE else 400,
    )
    scenario.setup()

    def diagnose():
        scenario.good_execution._materialized = None
        return scenario.diagnose()

    report = benchmark.pedantic(diagnose, rounds=1, iterations=1)
    good, bad = scenario.trees()
    rows = [
        {
            "entries": scenario.config.total_entries(),
            "injected_faults": len(scenario.faults),
            "good_tree": good.size(),
            "bad_tree": bad.size(),
            "plain_diff": scenario.plain_diff_size(),
            "diffprov": report.num_changes,
            "paper": "67/75 trees, 108 diff, 1 root cause",
        }
    ]
    emit("Section 6.7: Stanford forwarding error", rows)
    benchmark.extra_info["rows"] = rows

    assert report.success
    # Exactly the injected fault, in spite of the 20 decoys.
    assert report.num_changes == 1
    assert report.changes[0].remove == (scenario.expected_fault,)
    # Small trees (few hops), diff larger than either tree.
    assert good.size() < 120 and bad.size() < 120
    assert rows[0]["plain_diff"] > max(good.size(), bad.size())


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full-scale", action="store_true",
        help="the paper's 47k entries/router + 1500 ACLs (757k total)",
    )
    parser.add_argument(
        "--engine", default=None,
        choices=("compiled", "indexed", "reference"),
        help="evaluation backend (default: compiled)",
    )
    parser.add_argument(
        "--background", type=int, default=None,
        help="background packets (default: 200, or 400 at full scale)",
    )
    args = parser.parse_args(argv)

    background = args.background
    if background is None:
        background = 400 if args.full_scale else 200
    built = time.perf_counter()
    scenario = StanfordForwardingError(
        full_scale=args.full_scale,
        background_packets=background,
        engine=args.engine,
    ).setup()
    build_s = time.perf_counter() - built
    entries = scenario.config.total_entries()
    print(
        f"built {entries} entries / {len(scenario.faults)} injected faults "
        f"in {build_s:.1f}s (engine={args.engine or 'compiled'})"
    )
    started = time.perf_counter()
    report = scenario.diagnose()
    seconds = time.perf_counter() - started
    print(
        f"diagnosis: {seconds:.2f}s, {report.num_changes} change(s), "
        f"success={report.success}"
    )
    assert report.success and report.num_changes == 1
    assert report.changes[0].remove == (scenario.expected_fault,)
    return 0


if __name__ == "__main__":
    sys.exit(main())
