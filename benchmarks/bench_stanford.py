"""Section 6.7: complex network diagnostics (the Stanford setup).

Paper shape: the provenance trees of the fault and the reference are
small (67 and 75 vertexes — the fault involves few hops) yet the plain
diff is larger than either (108); despite 20 unrelated injected faults
and heavy background traffic, DiffProv identifies exactly the one
misconfigured entry on S2 (here: the drop rule for 172.20.10.32/27 on
oz2).

Run with ``--full-scale`` semantics by setting the environment variable
``STANFORD_FULL_SCALE=1`` (47k entries/router, 1.5k ACLs — slow).
"""

import os

from conftest import emit

from repro.scenarios.stanford import StanfordForwardingError

FULL_SCALE = bool(os.environ.get("STANFORD_FULL_SCALE"))


def test_stanford_forwarding_error(benchmark):
    scenario = StanfordForwardingError(
        full_scale=FULL_SCALE,
        background_packets=200 if not FULL_SCALE else 400,
    )
    scenario.setup()

    def diagnose():
        scenario.good_execution._materialized = None
        return scenario.diagnose()

    report = benchmark.pedantic(diagnose, rounds=1, iterations=1)
    good, bad = scenario.trees()
    rows = [
        {
            "entries": scenario.config.total_entries(),
            "injected_faults": len(scenario.faults),
            "good_tree": good.size(),
            "bad_tree": bad.size(),
            "plain_diff": scenario.plain_diff_size(),
            "diffprov": report.num_changes,
            "paper": "67/75 trees, 108 diff, 1 root cause",
        }
    ]
    emit("Section 6.7: Stanford forwarding error", rows)
    benchmark.extra_info["rows"] = rows

    assert report.success
    # Exactly the injected fault, in spite of the 20 decoys.
    assert report.num_changes == 1
    assert report.changes[0].remove == (scenario.expected_fault,)
    # Small trees (few hops), diff larger than either tree.
    assert good.size() < 120 and bad.size() < 120
    assert rows[0]["plain_diff"] > max(good.size(), bad.size())
