"""Query-time scaling: turnaround vs. log length (Section 6.6's claim).

"Query time is dominated by the time it takes to replay the log and to
reconstruct the relevant part of the provenance graph."  Consequently
the turnaround of a DiffProv query should grow roughly linearly with
the amount of logged traffic, while the reasoning share stays flat —
that is what this sweep verifies on SDN1 with increasing background
load.
"""

from conftest import emit

from repro.scenarios.sdn1 import SDN1BrokenFlowEntry


def run_at(background):
    scenario = SDN1BrokenFlowEntry(background_packets=background).setup()
    report = scenario.diagnose()
    assert report.success
    replay_seconds = report.timings.get("replay", 0.0) + report.timings.get(
        "query", 0.0
    )
    return {
        "background_packets": background,
        "log_entries": len(scenario.bad_execution.log),
        "total_s": round(report.total_seconds, 4),
        "replay_s": round(replay_seconds, 4),
        "reasoning_ms": round(report.reasoning_seconds * 1000, 2),
    }


def test_turnaround_scales_with_log(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for background in (10, 40, 160):
            rows.append(run_at(background))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Scaling: DiffProv turnaround vs logged traffic", rows)
    benchmark.extra_info["rows"] = rows

    small, medium, large = rows
    # Replay dominates at every scale ...
    for row in rows:
        assert row["replay_s"] > 0.5 * row["total_s"], row
    # ... and grows with the log ...
    assert large["replay_s"] > medium["replay_s"] > small["replay_s"]
    # ... roughly linearly: 16x the traffic costs well under 100x.
    assert large["total_s"] < 100 * max(small["total_s"], 1e-4)
    # The reasoning stays in the milliseconds regardless of load.
    assert all(row["reasoning_ms"] < 50 for row in rows)
