"""Rollback planning: verification throughput, cold vs cached replays.

Every candidate plan costs one anchored replay of the bad log, and all
of those replays share the pre-anchor prefix — exactly the shape the
replay snapshot cache (docs/performance.md) exists for.  This
benchmark times the ``diffprov.repair`` phase (probe-suite
construction plus every plan verification) with the cache off and on,
and reports plans verified per second.

Reported per workload:

- ``repair_cold_s`` / ``repair_cached_s`` — the repair phase total
  (span-tree seconds, same source as ``--metrics``), best of
  ``ROUNDS`` runs each;
- ``speedup`` — cold/cached ratio (acceptance bar: >= 1.5x on at
  least one workload);
- ``plans`` / ``plans_per_s`` — enumerated plans over the cached
  phase time;
- ``identical`` — canonical-report equality across cold, cached, and
  ``workers=2`` (the repair section is part of the determinism
  contract, so the benchmark doubles as a regression check).

Run as a script (writes BENCH_repair.json)::

    PYTHONPATH=src python benchmarks/bench_repair.py --out BENCH_repair.json

or through pytest-benchmark like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_repair.py --benchmark-only -s
"""

import argparse
import json
import sys

from repro.core.diffprov import DiffProv, DiffProvOptions
from repro.observability import Telemetry
from repro.scenarios import ALL_SCENARIOS

# Benchmark-scale SDN workloads: more background traffic means longer
# logs to replay per verification and a bigger probe suite to hold.
WORKLOADS = [
    ("SDN1", {"background_packets": 20}),
    ("SDN4", {"background_packets": 20}),
]
ROUNDS = 3


def _diagnose(name, params, replay_cache, workers=1):
    scenario = ALL_SCENARIOS[name](**params).setup()
    telemetry = Telemetry()
    options = DiffProvOptions(
        repair=True,
        replay_cache=replay_cache,
        workers=workers,
        telemetry=telemetry,
    )
    report = DiffProv(scenario.program, options).diagnose(
        scenario.good_execution,
        scenario.bad_execution,
        scenario.good_event,
        scenario.bad_event,
        scenario.good_time,
        scenario.bad_time,
    )
    phases = {p["name"]: p["seconds"] for p in report.telemetry["phases"]}
    return report, phases


def _best_repair_seconds(name, params, replay_cache):
    """Best-of-ROUNDS repair phase time (noise floor)."""
    best = None
    report = None
    for _ in range(ROUNDS):
        report, phases = _diagnose(name, params, replay_cache)
        seconds = phases.get("diffprov.repair", 0.0)
        best = seconds if best is None else min(best, seconds)
    return best, report


def run_benchmark():
    rows = []
    for name, params in WORKLOADS:
        cold_s, cold_report = _best_repair_seconds(name, params, False)
        cached_s, cached_report = _best_repair_seconds(name, params, True)
        par_report, _ = _diagnose(name, params, True, workers=2)
        identical = (
            cold_report.canonical_json()
            == cached_report.canonical_json()
            == par_report.canonical_json()
        )
        section = cached_report.repair
        plans = len(section["plans"]) + len(section["rejected"])
        rows.append(
            {
                "scenario": name,
                "repair_cold_s": round(cold_s, 4),
                "repair_cached_s": round(cached_s, 4),
                "speedup": round(cold_s / max(cached_s, 1e-9), 2),
                "plans": plans,
                "verified": len(section["plans"]),
                "probes": section["probes"],
                "replays": section["replays"],
                "plans_per_s": round(plans / max(cached_s, 1e-9), 1),
                "identical": identical,
            }
        )
    return rows


def check(rows):
    for row in rows:
        assert row["identical"], (
            f"{row['scenario']}: cache/parallel changed the repair section"
        )
        assert row["verified"] >= 1, row
    best = max(row["speedup"] for row in rows)
    assert best >= 1.5, (
        f"cached repair speed-up {best}x below the 1.5x bar: {rows}"
    )


def test_repair_throughput(benchmark):
    rows = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    from conftest import emit

    emit("Rollback planning: verification replays, cold vs cached", rows)
    benchmark.extra_info["rows"] = rows
    check(rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_repair.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    rows = run_benchmark()
    check(rows)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump({"benchmark": "repair", "rows": rows}, handle, indent=2)
        handle.write("\n")
    for row in rows:
        print(
            f"{row['scenario']:6s} repair {row['repair_cold_s']*1000:7.1f}ms -> "
            f"{row['repair_cached_s']*1000:7.1f}ms  ({row['speedup']}x, "
            f"{row['plans']} plans, {row['plans_per_s']}/s, "
            f"identical={row['identical']})"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
