"""Figure 8: decomposition of DiffProv's reasoning time.

Paper shape: the actual reasoning takes milliseconds (3.8 ms worst
case); detecting the first divergence and making missing tuples appear
dominate it (taint tracking + formula evaluation), while seed finding
is negligible.
"""

from conftest import SCENARIO_ORDER, emit, get_scenario

from repro.core import DiffProv


def decompose(scenario):
    scenario.good_execution._materialized = None
    if scenario.bad_execution is not scenario.good_execution:
        scenario.bad_execution._materialized = None
    report = DiffProv(scenario.program).diagnose(
        scenario.good_execution,
        scenario.bad_execution,
        scenario.good_event,
        scenario.bad_event,
        scenario.good_time,
        scenario.bad_time,
    )
    return report


def test_fig8_reasoning_decomposition(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for name in SCENARIO_ORDER:
            report = decompose(get_scenario(name))
            timings = report.timings
            rows.append(
                {
                    "scenario": name,
                    "find_seed_ms": round(timings.get("find_seed", 0) * 1000, 3),
                    "divergence_ms": round(timings.get("divergence", 0) * 1000, 3),
                    "make_appear_ms": round(
                        timings.get("make_appear", 0) * 1000, 3
                    ),
                    "reasoning_ms": round(report.reasoning_seconds * 1000, 3),
                    "replay_ms": round(
                        (timings.get("replay", 0) + timings.get("query", 0))
                        * 1000,
                        1,
                    ),
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Figure 8: reasoning time decomposition (milliseconds)", rows)
    benchmark.extra_info["rows"] = rows

    for row in rows:
        # Reasoning is small in absolute terms and vs. replay.
        assert row["reasoning_ms"] < row["replay_ms"], row
        # Seed finding is the cheapest phase.
        assert row["find_seed_ms"] <= max(
            row["divergence_ms"], row["make_appear_ms"]
        ) or row["find_seed_ms"] < 1.0, row
