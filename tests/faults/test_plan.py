"""FaultPlan: spec parsing, validation, and canonical round-trips."""

import pytest

from repro.errors import FaultSpecError
from repro.faults import FaultPlan


class TestParsing:
    def test_empty_spec_is_the_zero_plan(self):
        assert FaultPlan.parse("").is_zero()
        assert FaultPlan().is_zero()

    def test_rates_and_seed(self):
        plan = FaultPlan.parse("drop=0.1,dup=0.05,loss=0.2,seed=7")
        assert plan.drop == 0.1
        assert plan.duplicate == 0.05
        assert plan.prov_loss == 0.2
        assert plan.seed == 7
        assert not plan.is_zero()

    def test_retry_and_timeout_knobs(self):
        plan = FaultPlan.parse("fetch-loss=0.3,retries=5,timeout=2")
        assert plan.fetch_loss == 0.3
        assert plan.max_retries == 5
        assert plan.timeout_steps == 2

    def test_unreachable_nodes(self):
        plan = FaultPlan.parse("unreachable=s3|s4")
        assert plan.unreachable == ("s3", "s4")

    def test_flap_windows_accumulate(self):
        plan = FaultPlan.parse("flap=s2:1:10:40,flap=s2:*:50:60")
        assert ("s2", 1, 10, 40) in plan.flaps
        assert ("s2", None, 50, 60) in plan.flaps

    def test_crash_window(self):
        plan = FaultPlan.parse("crash=s3:5:60")
        assert plan.crashes == (("s3", 5, 60),)

    def test_whitespace_and_empty_tokens_tolerated(self):
        plan = FaultPlan.parse(" drop = 0.1 , , seed = 3 ")
        assert plan.drop == 0.1
        assert plan.seed == 3


class TestValidation:
    @pytest.mark.parametrize(
        "spec",
        [
            "drop",                # no '='
            "drop=",               # empty value
            "drop=fast",           # not a number
            "drop=1.5",            # rate outside [0, 1]
            "loss=-0.1",
            "seed=two",
            "bogus=1",             # unknown key
            "unreachable=",        # no nodes
            "flap=s2:1:10",        # too few fields
            "flap=s2:x:10:40",     # bad port
            "flap=s2:1:40:10",     # empty window
            "crash=s3:60:5",
        ],
    )
    def test_bad_specs_raise_typed_errors(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_error_carries_the_offending_token(self):
        with pytest.raises(FaultSpecError, match="drop=fast"):
            FaultPlan.parse("seed=1,drop=fast")

    def test_constructor_validates_rates_too(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(drop=2.0)
        with pytest.raises(FaultSpecError):
            FaultPlan(max_retries=-1)


class TestCanonicalForm:
    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "seed=7,drop=0.1",
            "loss=0.1,fetch-loss=0.15,retries=3,seed=11",
            "unreachable=s4|s3,flap=s2:1:10:40,crash=s3:5:60",
            "delay=0.2,delay-steps=4",
        ],
    )
    def test_describe_round_trips(self, spec):
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_equal_plans_hash_equal(self):
        a = FaultPlan.parse("drop=0.1,seed=3,unreachable=s1|s2")
        b = FaultPlan.parse("unreachable=s2|s1,seed=3,drop=0.1")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_seeds_differ(self):
        assert FaultPlan(seed=1) != FaultPlan(seed=2)
