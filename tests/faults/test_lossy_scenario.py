"""Integration: DiffProv under lossy provenance still finds the bug.

The acceptance bar from the robustness issue: at 10% provenance loss
(plus fallible fetches) the SDN1 diagnosis must come back degraded but
correct — no uncaught exception, the broken flow entry localized, and
the retries/timeouts visible in the distributed query stats.
"""

import json

import pytest

from repro.cli import main
from repro.scenarios import ALL_SCENARIOS

ROOT_CAUSE = "4.3.2.0/23"


def lossy_scenario(seed, loss="0.1"):
    return ALL_SCENARIOS["SDN1-F"](
        background_packets=8,
        faults=f"loss={loss},fetch-loss=0.15,retries=3,seed={seed}",
    )


class TestLossyDiagnosis:
    def test_default_plan_localizes_the_root_cause(self):
        report = ALL_SCENARIOS["SDN1-F"]().diagnose()
        assert report.success
        assert report.degraded
        assert any(ROOT_CAUSE in c.describe() for c in report.changes)
        assert report.lost_events > 0
        # Retry/timeout accounting from the fallible fetches is visible.
        stats = report.distributed_stats
        assert set(stats) == {"good", "bad"}
        assert sum(s.fetch_attempts for s in stats.values()) > 0
        assert sum(s.timeouts + s.retries for s in stats.values()) > 0

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_ten_percent_loss_across_seeds(self, seed):
        report = lossy_scenario(seed).diagnose()
        assert report.success, report.summary()
        assert report.degraded
        assert any(ROOT_CAUSE in c.describe() for c in report.changes)

    def test_confidence_is_likely_under_degradation(self):
        report = lossy_scenario(seed=3).diagnose()
        candidates = report.candidates()
        assert candidates
        change, confidence = candidates[0]
        assert ROOT_CAUSE in change.describe()
        assert confidence == "likely"

    def test_summary_reports_the_degradation(self):
        text = lossy_scenario(seed=3).diagnose().summary()
        assert "DEGRADED" in text
        assert "recovered by replaying the event log" in text
        assert "distributed[" in text

    def test_diagnosis_is_repeatable(self):
        first = lossy_scenario(seed=7).diagnose()
        second = lossy_scenario(seed=7).diagnose()
        assert first.changes == second.changes
        assert first.lost_events == second.lost_events
        assert first.summary() == second.summary()

    def test_unreachable_interior_node_does_not_crash(self):
        # s3 is on the bad packet's path; the bad tree loses subtrees
        # but the diagnosis must return a typed report, not raise.
        scenario = ALL_SCENARIOS["SDN1"](
            background_packets=8, faults="unreachable=s3"
        )
        report = scenario.diagnose()
        assert report is not None
        if report.success:
            assert any(ROOT_CAUSE in c.describe() for c in report.changes)
        else:
            assert report.failure_category is not None


class TestFaultsFlag:
    def test_cli_diagnose_with_faults(self, capsys):
        assert (
            main(
                [
                    "--json",
                    "diagnose",
                    "SDN1",
                    "--faults",
                    "loss=0.1,fetch-loss=0.15,retries=3,seed=3",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["success"]
        assert data["degraded"]
        assert data["faults"].startswith("seed=3")
        assert data["lost_events"] > 0
        assert set(data["distributed"]) == {"bad", "good"}
        assert data["confidences"] == ["likely"]

    def test_cli_zero_plan_emits_no_fault_keys(self, capsys):
        assert main(["--json", "diagnose", "SDN2", "--faults", "seed=5"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["success"]
        assert "degraded" not in data
        assert "faults" not in data

    def test_cli_rejects_bad_spec(self, capsys):
        assert main(["diagnose", "SDN1", "--faults", "drop=fast"]) == 2
        err = capsys.readouterr().err
        assert "drop=fast" in err
