"""Fault-aware distributed queries: retries, timeouts, degradation."""

import pytest

from repro.errors import DegradedResultWarning, NodeUnreachableError
from repro.faults import FaultInjector, FaultPlan
from repro.provenance.distributed import PartitionedProvenance
from repro.provenance.query import provenance_query
from repro.scenarios import ALL_SCENARIOS


@pytest.fixture(scope="module")
def sdn1():
    return ALL_SCENARIOS["SDN1"](background_packets=6).setup()


@pytest.fixture(scope="module")
def graph(sdn1):
    return sdn1.bad_execution.graph


class TestReliableSubstrate:
    def test_matches_the_monolithic_query(self, sdn1, graph):
        tree, stats = PartitionedProvenance(graph).query(sdn1.bad_event)
        reference = provenance_query(graph, sdn1.bad_event)
        assert tree.size() == reference.size()
        assert not stats.degraded
        assert stats.timeouts == 0
        assert stats.retries == 0

    def test_zero_plan_injector_changes_nothing(self, sdn1, graph):
        faults = FaultInjector(FaultPlan(seed=4), "fetch")
        tree, stats = PartitionedProvenance(graph, faults=faults).query(
            sdn1.bad_event
        )
        reference = provenance_query(graph, sdn1.bad_event)
        assert tree.size() == reference.size()
        assert not stats.degraded
        assert stats.fetch_attempts > 0  # fetches happened, none failed
        assert stats.failed_fetches == 0

    def test_queries_touch_only_a_fraction_of_the_graph(self, sdn1, graph):
        _, stats = PartitionedProvenance(graph).query(sdn1.bad_event)
        assert 0 < stats.fetched_fraction < 1


class TestDegradation:
    def test_unreachable_interior_node_degrades(self, sdn1, graph):
        # The bad packet traverses s3; making it unreachable must not
        # crash the query — the s3 subtrees are omitted and reported.
        faults = FaultInjector(FaultPlan(unreachable=("s3",)), "fetch")
        store = PartitionedProvenance(graph, faults=faults)
        with pytest.warns(DegradedResultWarning):
            tree, stats = store.query(sdn1.bad_event)
        reference = provenance_query(graph, sdn1.bad_event)
        assert tree.size() < reference.size()
        assert stats.degraded
        assert stats.missing_subtrees
        assert "s3" in stats.unreachable_nodes
        # Every failed fetch burned the full retry budget.
        assert stats.retries > 0
        assert stats.timeouts > 0

    def test_unreachable_root_raises_typed_error(self, sdn1, graph):
        root_node = sdn1.bad_event.args[0]  # delivered(@web2, ...)
        faults = FaultInjector(FaultPlan(unreachable=(root_node,)), "fetch")
        store = PartitionedProvenance(graph, faults=faults)
        with pytest.raises(NodeUnreachableError) as excinfo:
            store.query(sdn1.bad_event)
        assert excinfo.value.stats is not None
        assert excinfo.value.stats.failed_fetches >= 1

    def test_retries_recover_transient_loss(self, sdn1, graph):
        # At a 30% per-attempt loss with 6 retries, the chance any
        # vertex exhausts its budget is ~0.3^7; the query comes back
        # complete but the accounting shows the recovered timeouts.
        plan = FaultPlan.parse("fetch-loss=0.3,retries=6,seed=2")
        faults = FaultInjector(plan, "fetch")
        tree, stats = PartitionedProvenance(graph, faults=faults).query(
            sdn1.bad_event
        )
        reference = provenance_query(graph, sdn1.bad_event)
        assert tree.size() == reference.size()
        assert not stats.degraded
        assert stats.timeouts > 0
        assert stats.retries > 0
        assert stats.backoff_steps > 0

    def test_local_reads_never_fail(self, sdn1, graph):
        # fetch-loss=1 kills every *remote* fetch, so the projection
        # truncates at the first cross-node edge but keeps the local
        # neighbourhood of the root.
        plan = FaultPlan.parse("fetch-loss=1.0,retries=0")
        faults = FaultInjector(plan, "fetch")
        with pytest.warns(DegradedResultWarning):
            tree, stats = PartitionedProvenance(graph, faults=faults).query(
                sdn1.bad_event
            )
        assert tree.size() >= 1
        assert stats.degraded

    def test_same_seed_same_degradation(self, sdn1, graph):
        plan = FaultPlan.parse("fetch-loss=0.4,retries=1,seed=6")

        def run():
            faults = FaultInjector(plan, "fetch")
            with pytest.warns(DegradedResultWarning):
                tree, stats = PartitionedProvenance(
                    graph, faults=faults
                ).query(sdn1.bad_event)
            return tree.size(), stats.timeouts, stats.retries, sorted(
                str(t) for _, t in stats.missing_subtrees
            )

        assert run() == run()
