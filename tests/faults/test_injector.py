"""FaultInjector: seeded determinism and per-primitive behaviour."""

from hypothesis import given, strategies as st

from repro.faults import FaultInjector, FaultPlan


def drive(injector, rounds=200):
    """A fixed mixed workload touching every decision surface."""
    for i in range(rounds):
        injector.message_actions(f"n{i % 5}", f"n{(i + 1) % 5}")
        injector.keep_log_event("insert")
        injector.fetch_ok(f"n{i % 7}")
        injector.link_up("s1", i % 3, i)
        injector.switch_alive("s2", i)


rates = st.integers(min_value=0, max_value=100).map(lambda n: n / 100)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan.parse("drop=0.2,dup=0.1,loss=0.3,fetch-loss=0.2,seed=5")
        a, b = FaultInjector(plan, "engine"), FaultInjector(plan, "engine")
        drive(a)
        drive(b)
        assert a.schedule_bytes() == b.schedule_bytes()
        assert a.stats() == b.stats()

    def test_different_seeds_diverge(self):
        make = lambda seed: FaultInjector(
            FaultPlan(seed=seed, drop=0.5), "engine"
        )
        a, b = make(1), make(2)
        drive(a)
        drive(b)
        assert a.schedule_bytes() != b.schedule_bytes()

    def test_purpose_isolates_streams(self):
        plan = FaultPlan(seed=5, drop=0.5)
        a = FaultInjector(plan, "engine")
        b = FaultInjector(plan, "network")
        drive(a)
        drive(b)
        assert a.schedule_bytes() != b.schedule_bytes()

    def test_categories_are_independent(self):
        """Raising one rate never shifts another category's schedule."""
        base = FaultInjector(FaultPlan(seed=9, drop=0.3), "p")
        mixed = FaultInjector(
            FaultPlan(seed=9, drop=0.3, duplicate=0.5, prov_loss=0.5), "p"
        )
        base_fates = [
            not base.message_actions("a", "b") for _ in range(300)
        ]
        mixed_fates = [
            not mixed.message_actions("a", "b") for _ in range(300)
        ]
        assert base_fates == mixed_fates

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        drop=rates,
        dup=rates,
        loss=rates,
        fetch=rates,
    )
    def test_schedule_is_a_pure_function_of_seed_and_calls(
        self, seed, drop, dup, loss, fetch
    ):
        plan = FaultPlan(
            seed=seed,
            drop=drop,
            duplicate=dup,
            prov_loss=loss,
            fetch_loss=fetch,
        )
        a, b = FaultInjector(plan, "p"), FaultInjector(plan, "p")
        drive(a, rounds=50)
        drive(b, rounds=50)
        assert a.schedule_bytes() == b.schedule_bytes()

    def test_fork_restarts_the_streams(self):
        plan = FaultPlan(seed=3, drop=0.4)
        a = FaultInjector(plan, "p")
        drive(a)
        fresh = a.fork("p")
        assert fresh.schedule == []
        drive(fresh)
        b = FaultInjector(plan, "p")
        drive(b)
        assert fresh.schedule_bytes() == b.schedule_bytes()


class TestPrimitives:
    def test_zero_plan_never_injects(self):
        injector = FaultInjector(FaultPlan(seed=123), "p")
        drive(injector)
        assert injector.schedule == []
        stats = injector.stats()
        assert stats["dropped"] == 0
        assert stats["log_lost"] == 0
        assert stats["fetch_failures"] == 0
        assert stats["link_lost"] == 0

    def test_rate_one_always_fires(self):
        injector = FaultInjector(FaultPlan(drop=1.0), "p")
        for _ in range(10):
            assert injector.message_actions("a", "b") == []
        assert injector.counters["dropped"] == 10

    def test_duplicate_adds_a_copy(self):
        injector = FaultInjector(FaultPlan(duplicate=1.0), "p")
        assert injector.message_actions("a", "b") == [0, 0]

    def test_delay_shifts_all_copies(self):
        injector = FaultInjector(
            FaultPlan(duplicate=1.0, delay=1.0, delay_steps=3), "p"
        )
        assert injector.message_actions("a", "b") == [3, 3]

    def test_reorder_holds_back_one_step(self):
        injector = FaultInjector(FaultPlan(reorder=1.0), "p")
        assert injector.message_actions("a", "b") == [1]

    def test_lossy_logging_counts(self):
        injector = FaultInjector(FaultPlan(prov_loss=1.0), "p")
        assert not injector.keep_log_event("derive")
        assert injector.counters["log_lost"] == 1

    def test_unreachable_node(self):
        injector = FaultInjector(FaultPlan(unreachable=("s3",)), "p")
        assert not injector.node_reachable("s3")
        assert injector.node_reachable("s2")
        assert not injector.fetch_ok("s3")
        assert injector.fetch_ok("s2")

    def test_flap_window_with_specific_port(self):
        plan = FaultPlan(flaps=(("s2", 1, 10, 40),))
        injector = FaultInjector(plan, "p")
        assert injector.link_up("s2", 1, 9)
        assert not injector.link_up("s2", 1, 10)
        assert not injector.link_up("s2", 1, 40)
        assert injector.link_up("s2", 1, 41)
        assert injector.link_up("s2", 2, 20)  # other port unaffected

    def test_flap_window_wildcard_port(self):
        plan = FaultPlan(flaps=(("s2", None, 10, 40),))
        injector = FaultInjector(plan, "p")
        assert not injector.link_up("s2", 1, 20)
        assert not injector.link_up("s2", 7, 20)
        assert injector.link_up("s3", 1, 20)

    def test_crash_window(self):
        plan = FaultPlan(crashes=(("s3", 5, 60),))
        injector = FaultInjector(plan, "p")
        assert injector.switch_alive("s3", 4)
        assert not injector.switch_alive("s3", 5)
        assert not injector.switch_alive("s3", 60)
        assert injector.switch_alive("s3", 61)
        assert injector.switch_alive("s4", 30)

    def test_schedule_lines_are_numbered(self):
        injector = FaultInjector(FaultPlan(drop=1.0), "p")
        injector.message_actions("a", "b")
        injector.message_actions("b", "c")
        assert injector.schedule[0].startswith("0 drop ")
        assert injector.schedule[1].startswith("1 drop ")
