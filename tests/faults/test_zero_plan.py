"""The zero-overhead-in-behaviour guarantee.

Installing an all-zero fault plan must be a perfect no-op: the engine
derives the same fixpoint, the recorder builds the same graph, and a
full diagnosis produces byte-identical output.
"""

from repro.datalog import parse_tuple
from repro.faults import FaultPlan
from repro.replay import Execution
from repro.scenarios import ALL_SCENARIOS

WIRING = (
    "link('s1', 2, 's2')",
    "flowEntry('s1', 1, 0.0.0.0/0, 2)",
    "flowEntry('s2', 1, 0.0.0.0/0, 3)",
    "hostAt('s2', 3, 'h1')",
)


def run_execution(forwarding_program, faults):
    execution = Execution(forwarding_program, faults=faults)
    for text in WIRING:
        execution.insert(parse_tuple(text), mutable="flowEntry" in text)
    execution.insert(parse_tuple("packet('s1', 4.3.2.1, 9.9.9.9)"))
    return execution


class TestZeroPlanEquivalence:
    def test_engine_fixpoint_identical(self, forwarding_program):
        plain = run_execution(forwarding_program, faults=None)
        zeroed = run_execution(forwarding_program, faults=FaultPlan(seed=42))
        tuples = lambda e: sorted(str(t) for t in e.engine.store.all_tuples())
        assert tuples(plain) == tuples(zeroed)

    def test_materialized_graph_identical(self, forwarding_program):
        plain = run_execution(forwarding_program, faults=None).materialize()
        zeroed = run_execution(
            forwarding_program, faults=FaultPlan(seed=42)
        ).materialize()
        assert len(plain.graph) == len(zeroed.graph)
        assert zeroed.recorder.lost_events == 0
        render = lambda r: sorted(str(v) for v in r.graph.vertices)
        assert render(plain) == render(zeroed)

    def test_diagnosis_output_byte_identical(self):
        base = ALL_SCENARIOS["SDN1"](background_packets=6)
        zeroed = ALL_SCENARIOS["SDN1"](background_packets=6, faults="seed=99")
        assert base.diagnose().summary() == zeroed.diagnose().summary()

    def test_zero_plan_report_is_not_degraded(self):
        report = ALL_SCENARIOS["SDN1"](
            background_packets=6, faults="seed=99"
        ).diagnose()
        assert report.success
        assert not report.degraded
        assert report.lost_events == 0
