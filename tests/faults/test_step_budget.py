"""The runaway-replay guard: diverging evaluation raises, never hangs."""

import pytest

from repro.datalog import Engine, parse_program, parse_tuple
from repro.errors import StepLimitExceeded

PING_PONG = """
table ping(Node) event immutable.
table pong(Node) event.

p1 pong(@N) :- ping(@N).
p2 ping(@N) :- pong(@N).
"""


class TestStepBudget:
    def test_diverging_program_raises_typed_error(self):
        engine = Engine(parse_program(PING_PONG), step_limit=100)
        with pytest.raises(StepLimitExceeded, match="step budget"):
            engine.insert_and_run(parse_tuple("ping('n1')"))

    def test_no_budget_by_default(self, forwarding_program):
        engine = Engine(forwarding_program)
        engine.insert_and_run(parse_tuple("link('s1', 2, 's2')"))
        assert engine.step_limit is None
        assert engine.steps >= 1

    def test_budget_not_hit_by_normal_runs(self, forwarding_program):
        engine = Engine(forwarding_program, step_limit=1000)
        for text in (
            "link('s1', 2, 's2')",
            "flowEntry('s1', 1, 0.0.0.0/0, 2)",
            "hostAt('s2', 3, 'h1')",
            "packet('s1', 4.3.2.1, 9.9.9.9)",
        ):
            engine.insert_and_run(parse_tuple(text))
        assert engine.steps < 1000
