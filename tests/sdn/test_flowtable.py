"""Tests for the prefix trie and the emulator flow tables."""

import pytest

from repro.addresses import IPv4Address, Prefix
from repro.errors import ReproError
from repro.sdn import model
from repro.sdn.flowtable import FlowTable, PrefixTrie


class TestPrefixTrie:
    def test_covering_walk(self):
        trie = PrefixTrie()
        trie.insert(Prefix("0.0.0.0/0"), "default")
        trie.insert(Prefix("10.0.0.0/8"), "ten")
        trie.insert(Prefix("10.1.0.0/16"), "ten-one")
        found = list(trie.covering(IPv4Address("10.1.2.3")))
        assert found == ["default", "ten", "ten-one"]

    def test_non_covering_excluded(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "ten")
        trie.insert(Prefix("11.0.0.0/8"), "eleven")
        assert list(trie.covering(IPv4Address("10.9.9.9"))) == ["ten"]

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.1/32"), "exact")
        assert list(trie.covering(IPv4Address("10.0.0.1"))) == ["exact"]
        assert list(trie.covering(IPv4Address("10.0.0.2"))) == []

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "a")
        assert trie.remove(Prefix("10.0.0.0/8"), "a")
        assert not trie.remove(Prefix("10.0.0.0/8"), "a")
        assert list(trie.covering(IPv4Address("10.0.0.1"))) == []

    def test_len(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "a")
        trie.insert(Prefix("10.0.0.0/8"), "b")
        assert len(trie) == 2


class TestFlowTable:
    def entry(self, prio, src, dst, action, switch="s1"):
        return model.flow_entry(switch, prio, src, dst, action)

    def test_install_and_contains(self):
        table = FlowTable("s1")
        entry = self.entry(5, "0.0.0.0/0", "10.0.0.0/8", 3)
        table.install(entry)
        assert entry in table
        assert len(table) == 1

    def test_install_is_idempotent(self):
        table = FlowTable("s1")
        entry = self.entry(5, "0.0.0.0/0", "10.0.0.0/8", 3)
        table.install(entry)
        table.install(entry)
        assert len(table) == 1

    def test_wrong_switch_rejected(self):
        table = FlowTable("s1")
        with pytest.raises(ReproError):
            table.install(self.entry(5, "0.0.0.0/0", "0.0.0.0/0", 3, switch="s2"))

    def test_non_flow_entry_rejected(self):
        table = FlowTable("s1")
        with pytest.raises(ReproError):
            table.install(model.host_at("s1", 1, "h"))

    def test_best_match_priority(self):
        table = FlowTable("s1")
        low = self.entry(1, "0.0.0.0/0", "0.0.0.0/0", 9)
        high = self.entry(9, "0.0.0.0/0", "10.0.0.0/8", 2)
        table.install(low)
        table.install(high)
        assert table.best_match(
            IPv4Address("1.1.1.1"), IPv4Address("10.1.1.1")
        ) == high
        assert table.best_match(
            IPv4Address("1.1.1.1"), IPv4Address("11.1.1.1")
        ) == low

    def test_best_match_respects_source_prefix(self):
        table = FlowTable("s1")
        entry = self.entry(9, "4.3.2.0/24", "0.0.0.0/0", 2)
        table.install(entry)
        assert table.best_match(
            IPv4Address("4.3.2.1"), IPv4Address("9.9.9.9")
        ) == entry
        assert table.best_match(
            IPv4Address("4.3.3.1"), IPv4Address("9.9.9.9")
        ) is None

    def test_specificity_breaks_priority_ties(self):
        table = FlowTable("s1")
        wide = self.entry(5, "0.0.0.0/0", "10.0.0.0/8", 1)
        narrow = self.entry(5, "0.0.0.0/0", "10.1.0.0/16", 2)
        table.install(wide)
        table.install(narrow)
        assert table.best_match(
            IPv4Address("1.1.1.1"), IPv4Address("10.1.0.9")
        ) == narrow

    def test_uninstall(self):
        table = FlowTable("s1")
        entry = self.entry(5, "0.0.0.0/0", "0.0.0.0/0", 1)
        table.install(entry)
        assert table.uninstall(entry)
        assert not table.uninstall(entry)
        assert table.best_match(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2")) is None

    def test_agrees_with_declarative_argmax(self):
        """The emulator's lookup must equal the engine's selector choice."""
        import random

        from repro.datalog import Engine
        from repro.provenance import ProvenanceRecorder

        rng = random.Random(4)
        entries = []
        for index in range(40):
            pfx = Prefix(f"10.{rng.randrange(4)}.{rng.randrange(4)}.0/{rng.choice([8, 16, 24])}")
            entries.append(self.entry(rng.randrange(1, 5), "0.0.0.0/0", pfx, index))
        table = FlowTable("s1")
        recorder = ProvenanceRecorder()
        engine = Engine(model.sdn_program(), recorder=recorder)
        for entry in entries:
            table.install(entry)
            engine.insert(entry)
        engine.run()
        for trial in range(30):
            dst = IPv4Address(f"10.{rng.randrange(4)}.{rng.randrange(4)}.{rng.randrange(4)}")
            expected = table.best_match(IPv4Address("1.1.1.1"), dst)
            engine.insert_and_run(model.packet("s1", 1000 + trial, "1.1.1.1", dst))
            outs = [
                d for d in recorder.graph.derivations.values()
                if d.rule_name == "fwd" and d.body[0].args[1] == 1000 + trial
            ]
            if expected is None:
                assert outs == []
            else:
                assert len(outs) == 1
                assert outs[0].body[1] == expected
