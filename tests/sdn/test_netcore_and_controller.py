"""Tests for the NetCore-style front-end and the path controller."""

import pytest

from repro.addresses import Prefix
from repro.errors import ReproError
from repro.sdn import model
from repro.sdn.controller import Controller, PolicyRule
from repro.sdn.netcore import (
    Policy,
    compile_policy,
    drop,
    fwd,
    group,
    match,
)
from repro.sdn.topology import Topology


class TestNetCoreDSL:
    def test_clause_construction(self):
        clause = match(src="4.3.2.0/23") >> fwd(2)
        assert clause.predicate.src == Prefix("4.3.2.0/23")
        assert clause.action.kind == "fwd"

    def test_policy_composition(self):
        policy = (match(src="4.3.2.0/23") >> fwd(2)) + (match() >> fwd(3))
        assert isinstance(policy, Policy)
        assert len(policy) == 2

    def test_three_way_composition(self):
        policy = (
            (match(dst="1.0.0.0/8") >> fwd(1))
            + (match(dst="2.0.0.0/8") >> fwd(2))
            + (match() >> drop())
        )
        assert len(policy) == 3

    def test_predicate_conjunction(self):
        pred = match(src="4.3.0.0/16") & match(src="4.3.2.0/24", dst="1.0.0.0/8")
        assert pred.src == Prefix("4.3.2.0/24")
        assert pred.dst == Prefix("1.0.0.0/8")

    def test_disjoint_conjunction_rejected(self):
        with pytest.raises(ReproError):
            match(src="4.3.2.0/24") & match(src="9.9.9.0/24")

    def test_fwd_rejects_negative_port(self):
        with pytest.raises(ReproError):
            fwd(-1)

    def test_group_requires_negative_id(self):
        with pytest.raises(ReproError):
            group(4)


class TestCompilation:
    def test_first_match_becomes_highest_priority(self):
        policy = (match(src="4.3.2.0/23") >> fwd(2)) + (match() >> fwd(3))
        entries = compile_policy(policy, "s2")
        assert entries[0].args[1] > entries[1].args[1]
        assert entries[0] == model.flow_entry(
            "s2", 2, "4.3.2.0/23", "0.0.0.0/0", 2
        )

    def test_single_clause_compiles(self):
        entries = compile_policy(match() >> fwd(7), "s1")
        assert entries == [model.flow_entry("s1", 1, "0.0.0.0/0", "0.0.0.0/0", 7)]

    def test_drop_compiles_to_drop_action(self):
        (entry,) = compile_policy(match() >> drop(), "s1")
        assert entry.args[4] == model.DROP_ACTION

    def test_group_compiles_to_group_action(self):
        (entry,) = compile_policy(match() >> group(-4), "s1")
        assert entry.args[4] == -4

    def test_garbage_rejected(self):
        with pytest.raises(ReproError):
            compile_policy("not a policy", "s1")

    def test_compiled_policy_runs_on_engine(self):
        from repro.datalog import Engine

        engine = Engine(model.sdn_program())
        policy = (match(src="4.3.2.0/23") >> fwd(1)) + (match() >> fwd(2))
        for entry in compile_policy(policy, "s1"):
            engine.insert(entry)
        engine.insert(model.host_at("s1", 1, "special"))
        engine.insert(model.host_at("s1", 2, "other"))
        engine.run()
        engine.insert_and_run(model.packet("s1", 1, "4.3.3.3", "9.9.9.9"))
        assert engine.exists(model.delivered("special", 1, "4.3.3.3", "9.9.9.9"))


@pytest.fixture
def chain():
    topo = Topology("chain")
    for name in ("s1", "s2", "s3"):
        topo.add_switch(name)
    topo.add_host("web", "172.16.0.80")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("s3", "web")
    return topo


class TestController:
    def test_entries_follow_shortest_path(self, chain):
        controller = Controller(chain)
        policy = PolicyRule("to-web", "web", priority=4)
        entries = controller.entries_for(policy, ingress="s1")
        assert [e.args[0] for e in entries] == ["s1", "s2", "s3"]
        assert entries[0].args[4] == chain.port("s1", "s2")
        assert entries[-1].args[4] == chain.port("s3", "web")

    def test_waypoint_routing(self, chain):
        controller = Controller(chain)
        policy = PolicyRule("via-s2", "web", via=["s2"])
        path = controller.path_for(policy, ingress="s1")
        assert "s2" in path

    def test_install_feeds_execution(self, chain):
        from repro.replay import Execution

        execution = Execution(model.sdn_program())
        for tup in chain.wiring_tuples():
            execution.insert(tup, mutable=False)
        controller = Controller(chain)
        entries = controller.install(
            execution, PolicyRule("to-web", "web"), ingress="s1"
        )
        execution.insert(model.packet("s1", 1, "1.1.1.1", "172.16.0.80"),
                         mutable=False)
        assert execution.engine.exists(
            model.delivered("web", 1, "1.1.1.1", "172.16.0.80")
        )
        assert all(execution.engine.exists(e) for e in entries)
