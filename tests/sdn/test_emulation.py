"""Tests for the black-box emulator and external-spec reconstruction."""

import pytest

from repro.addresses import IPv4Address
from repro.core.seeds import find_seed
from repro.datalog.tuples import Tuple
from repro.errors import ReproError
from repro.provenance.query import provenance_query
from repro.replay.replayer import Change
from repro.sdn import model
from repro.sdn.emulation import (
    EmulatedNetwork,
    EmulatedNetworkExecution,
    NetworkConfig,
    ExternalSpecReconstructor,
)
from repro.sdn.topology import Topology


@pytest.fixture
def small_net():
    topo = Topology("emu")
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_host("h1", "10.0.0.1")
    topo.add_host("h2", "10.0.0.2")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "h1")
    topo.add_link("s2", "h2")
    config = NetworkConfig(topo)
    config.install(model.flow_entry("s1", 1, "0.0.0.0/0", "0.0.0.0/0",
                                    topo.port("s1", "s2")))
    config.install(model.flow_entry("s2", 5, "0.0.0.0/0", "10.0.0.1/32",
                                    topo.port("s2", "h1")))
    config.install(model.flow_entry("s2", 1, "0.0.0.0/0", "0.0.0.0/0",
                                    topo.port("s2", "h2")))
    return topo, config


class TestEmulatedNetwork:
    def test_forwarding_and_delivery(self, small_net):
        topo, config = small_net
        network = EmulatedNetwork(config)
        network.inject("s1", 1, "9.9.9.9", "10.0.0.1")
        kinds = [(e.kind, e.switch) for e in network.traces]
        assert ("deliver", "s2") in kinds
        assert kinds[0] == ("in", "s1")

    def test_no_match_drops(self, small_net):
        topo, config = small_net
        empty = NetworkConfig(topo)
        network = EmulatedNetwork(empty)
        network.inject("s1", 1, "9.9.9.9", "10.0.0.1")
        assert network.traces[-1].kind == "drop"

    def test_drop_action(self, small_net):
        topo, config = small_net
        config.install(
            model.flow_entry("s2", 9, "0.0.0.0/0", "10.0.0.1/32",
                             model.DROP_ACTION)
        )
        network = EmulatedNetwork(config)
        network.inject("s1", 1, "9.9.9.9", "10.0.0.1")
        assert any(e.kind == "drop" and e.switch == "s2" for e in network.traces)

    def test_multicast_group(self, small_net):
        topo, config = small_net
        config.install(model.flow_entry("s2", 9, "0.0.0.0/0", "0.0.0.0/0", -1))
        config.install(model.group_entry("s2", -1, topo.port("s2", "h1")))
        config.install(model.group_entry("s2", -1, topo.port("s2", "h2")))
        network = EmulatedNetwork(config)
        network.inject("s1", 1, "9.9.9.9", "10.0.0.9")
        delivers = [e for e in network.traces if e.kind == "deliver"]
        assert len(delivers) == 2

    def test_forwarding_loop_hits_ttl(self):
        topo = Topology("loop")
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_link("a", "b")
        config = NetworkConfig(topo)
        config.install(model.flow_entry("a", 1, "0.0.0.0/0", "0.0.0.0/0",
                                        topo.port("a", "b")))
        config.install(model.flow_entry("b", 1, "0.0.0.0/0", "0.0.0.0/0",
                                        topo.port("b", "a")))
        network = EmulatedNetwork(config)
        network.inject("a", 1, "1.1.1.1", "2.2.2.2")
        assert network.traces[-1].kind == "drop"  # TTL exhausted


class TestNetworkConfig:
    def test_clone_is_independent(self, small_net):
        topo, config = small_net
        clone = config.clone()
        extra = model.flow_entry("s1", 9, "0.0.0.0/0", "1.0.0.0/8", 1)
        clone.install(extra)
        assert extra not in config.tables["s1"]
        assert extra in clone.tables["s1"]

    def test_apply_changes(self, small_net):
        topo, config = small_net
        old = model.flow_entry("s2", 5, "0.0.0.0/0", "10.0.0.1/32",
                               topo.port("s2", "h1"))
        new = model.flow_entry("s2", 5, "0.0.0.0/0", "10.0.0.0/24",
                               topo.port("s2", "h1"))
        config.apply_changes([Change(insert=new, remove=[old])])
        assert old not in config.tables["s2"]
        assert new in config.tables["s2"]

    def test_wiring_not_installable(self, small_net):
        topo, config = small_net
        with pytest.raises(ReproError):
            config.install(model.host_at("s2", 1, "h1"))


class TestExternalSpecReconstruction:
    def test_reconstructed_tree_matches_model_vocabulary(self, small_net):
        topo, config = small_net
        execution = EmulatedNetworkExecution(
            "emu", config, [("s1", 1, IPv4Address("9.9.9.9"), IPv4Address("10.0.0.1"))]
        )
        delivered = model.delivered("h1", 1, "9.9.9.9", "10.0.0.1")
        tree = provenance_query(execution.graph, delivered)
        tables = [n.tuple.table for n in tree.tuple_root.walk()]
        assert "packet" in tables
        assert "flowEntry" in tables
        assert "actionOut" in tables
        rules = {n.rule for n in tree.tuple_root.walk() if n.rule}
        assert rules == {"fwd", "out", "move", "recv"}

    def test_seed_is_the_injected_packet(self, small_net):
        topo, config = small_net
        execution = EmulatedNetworkExecution(
            "emu", config, [("s1", 1, IPv4Address("9.9.9.9"), IPv4Address("10.0.0.1"))]
        )
        delivered = model.delivered("h1", 1, "9.9.9.9", "10.0.0.1")
        tree = provenance_query(execution.graph, delivered)
        seed = find_seed(tree.tuple_root)
        assert seed.tuple == model.packet("s1", 1, "9.9.9.9", "10.0.0.1")
        assert seed.mutable is False

    def test_dropped_packets_have_provenance(self, small_net):
        topo, config = small_net
        config.install(
            model.flow_entry("s2", 9, "0.0.0.0/0", "10.0.0.1/32",
                             model.DROP_ACTION)
        )
        execution = EmulatedNetworkExecution(
            "emu", config, [("s1", 1, IPv4Address("9.9.9.9"), IPv4Address("10.0.0.1"))]
        )
        dropped = Tuple("dropped", ["s2", 1, IPv4Address("9.9.9.9"),
                                    IPv4Address("10.0.0.1")])
        tree = provenance_query(execution.graph, dropped)
        # The drop is explained by the matched (faulty) entry.
        leaf_tables = {n.tuple.table for n in tree.tuple_root.walk() if n.is_base}
        assert "flowEntry" in leaf_tables

    def test_replay_with_changes_alters_outcome(self, small_net):
        topo, config = small_net
        fault = model.flow_entry("s2", 9, "0.0.0.0/0", "10.0.0.1/32",
                                 model.DROP_ACTION)
        config.install(fault)
        execution = EmulatedNetworkExecution(
            "emu", config, [("s1", 1, IPv4Address("9.9.9.9"), IPv4Address("10.0.0.1"))]
        )
        before = execution.materialize()
        delivered = model.delivered("h1", 1, "9.9.9.9", "10.0.0.1")
        assert not before.alive(delivered)
        after = execution.replay([Change(remove=[fault])])
        assert after.alive(delivered)
        # The original execution is untouched (replay is on a clone).
        assert fault in execution.base_config.tables["s2"]

    def test_store_view_exposes_configuration(self, small_net):
        topo, config = small_net
        execution = EmulatedNetworkExecution(
            "emu", config, [("s1", 1, IPv4Address("9.9.9.9"), IPv4Address("10.0.0.1"))]
        )
        result = execution.materialize()
        entries = result.engine.store.tuples("flowEntry")
        assert len(entries) == config.total_entries()
        assert result.engine.is_mutable(entries[0])
        link = model.link("s1", topo.port("s1", "s2"), "s2")
        assert not result.engine.is_mutable(link)

    def test_lazy_base_reporting_keeps_graph_small(self, small_net):
        topo, config = small_net
        # Install many never-used entries: the graph must not grow.
        for third in range(50):
            config.install(
                model.flow_entry("s1", 2, "0.0.0.0/0", f"99.0.{third}.0/24", 1)
            )
        execution = EmulatedNetworkExecution(
            "emu", config, [("s1", 1, IPv4Address("9.9.9.9"), IPv4Address("10.0.0.1"))]
        )
        result = execution.materialize()
        reported_entries = [
            t for t in result.recorder.graph.live_tuples("flowEntry")
        ]
        assert len(reported_entries) <= 3  # only the entries actually used
        # Yet alive_during still sees the unused configuration.
        unused = model.flow_entry("s1", 2, "0.0.0.0/0", "99.0.7.0/24", 1)
        assert result.graph.alive_during(unused, 0)
