"""Tests for topologies and the declarative SDN model."""

import pytest

from repro.addresses import IPv4Address, Prefix
from repro.datalog import Engine
from repro.errors import ReproError
from repro.provenance import ProvenanceRecorder
from repro.sdn import model
from repro.sdn.topology import Topology


@pytest.fixture
def diamond():
    topo = Topology("diamond")
    for name in ("a", "b", "c", "d"):
        topo.add_switch(name)
    topo.add_host("h1", "10.0.0.1")
    topo.add_link("a", "b")
    topo.add_link("a", "c")
    topo.add_link("b", "d")
    topo.add_link("c", "d")
    topo.add_link("d", "h1")
    return topo


class TestTopology:
    def test_ports_assigned_deterministically(self, diamond):
        assert diamond.port("a", "b") == 1
        assert diamond.port("a", "c") == 2
        assert diamond.port("b", "a") == 1
        assert diamond.port("d", "h1") == 3

    def test_duplicate_node_rejected(self, diamond):
        with pytest.raises(ReproError):
            diamond.add_switch("a")
        with pytest.raises(ReproError):
            diamond.add_host("h1", "10.0.0.2")

    def test_unknown_link_endpoint_rejected(self, diamond):
        with pytest.raises(ReproError):
            diamond.add_link("a", "zz")

    def test_port_of_missing_link(self, diamond):
        with pytest.raises(ReproError):
            diamond.port("a", "d")

    def test_kind_queries(self, diamond):
        assert diamond.is_switch("a") and not diamond.is_host("a")
        assert diamond.is_host("h1") and not diamond.is_switch("h1")

    def test_host_attachment(self, diamond):
        switch, port = diamond.attachment("h1")
        assert switch == "d"
        assert port == diamond.port("d", "h1")

    def test_host_ip(self, diamond):
        assert diamond.host_ip("h1") == IPv4Address("10.0.0.1")
        with pytest.raises(ReproError):
            diamond.host_ip("nobody")

    def test_shortest_path(self, diamond):
        path = diamond.shortest_path("a", "d")
        assert path[0] == "a" and path[-1] == "d"
        assert len(path) == 3

    def test_wiring_tuples(self, diamond):
        tuples = diamond.wiring_tuples()
        tables = {t.table for t in tuples}
        assert tables == {"link", "hostAt"}
        # Each switch-switch edge appears once per direction.
        links = [t for t in tuples if t.table == "link"]
        assert len(links) == 8
        hosts = [t for t in tuples if t.table == "hostAt"]
        assert hosts == [model.host_at("d", diamond.port("d", "h1"), "h1")]


class TestModelConstructors:
    def test_packet(self):
        tup = model.packet("s1", 7, "1.2.3.4", "5.6.7.8")
        assert tup.table == "packet"
        assert tup.args[2] == IPv4Address("1.2.3.4")

    def test_flow_entry_coerces_prefixes(self):
        tup = model.flow_entry("s1", 5, "4.3.2.0/24", "0.0.0.0/0", 3)
        assert tup.args[2] == Prefix("4.3.2.0/24")

    def test_group_entry_requires_negative_id(self):
        with pytest.raises(ValueError):
            model.group_entry("s1", 3, 1)

    def test_program_parses_and_validates(self):
        program = model.sdn_program()
        assert {r.name for r in program.rules} == {
            "fwd", "out", "outg", "move", "recv",
        }
        assert program.schema("packet").kind.value == "event"
        assert not program.schema("packet").mutable
        assert program.schema("flowEntry").mutable


class TestModelSemantics:
    def _engine(self):
        recorder = ProvenanceRecorder()
        engine = Engine(model.sdn_program(), recorder=recorder)
        return engine, recorder

    def test_drop_action_without_group_drops(self):
        engine, _ = self._engine()
        engine.insert(model.flow_entry("s1", 5, "0.0.0.0/0", "0.0.0.0/0",
                                       model.DROP_ACTION))
        engine.run()
        engine.insert_and_run(model.packet("s1", 1, "1.1.1.1", "2.2.2.2"))
        assert engine.lookup("delivered") == []

    def test_group_action_multicasts(self):
        engine, _ = self._engine()
        for tup in (
            model.flow_entry("s1", 5, "0.0.0.0/0", "0.0.0.0/0", -1),
            model.group_entry("s1", -1, 1),
            model.group_entry("s1", -1, 2),
            model.host_at("s1", 1, "h1"),
            model.host_at("s1", 2, "h2"),
        ):
            engine.insert(tup)
        engine.run()
        engine.insert_and_run(model.packet("s1", 1, "1.1.1.1", "2.2.2.2"))
        delivered = {t.args[0] for t in engine.lookup("delivered")}
        assert delivered == {"h1", "h2"}

    def test_source_based_matching(self):
        engine, _ = self._engine()
        for tup in (
            model.flow_entry("s1", 9, "4.3.2.0/24", "0.0.0.0/0", 1),
            model.flow_entry("s1", 1, "0.0.0.0/0", "0.0.0.0/0", 2),
            model.host_at("s1", 1, "special"),
            model.host_at("s1", 2, "default"),
        ):
            engine.insert(tup)
        engine.run()
        engine.insert_and_run(model.packet("s1", 1, "4.3.2.9", "9.9.9.9"))
        engine.insert_and_run(model.packet("s1", 2, "4.3.3.9", "9.9.9.9"))
        delivered = {(t.args[0], t.args[1]) for t in engine.lookup("delivered")}
        assert delivered == {("special", 1), ("default", 2)}
