"""Tests for the synthetic trace generator (the CAIDA stand-in)."""

from collections import Counter

from repro.addresses import Prefix
from repro.sdn.traces import (
    TraceConfig,
    packets_for_rate,
    synthetic_trace,
)


class TestPacketsForRate:
    def test_basic_arithmetic(self):
        # 1 Mbps for 1 s at 500 B packets = 10^6 / 4000 = 250 packets.
        assert packets_for_rate(1, 500, 1.0) == 250

    def test_scales_with_rate_and_duration(self):
        base = packets_for_rate(10, 500, 1.0)
        assert packets_for_rate(100, 500, 1.0) == 10 * base
        assert packets_for_rate(10, 500, 2.0) == 2 * base

    def test_scales_inversely_with_size(self):
        small = packets_for_rate(10, 500, 1.0)
        large = packets_for_rate(10, 1500, 1.0)
        # 3x the packet size -> one third the packets (integer floor).
        assert abs(small - 3 * large) <= 3

    def test_at_least_one_packet(self):
        assert packets_for_rate(0.000001, 1500, 0.001) == 1


class TestSyntheticTrace:
    def test_deterministic_for_seed(self):
        config = TraceConfig(count=50, seed=9)
        first = [(p.src, p.dst) for p in synthetic_trace(config)]
        second = [(p.src, p.dst) for p in synthetic_trace(config)]
        assert first == second

    def test_seed_changes_trace(self):
        a = [(p.src, p.dst) for p in synthetic_trace(TraceConfig(count=50, seed=1))]
        b = [(p.src, p.dst) for p in synthetic_trace(TraceConfig(count=50, seed=2))]
        assert a != b

    def test_count_and_size(self):
        trace = synthetic_trace(TraceConfig(count=37, packet_size=750))
        assert len(trace) == 37
        assert all(p.size == 750 for p in trace)

    def test_addresses_inside_configured_prefixes(self):
        config = TraceConfig(
            count=100,
            src_prefixes=("10.0.0.0/8",),
            dst_prefixes=("172.16.0.0/16",),
        )
        src_pfx = Prefix("10.0.0.0/8")
        dst_pfx = Prefix("172.16.0.0/16")
        for packet in synthetic_trace(config):
            assert src_pfx.contains(packet.src)
            assert dst_pfx.contains(packet.dst)

    def test_zipf_skew(self):
        # A handful of heavy flows dominate, like real backbone traffic.
        trace = synthetic_trace(TraceConfig(count=2000, flows=64, seed=3))
        counts = Counter((p.src, p.dst) for p in trace).most_common()
        top_share = sum(c for _, c in counts[:8]) / 2000
        assert top_share > 0.5

    def test_flow_population_bounded(self):
        trace = synthetic_trace(TraceConfig(count=500, flows=16))
        assert len({(p.src, p.dst) for p in trace}) <= 16
