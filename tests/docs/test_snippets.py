"""Execute every fenced ``python`` block in the documentation.

Documentation drifts when nothing runs it.  This module extracts each
fenced code block marked ``python`` from ``docs/*.md`` and
``README.md`` and executes it in a fresh namespace, with the working
directory switched to a temp dir so snippets that write files (journal
paths, exports, traces) stay self-contained.

Blocks that are deliberately illustrative — they elide setup with
``...`` or reference placeholder variables — opt out by placing the
marker comment on the line directly above the opening fence:

    <!-- snippet: no-run -->
    ```python
    report = DiffProv(program).diagnose(...)
    ```

Keep the marker rare: a snippet that can run, should.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SOURCES = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]
NO_RUN = "<!-- snippet: no-run -->"
_FENCE = re.compile(r"^```python[ \t]*$")


def _blocks(path):
    """Yield (index, lineno, code, skipped) per ```python fence."""
    lines = path.read_text(encoding="utf-8").splitlines()
    index = 0
    i = 0
    while i < len(lines):
        if _FENCE.match(lines[i]):
            # The opt-out marker sits on the closest non-blank line
            # above the fence.
            j = i - 1
            while j >= 0 and not lines[j].strip():
                j -= 1
            skipped = j >= 0 and lines[j].strip() == NO_RUN
            start = i + 1
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                i += 1
            yield index, start + 1, "\n".join(lines[start:i]), skipped
            index += 1
        i += 1


def _collect():
    params = []
    for path in SOURCES:
        rel = path.relative_to(REPO)
        for index, lineno, code, skipped in _blocks(path):
            params.append(
                pytest.param(
                    str(rel), lineno, code, skipped, id=f"{rel}:{index}"
                )
            )
    return params


SNIPPETS = _collect()


def test_documentation_has_snippets():
    assert SNIPPETS, "no ```python blocks found under docs/ or README.md"


@pytest.mark.parametrize("rel, lineno, code, skipped", SNIPPETS)
def test_snippet_executes(rel, lineno, code, skipped, tmp_path, monkeypatch):
    if skipped:
        pytest.skip(f"{rel}:{lineno} opts out via {NO_RUN}")
    monkeypatch.chdir(tmp_path)
    compiled = compile(code, f"{rel}:{lineno}", "exec")
    exec(compiled, {"__name__": f"snippet_{Path(rel).stem}"})
