"""Tests for the exception hierarchy."""

import pytest

from repro.datalog import parse_tuple
from repro.errors import (
    DiagnosisFailure,
    EvaluationError,
    ImmutableChangeRequired,
    NonInvertibleError,
    ParseError,
    ReplayDivergence,
    ReproError,
    SchemaError,
    SeedTypeMismatch,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ParseError("x"),
            SchemaError("x"),
            EvaluationError("x"),
            NonInvertibleError("x"),
            DiagnosisFailure("x"),
            SeedTypeMismatch(parse_tuple("a(1)"), parse_tuple("b(1)")),
            ImmutableChangeRequired(parse_tuple("a(1)")),
            ReplayDivergence("x"),
        ],
    )
    def test_everything_is_a_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_diagnosis_failures_form_a_family(self):
        assert issubclass(SeedTypeMismatch, DiagnosisFailure)
        assert issubclass(ImmutableChangeRequired, DiagnosisFailure)
        # Non-invertibility is an algorithmic limitation, not an
        # operator-input problem, so it sits outside the family.
        assert not issubclass(NonInvertibleError, DiagnosisFailure)


class TestErrorPayloads:
    def test_parse_error_carries_line(self):
        error = ParseError("bad token", line=7)
        assert error.line == 7
        assert "line 7" in str(error)

    def test_parse_error_without_line(self):
        assert ParseError("bad").line is None

    def test_noninvertible_attempted_clue(self):
        error = NonInvertibleError("no inverse", attempted=("expr", "target"))
        assert error.attempted == ("expr", "target")

    def test_seed_mismatch_carries_both_seeds(self):
        good = parse_tuple("pkt(1)")
        bad = parse_tuple("cfg(1)")
        error = SeedTypeMismatch(good, bad)
        assert error.good_seed == good
        assert error.bad_seed == bad
        assert "not comparable" in str(error)

    def test_immutable_carries_tuple(self):
        tup = parse_tuple("link('a', 1)")
        error = ImmutableChangeRequired(tup, "it is wiring")
        assert error.tuple == tup

    def test_replay_divergence_carries_position(self):
        error = ReplayDivergence("diverged", at=42)
        assert error.at == 42
