"""Integration tests: the MapReduce scenarios of Section 6.2 / Table 1."""

import pytest

from repro.mapreduce.config import REDUCES_KEY
from repro.mapreduce.wordcount import BUGGY_MAPPER, CORRECT_MAPPER, mapper_checksum
from repro.scenarios import (
    MR1DeclarativeConfigChange,
    MR1ImperativeConfigChange,
    MR2DeclarativeCodeChange,
    MR2ImperativeCodeChange,
)

LINES = 16  # small corpus keeps the engine-based scenarios fast


@pytest.fixture(scope="module")
def mr1d():
    return MR1DeclarativeConfigChange(corpus_lines=LINES).setup()


@pytest.fixture(scope="module")
def mr2d():
    return MR2DeclarativeCodeChange(corpus_lines=LINES).setup()


@pytest.fixture(scope="module")
def mr1i():
    return MR1ImperativeConfigChange(corpus_lines=LINES).setup()


@pytest.fixture(scope="module")
def mr2i():
    return MR2ImperativeCodeChange(corpus_lines=LINES).setup()


def assert_config_fix(report):
    assert report.success
    assert report.num_changes == 1
    change = report.changes[0]
    assert change.insert.table == "jobConfig"
    assert change.insert.args[0] == REDUCES_KEY
    assert change.insert.args[1] == 2
    assert change.remove[0].args[1] == 4


def assert_mapper_fix(report):
    assert report.success
    assert report.num_changes == 1
    change = report.changes[0]
    assert change.insert.table == "mapperCode"
    assert change.insert.args == (CORRECT_MAPPER, mapper_checksum(CORRECT_MAPPER))
    assert change.remove[0].args == (BUGGY_MAPPER, mapper_checksum(BUGGY_MAPPER))


class TestMR1Declarative:
    def test_root_cause_is_reduces_key(self, mr1d):
        assert_config_fix(mr1d.diagnose())

    def test_seed_is_job_submission(self, mr1d):
        report = mr1d.diagnose()
        assert report.good_seed.table == "jobRun"
        assert report.bad_seed.table == "jobRun"


class TestMR2Declarative:
    def test_root_cause_is_mapper_version(self, mr2d):
        assert_mapper_fix(mr2d.diagnose())

    def test_counts_actually_differ(self, mr2d):
        # The bug is observable: the queried word's count dropped.
        assert mr2d.good_event.args[3] > mr2d.bad_event.args[3]


class TestMR1Imperative:
    def test_root_cause_is_reduces_key(self, mr1i):
        assert_config_fix(mr1i.diagnose())

    def test_reported_and_inferred_agree(self, mr1d, mr1i):
        declarative = mr1d.diagnose()
        imperative = mr1i.diagnose()
        assert declarative.changes == imperative.changes


class TestMR2Imperative:
    def test_root_cause_is_mapper_bytecode(self, mr2i):
        assert_mapper_fix(mr2i.diagnose())

    def test_reported_and_inferred_agree(self, mr2d, mr2i):
        assert mr2d.diagnose().changes == mr2i.diagnose().changes


class TestImperativeRuntime:
    def test_outputs_match_declarative_counts(self, mr1i):
        from repro.mapreduce.corpus import word_counts

        execution = mr1i.good_execution
        execution.materialize()
        outputs = execution.last_outputs
        text = "\n".join(mr1i.hdfs.read("/corpus/input.txt").lines)
        truth = word_counts(text)
        assert sum(outputs.values()) == sum(truth.values())
        for (reducer, word), count in outputs.items():
            assert truth[word] == count

    def test_log_is_metadata_only(self, mr1i):
        # Section 6.5: logs record file metadata, not contents.
        tables = {e.tuple.table for e in mr1i.bad_execution.log if e.tuple}
        assert "wordOcc" not in tables
        assert "fileMeta" in tables


class TestTable1ShapeMR:
    @pytest.mark.parametrize("fixture_name", ["mr1d", "mr2d", "mr1i", "mr2i"])
    def test_trees_large_diffprov_tiny(self, fixture_name, request):
        scenario = request.getfixturevalue(fixture_name)
        row = scenario.table1_row()
        assert row["success"]
        assert row["diffprov"] == 1
        assert row["good_tree"] > 50
        assert row["bad_tree"] > 50
