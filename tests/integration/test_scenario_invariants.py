"""Cross-scenario invariants: every scenario's provenance is well formed.

These sweep all built-in scenarios and check structural properties that
the algorithm relies on, independent of any particular diagnosis.
"""

import pytest

from repro.core.seeds import find_seed
from repro.datalog.tuples import TableKind
from repro.scenarios import ALL_SCENARIOS

_PARAMS = {
    "SDN1": {"background_packets": 6},
    "SDN2": {"background_packets": 6},
    "SDN3": {"background_packets": 6},
    "SDN4": {"background_packets": 6},
    "SDN1-C": {"background_packets": 6},
    "SDN2-C": {"background_packets": 6},
    "MR1-D": {"corpus_lines": 12},
    "MR2-D": {"corpus_lines": 12},
    "MR1-I": {"corpus_lines": 12},
    "MR2-I": {"corpus_lines": 12},
    "DNS": {"background_queries": 6},
    "FLAP": {"flaps": 2},
}

_built = {}


def scenario_named(name):
    if name not in _built:
        _built[name] = ALL_SCENARIOS[name](**_PARAMS.get(name, {})).setup()
    return _built[name]


# The sweep covers the fault-free scenarios; fault-enabled variants
# (e.g. SDN1-F) have their own suite under tests/faults/.
@pytest.fixture(
    params=sorted(n for n, cls in ALL_SCENARIOS.items() if cls.fault_free)
)
def scenario(request):
    return scenario_named(request.param)


class TestProvenanceWellFormedness:
    def test_both_events_have_trees(self, scenario):
        good, bad = scenario.trees()
        assert good.size() > 0
        assert bad.size() > 0

    def test_tuple_view_children_match_rule_bodies(self, scenario):
        """Non-aggregate derivations have one child per body atom."""
        good, bad = scenario.trees()
        for tree in (good, bad):
            for node in tree.tuple_root.walk():
                if node.rule is None:
                    continue
                try:
                    rule = scenario.program.rule(node.rule)
                except Exception:
                    continue  # emulator-only pseudo-rules (drp/nomatch)
                if rule.is_aggregate:
                    continue
                assert len(node.children) == len(rule.body), node

    def test_leaves_are_base_tuples(self, scenario):
        good, _ = scenario.trees()
        for leaf in good.tuple_root.leaves():
            assert leaf.is_base or leaf.rule is None

    def test_seed_is_an_immutable_event(self, scenario):
        good, bad = scenario.trees()
        for tree in (good, bad):
            seed = find_seed(tree.tuple_root)
            schema = scenario.program.schemas.get(seed.tuple.table)
            assert schema is not None
            assert schema.kind == TableKind.EVENT
            assert not schema.mutable

    def test_appear_times_monotone_down_the_trigger_path(self, scenario):
        """Along the seed path, each node appears no earlier than the
        tuple that triggered it."""
        good, _ = scenario.trees()
        seed = find_seed(good.tuple_root)
        path = seed.path_to_root()
        for child, parent in zip(path, path[1:]):
            assert parent.appear_time >= child.appear_time, (child, parent)


class TestDiagnosisAcrossScenarios:
    def test_every_scenario_diagnoses_successfully(self, scenario):
        report = scenario.diagnose()
        assert report.success, (scenario.name, report.summary())
        assert 1 <= report.num_changes <= 2

    def test_changes_touch_only_mutable_tables(self, scenario):
        report = scenario.diagnose()
        for change in report.changes:
            touched = list(change.remove)
            if change.insert is not None:
                touched.append(change.insert)
            for tup in touched:
                schema = scenario.program.schemas.get(tup.table)
                assert schema is not None and schema.mutable, tup

    def test_diagnosis_is_repeatable(self, scenario):
        first = scenario.diagnose()
        second = scenario.diagnose()
        assert first.changes == second.changes
