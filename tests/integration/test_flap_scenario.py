"""Integration test: the intermittent (flapping route) scenario."""

import pytest

from repro.provenance.query import provenance_query
from repro.scenarios.flap import FlappingRoute
from repro.sdn import model


@pytest.fixture(scope="module")
def flap():
    return FlappingRoute(flaps=3, probes_per_phase=2).setup()


class TestIntermittentBehaviour:
    def test_probes_alternate_between_outcomes(self, flap):
        engine = flap.good_execution.engine
        for probe in flap.up_probes:
            assert engine.exists(
                model.delivered("service", probe, flap.PROBE_SRC, flap.SERVICE_DST)
            )
        for probe in flap.down_probes:
            assert engine.exists(
                model.delivered("sorry", probe, flap.PROBE_SRC, flap.SERVICE_DST)
            )

    def test_route_has_one_exist_interval_per_up_phase(self, flap):
        graph = flap.good_execution.graph
        intervals = graph.exists_of(flap.primary_route)
        assert len(intervals) == 4  # 3 flaps + the final re-announce
        # The final withdrawal closed the last interval too.
        assert all(v.end_time is not None for v in intervals)

    def test_past_up_phase_events_still_explainable(self, flap):
        # The temporal graph "remembers" past events: a probe from the
        # FIRST up-phase is explained by the first EXIST interval.
        graph = flap.good_execution.graph
        first_probe = flap.up_probes[0]
        tree = provenance_query(
            graph,
            model.delivered("service", first_probe, flap.PROBE_SRC,
                            flap.SERVICE_DST),
        )
        entries = [
            n for n in tree.tuple_root.walk()
            if n.tuple == flap.primary_route
        ]
        assert entries
        first_interval = min(
            v.time for v in graph.exists_of(flap.primary_route)
        )
        assert all(n.appear_time == first_interval for n in entries)


class TestDiagnosis:
    def test_root_cause_is_the_withdrawn_route(self, flap):
        report = flap.diagnose()
        assert report.success
        assert report.num_changes == 1
        assert report.changes[0].insert == flap.primary_route

    def test_any_up_phase_probe_works_as_reference(self, flap):
        from repro.core import DiffProv

        for probe in flap.up_probes[:3]:
            reference = model.delivered(
                "service", probe, flap.PROBE_SRC, flap.SERVICE_DST
            )
            report = DiffProv(flap.program).diagnose(
                flap.good_execution,
                flap.bad_execution,
                reference,
                flap.bad_event,
            )
            assert report.success, probe
            assert report.changes[0].insert == flap.primary_route

    def test_mid_trace_failure_diagnosable_too(self, flap):
        from repro.core import DiffProv

        # A failed probe from the FIRST down-phase (not the last) is
        # equally diagnosable: the change anchors before that probe.
        early_bad = model.delivered(
            "sorry", flap.down_probes[0], flap.PROBE_SRC, flap.SERVICE_DST
        )
        report = DiffProv(flap.program).diagnose(
            flap.good_execution,
            flap.bad_execution,
            flap.good_event,
            early_bad,
        )
        assert report.success
        assert report.changes[0].insert == flap.primary_route
