"""Integration test: the unsuitable-reference study (Section 6.3)."""

import pytest

from repro.scenarios.unsuitable import UnsuitableReferenceStudy


@pytest.fixture(scope="module")
def outcomes():
    study = UnsuitableReferenceStudy(background_packets=6, corpus_lines=12)
    return study.run()


class TestUnsuitableReferences:
    def test_ten_queries_issued(self, outcomes):
        assert len(outcomes) == 10

    def test_every_query_fails(self, outcomes):
        assert all(not outcome.success for outcome in outcomes)

    def test_failure_split_matches_paper(self, outcomes):
        # "In three of the cases, the supplied reference event was not
        # comparable ... In the remaining seven cases, aligning the
        # trees would have required changes to immutable tuples."
        tally = UnsuitableReferenceStudy.tally(outcomes)
        assert tally == {
            "seed-type-mismatch": 3,
            "immutable-change-required": 7,
        }

    def test_failures_carry_actionable_messages(self, outcomes):
        # "DiffProv's output clearly indicated what aspect of the chosen
        # reference event was causing the problem."
        for outcome in outcomes:
            assert outcome.message
            if outcome.category == "seed-type-mismatch":
                assert "not comparable" in outcome.message or "seed" in outcome.message
            else:
                assert "immutable" in outcome.message

    def test_both_scenarios_exercised(self, outcomes):
        scenarios = {outcome.scenario for outcome in outcomes}
        assert scenarios == {"SDN1", "MR1-D"}
