"""Integration test: the DNS stale-replica scenario (a §2.4 partial
failure, demonstrating generality beyond SDN and MapReduce)."""

import pytest

from repro.scenarios.dns import (
    DNSStaleReplica,
    NEW_ADDR,
    OLD_ADDR,
    response,
    transferred,
)


@pytest.fixture(scope="module")
def dns():
    return DNSStaleReplica(background_queries=9).setup()


class TestSymptom:
    def test_stale_replica_serves_old_address(self, dns):
        engine = dns.good_execution.engine
        assert engine.exists(dns.bad_event)
        assert str(dns.bad_event.args[3]) == OLD_ADDR

    def test_fresh_replica_serves_new_address(self, dns):
        engine = dns.good_execution.engine
        assert engine.exists(dns.good_event)
        assert str(dns.good_event.args[3]) == NEW_ADDR

    def test_replicas_answer_from_freshest_serial(self, dns):
        # argmax<Serial> must pick serial 2 on ns-c even though serial 1
        # data would also match if it were transferred there.
        good, _ = dns.trees()
        served = [n for n in good.tuple_root.walk() if n.tuple.table == "served"]
        assert served
        assert all(n.tuple.args[3] == 2 for n in served)


class TestDiagnosis:
    def test_root_cause_is_missing_zone_transfer(self, dns):
        report = dns.diagnose()
        assert report.success
        assert report.num_changes == 1
        change = report.changes[0]
        assert change.insert == transferred("ns-a", 2)

    def test_fresh_replica_state_untouched(self, dns):
        # Downward taint propagation maps ns-c's state to ns-a; the
        # competitor search must never remove ns-c's own (correct)
        # transfer.
        report = dns.diagnose()
        removed = {t for change in report.changes for t in change.remove}
        assert transferred("ns-c", 2) not in removed

    def test_fix_repairs_bad_without_breaking_good(self, dns):
        report = dns.diagnose()
        anchor = dns.bad_execution.log.index_of_insert(report.bad_seed)
        replayed = dns.bad_execution.replay(report.changes, anchor)
        assert replayed.alive(response("ns-a", dns.bad_query, "www", NEW_ADDR))
        assert replayed.alive(dns.good_event)

    def test_seeds_are_the_two_queries(self, dns):
        report = dns.diagnose()
        assert report.good_seed.table == "query"
        assert report.bad_seed.table == "query"
        assert report.good_seed.args[0] == "ns-c"
        assert report.bad_seed.args[0] == "ns-a"

    def test_second_stale_replica_diagnosed_identically(self, dns):
        from repro.core import DiffProv

        from repro.scenarios.dns import query

        # ns-b has the same fault; diagnosing its answer finds its own
        # stale transfer.
        dns.good_execution.insert(query("ns-b", 999, "www"), mutable=False)
        bad_b = response("ns-b", 999, "www", OLD_ADDR)
        assert dns.good_execution.engine.exists(bad_b)
        report = DiffProv(dns.program).diagnose(
            dns.good_execution, dns.bad_execution, dns.good_event, bad_b
        )
        assert report.success
        assert report.changes[0].insert == transferred("ns-b", 2)
