"""Integration tests: root causes inside the controller program.

With flow entries derived from policies, the provenance "associates
each flow entry with the parts of the controller program that were used
to compute it" (Section 1) and DiffProv's diagnoses land on the
policies themselves.
"""

import pytest

from repro.addresses import Prefix
from repro.scenarios.controller import SDN1WithController, SDN2WithController
from repro.sdn.declarative_controller import (
    controller_program,
    next_hop_tuples,
    policy,
)
from repro.sdn.topology import Topology


@pytest.fixture(scope="module")
def sdn1c():
    return SDN1WithController(background_packets=8).setup()


@pytest.fixture(scope="module")
def sdn2c():
    return SDN2WithController(background_packets=8).setup()


class TestControllerLayer:
    def test_flow_entries_are_derived(self, sdn1c):
        engine = sdn1c.good_execution.engine
        entries = engine.lookup("flowEntry")
        assert entries
        for entry in entries:
            record = engine.store.record(entry)
            assert not record.is_base

    def test_entries_compiled_at_every_switch(self, sdn1c):
        engine = sdn1c.good_execution.engine
        switches = {entry.args[0] for entry in engine.lookup("flowEntry")}
        assert switches == set(sdn1c.topology.switches())

    def test_provenance_reaches_the_policy(self, sdn1c):
        good, _ = sdn1c.trees()
        tables = {n.tuple.table for n in good.tuple_root.walk()}
        assert "policy" in tables
        assert "nextHop" in tables

    def test_next_hop_routing_substrate(self):
        topo = Topology("t")
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_host("h", "10.0.0.1")
        topo.add_link("a", "b")
        topo.add_link("b", "h")
        hops = {(t.args[0], t.args[1]): t.args[2] for t in next_hop_tuples(topo)}
        assert hops[("b", "h")] == topo.port("b", "h")
        assert hops[("a", "h")] == topo.port("a", "b")


class TestSDN1WithController:
    def test_root_cause_is_the_policy(self, sdn1c):
        report = sdn1c.diagnose()
        assert report.success
        assert report.num_changes == 1
        fixed = report.changes[0].insert
        assert fixed.table == "policy"
        assert fixed.args[0] == "untrusted"
        assert fixed.args[2] == Prefix("4.3.2.0/23")

    def test_no_flow_entry_changes(self, sdn1c):
        # The diagnosis is phrased at the controller level: no change
        # touches the derived entries.
        report = sdn1c.diagnose()
        for change in report.changes:
            touched = list(change.remove)
            if change.insert is not None:
                touched.append(change.insert)
            assert all(t.table == "policy" for t in touched)

    def test_fix_restores_the_bad_packet(self, sdn1c):
        from repro.sdn import model

        report = sdn1c.diagnose()
        anchor = sdn1c.bad_execution.log.index_of_insert(report.bad_seed)
        replayed = sdn1c.bad_execution.replay(report.changes, anchor)
        assert replayed.alive(
            model.delivered(
                "web1", sdn1c.bad_pkt, sdn1c.BAD_SRC, sdn1c.SERVICE_DST
            )
        )


class TestSDN2WithController:
    def test_hijacking_policy_removed(self, sdn2c):
        report = sdn2c.diagnose()
        assert report.success
        assert report.num_changes == 1
        change = report.changes[0]
        assert change.insert is None
        assert change.remove == (sdn2c.hijack_policy,)

    def test_blocker_traced_through_derivation(self, sdn2c):
        # The blocking flow entry is derived state; the change must name
        # the policy, not the entry.
        report = sdn2c.diagnose()
        (removed,) = report.changes[0].remove
        assert removed.table == "policy"

    def test_webapp_policy_untouched(self, sdn2c):
        report = sdn2c.diagnose()
        touched = {t for c in report.changes for t in c.remove}
        assert all(t.args[0] != "webapp" for t in touched)
