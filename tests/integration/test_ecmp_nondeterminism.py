"""Section 4.9: replay-based debugging under ECMP load balancing.

"In the presence of load-balancers that make random decisions, e.g.,
ECMP with a random seed, DiffProv would need to reason about the
balancing mechanism using the seed.  Under race conditions, DiffProv
would abort at the point where applying the same rule does not result
in the same effect, and suggest that point as a potential race
condition."

Both behaviours are exercised here: with the device seed recorded as a
base tuple, ECMP is a deterministic function and DiffProv diagnoses
straight through the balancer; when the seeds differ between the runs
(true nondeterminism from DiffProv's point of view) and are declared
immutable, DiffProv aborts with a message naming the divergence point.
"""

import pytest

from repro.core import DiffProv
from repro.datalog import Engine, parse_program, parse_tuple
from repro.datalog.builtins import call as builtin_call
from repro.replay import Execution

# An ECMP hop: the flow hashes onto one of two equal-cost uplinks, then
# the chosen uplink's switch needs a (possibly broken) config entry to
# deliver the packet.
ECMP_PROGRAM = """
table pkt(Id, Dst) event immutable.
table ecmpSeed(Sw, Seed) immutable.
table uplink(Sw, Index, Next) immutable.
table viaUp(Next, Id, Dst) event.
table route(Sw, Pfx, Port) mutable.
table hostAt(Sw, Port, Host) immutable.
table delivered(Host, Id, Dst).
table arrived(Sw, Id, Dst).

spread viaUp(N, Id, Dst) :- pkt(Id, Dst), ecmpSeed('lb', Seed),
    uplink('lb', I, N), I == ecmp_choice(Seed, Id, 2).
seen arrived(S, Id, Dst) :- viaUp(S, Id, Dst).
fw delivered(H, Id, Dst) :- viaUp(S, Id, Dst), route(S, Pfx, Port),
    ip_in_prefix(Dst, Pfx) == true, hostAt(S, Port, H).
"""


def base_network(execution, seed):
    execution.insert(parse_tuple(f"ecmpSeed('lb', {seed})"), mutable=False)
    execution.insert(parse_tuple("uplink('lb', 0, 'u0')"), mutable=False)
    execution.insert(parse_tuple("uplink('lb', 1, 'u1')"), mutable=False)
    execution.insert(parse_tuple("hostAt('u0', 1, 'h')"), mutable=False)
    execution.insert(parse_tuple("hostAt('u1', 1, 'h')"), mutable=False)


def choose(seed, pkt_id):
    return builtin_call("ecmp_choice", [seed, pkt_id, 2])


def pick_ids(seed, want_uplink):
    """Two packet ids that hash to the desired uplink under the seed."""
    ids = [i for i in range(1, 60) if choose(seed, i) == want_uplink]
    return ids[0], ids[1]


class TestDeterministicECMP:
    def test_replay_reproduces_balancing(self):
        program = parse_program(ECMP_PROGRAM)
        execution = Execution(program)
        base_network(execution, 7)
        for pkt_id in range(1, 10):
            execution.insert(parse_tuple(f"pkt({pkt_id}, 10.0.0.9)"),
                             mutable=False)
        live = set(map(str, execution.engine.lookup("arrived")))
        replayed = execution.replay()
        assert set(map(str, replayed.engine.lookup("arrived"))) == live

    def test_diffprov_reasons_through_the_balancer(self):
        # The reference is an earlier run (same device seed) in which
        # u1's route was still correct.  Both packets hash onto u1 —
        # DiffProv follows the balancing function through the seed and
        # fixes u1's (now broken) entry.
        program = parse_program(ECMP_PROGRAM)
        good = Execution(program, name="good")
        base_network(good, 7)
        good.insert(parse_tuple("route('u1', 10.0.0.0/24, 1)"))
        bad = Execution(program, name="bad")
        base_network(bad, 7)
        bad.insert(parse_tuple("route('u1', 10.0.0.0/32, 1)"))  # broken
        good_id, bad_id = pick_ids(7, 1)
        good.insert(parse_tuple(f"pkt({good_id}, 10.0.0.9)"), mutable=False)
        bad.insert(parse_tuple(f"pkt({bad_id}, 10.0.0.9)"), mutable=False)
        report = DiffProv(program).diagnose(
            good,
            bad,
            parse_tuple(f"delivered('h', {good_id}, 10.0.0.9)"),
            parse_tuple(f"arrived('u1', {bad_id}, 10.0.0.9)"),
        )
        assert report.success
        assert report.num_changes == 1
        change = report.changes[0]
        assert change.insert == parse_tuple("route('u1', 10.0.0.0/24, 1)")
        assert change.remove == (parse_tuple("route('u1', 10.0.0.0/32, 1)"),)


class TestNondeterministicSeeds:
    def test_diffprov_aborts_and_names_the_divergence(self):
        # The two executions use different (immutable) ECMP seeds that
        # send the same flow to different uplinks: from DiffProv's view
        # the same rule no longer has the same effect.  It aborts with a
        # typed failure that pins the uncontrollable state — the seed —
        # as what would have to change, which is the paper's "suggest
        # that point as a potential race condition".
        program = parse_program(ECMP_PROGRAM)
        seed_good, seed_bad = 7, 8
        flow = next(
            i for i in range(1, 60)
            if choose(seed_good, i) == 0 and choose(seed_bad, i) == 1
        )
        good = Execution(program, name="good")
        base_network(good, seed_good)
        good.insert(parse_tuple("route('u0', 10.0.0.0/24, 1)"))
        good.insert(parse_tuple(f"pkt({flow}, 10.0.0.9)"), mutable=False)
        bad = Execution(program, name="bad")
        base_network(bad, seed_bad)
        bad.insert(parse_tuple("route('u0', 10.0.0.0/24, 1)"))
        bad.insert(parse_tuple(f"pkt({flow}, 10.0.0.9)"), mutable=False)

        report = DiffProv(program).diagnose(
            good,
            bad,
            parse_tuple(f"delivered('h', {flow}, 10.0.0.9)"),
            parse_tuple(f"arrived('u1', {flow}, 10.0.0.9)"),
        )
        assert not report.success
        assert report.failure_category == "immutable-change-required"
        assert "ecmpSeed" in str(report.failure)
