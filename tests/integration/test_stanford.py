"""Integration test: the Section 6.7 complex-network scenario."""

import pytest

from repro.addresses import Prefix
from repro.scenarios.stanford import (
    StanfordForwardingError,
    build_stanford_config,
    stanford_topology,
)


@pytest.fixture(scope="module")
def scenario():
    return StanfordForwardingError(
        background_packets=60, entries_per_router=120, acl_rules=48
    ).setup()


class TestTopologyGeneration:
    def test_sixteen_routers(self):
        topo = stanford_topology()
        assert len(topo.switches()) == 16
        assert len([s for s in topo.switches() if s.startswith("oz")]) == 14

    def test_every_zone_reaches_both_backbones(self):
        topo = stanford_topology()
        for index in range(1, 15):
            neighbors = topo.neighbors(f"oz{index}")
            assert "bb1" in neighbors and "bb2" in neighbors

    def test_config_scales_with_parameters(self):
        _, small, _ = build_stanford_config(entries_per_router=50, acl_rules=16)
        _, large, _ = build_stanford_config(entries_per_router=200, acl_rules=16)
        assert large.total_entries() > small.total_entries()

    def test_twenty_one_faults_injected(self):
        _, _, faults = build_stanford_config(entries_per_router=50, acl_rules=16)
        assert len(faults) == 21  # the real one + 20 decoys

    def test_faults_cover_on_and_off_path_routers(self):
        _, _, faults = build_stanford_config(entries_per_router=50, acl_rules=16)
        switches = {fault.args[0] for fault in faults[1:]}
        assert switches & {"oz1", "bb1", "oz2"}
        assert switches - {"oz1", "bb1", "oz2"}


class TestDiagnosis:
    def test_symptom(self, scenario):
        # The bad packet is dropped at oz2; the reference is delivered.
        result = scenario.good_execution.materialize()
        assert result.alive(scenario.good_event)
        assert result.alive(scenario.bad_event)

    def test_root_cause_found_despite_noise(self, scenario):
        report = scenario.diagnose()
        assert report.success
        assert report.num_changes == 1
        (removed,) = report.changes[0].remove
        assert removed == scenario.expected_fault
        assert removed.args[3] == Prefix("172.20.10.32/27")

    def test_no_decoy_faults_in_diagnosis(self, scenario):
        report = scenario.diagnose()
        touched = set()
        for change in report.changes:
            touched.update(change.remove)
            if change.insert is not None:
                touched.add(change.insert)
        decoys = set(scenario.faults[1:])
        assert not (touched & decoys)

    def test_trees_are_small_but_diff_is_larger(self, scenario):
        good, bad = scenario.trees()
        assert good.size() < 120 and bad.size() < 120
        assert scenario.plain_diff_size() > max(good.size(), bad.size())

    def test_seed_types_are_packets(self, scenario):
        report = scenario.diagnose()
        assert report.good_seed.table == "packet"
        assert report.bad_seed.table == "packet"
