"""Integration tests: the four SDN scenarios of Section 6.2 / Table 1."""

import pytest

from repro.addresses import Prefix
from repro.scenarios import (
    SDN1BrokenFlowEntry,
    SDN2MultiControllerInconsistency,
    SDN3UnexpectedRuleExpiration,
    SDN4MultipleFaultyEntries,
)

BACKGROUND = 8  # keep integration tests fast; benches use more


@pytest.fixture(scope="module")
def sdn1():
    return SDN1BrokenFlowEntry(background_packets=BACKGROUND).setup()


@pytest.fixture(scope="module")
def sdn2():
    return SDN2MultiControllerInconsistency(background_packets=BACKGROUND).setup()


@pytest.fixture(scope="module")
def sdn3():
    return SDN3UnexpectedRuleExpiration(background_packets=BACKGROUND).setup()


@pytest.fixture(scope="module")
def sdn4():
    return SDN4MultipleFaultyEntries(background_packets=BACKGROUND).setup()


class TestSDN1:
    def test_symptom_reproduced(self, sdn1):
        good, bad = sdn1.trees()
        assert good.size() > 0 and bad.size() > 0

    def test_diffprov_finds_single_root_cause(self, sdn1):
        report = sdn1.diagnose()
        assert report.success
        assert report.num_changes == 1

    def test_root_cause_is_widened_prefix(self, sdn1):
        report = sdn1.diagnose()
        fixed = report.changes[0].insert
        assert fixed.table == "flowEntry"
        assert fixed.args[2] == Prefix("4.3.2.0/23")

    def test_plain_diff_larger_than_either_tree(self, sdn1):
        # Section 2.5: the naive diff can exceed the trees themselves.
        good, bad = sdn1.trees()
        assert sdn1.plain_diff_size() > max(good.size(), bad.size())

    def test_seeds_are_the_two_packets(self, sdn1):
        report = sdn1.diagnose()
        assert report.good_seed.table == "packet"
        assert report.bad_seed.table == "packet"
        assert report.good_seed != report.bad_seed


class TestSDN2:
    def test_diffprov_removes_hijacking_rule(self, sdn2):
        report = sdn2.diagnose()
        assert report.success
        assert report.num_changes == 1
        change = report.changes[0]
        assert change.insert is None
        (removed,) = change.remove
        assert removed.table == "flowEntry"
        assert removed.args[1] == 10  # the higher-priority app B rule
        assert removed.args[2] == Prefix("4.3.0.0/16")


class TestSDN3:
    def test_diffprov_restores_expired_rule(self, sdn3):
        report = sdn3.diagnose()
        assert report.success
        assert report.num_changes == 1
        restored = report.changes[0].insert
        assert restored.table == "flowEntry"
        assert restored.args[3] == Prefix("239.0.0.1/32")

    def test_reference_is_in_the_past(self, sdn3):
        # The good packet preceded the deletion; the temporal graph must
        # still answer its provenance query.
        good, bad = sdn3.trees()
        assert good.tuple_root.appear_time < bad.tuple_root.appear_time


class TestSDN4:
    def test_two_rounds_one_change_each(self, sdn4):
        report = sdn4.diagnose()
        assert report.success
        assert report.num_changes == 2
        assert report.changes_per_round == [1, 1]  # Table 1's "1/1"

    def test_both_broken_switches_identified(self, sdn4):
        report = sdn4.diagnose()
        switches = sorted(change.insert.args[0] for change in report.changes)
        assert switches == ["s2", "s3"]

    def test_fixes_are_widened_prefixes(self, sdn4):
        report = sdn4.diagnose()
        for change in report.changes:
            assert change.insert.args[2] == Prefix("4.3.2.0/23")


class TestTable1Shape:
    """The qualitative claims of Table 1 hold on every SDN scenario."""

    @pytest.mark.parametrize("fixture_name", ["sdn1", "sdn2", "sdn3", "sdn4"])
    def test_diffprov_much_smaller_than_trees(self, fixture_name, request):
        scenario = request.getfixturevalue(fixture_name)
        row = scenario.table1_row()
        assert row["success"]
        assert row["diffprov"] <= 2
        assert row["good_tree"] > 10 * row["diffprov"]
        assert row["bad_tree"] > 10 * row["diffprov"]
