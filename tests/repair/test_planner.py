"""Rollback planning on SDN1: ranking, minimality, and the probe veto.

SDN1 is the paper's running example — the 4.3.2.0/24 flow entry that
should have been /23 — so the expected plan set is known exactly:

- rank 1: the minimal prefix widening (insert the /23 entry), edit
  size 1, blast radius 0 against the verified reference world;
- rejected [replace-stale]: widening *in place* (retire the /24 entry)
  retracts the deliveries the /24 entry already supported — the
  good-probe veto;
- rejected [delete-spurious]: removing the /24 entry alone leaves the
  bad packet falling through to the catch-all — the symptom persists.
"""

import pytest

from repro.api import Session
from repro.errors import ReproError
from repro.repair import (
    REJECT_PROBES,
    REJECT_SYMPTOM,
    RollbackPlan,
    RollbackPlanner,
)
from repro.replay import Change


@pytest.fixture(scope="module")
def sdn1_repair():
    with Session(scenario="SDN1") as session:
        report = session.repair()
        yield session, report


class TestSDN1Plans:
    def test_diagnosis_still_succeeds(self, sdn1_repair):
        _, report = sdn1_repair
        assert report.success
        assert report.repair["status"] == "ok"

    def test_top_plan_is_the_minimal_prefix_widening(self, sdn1_repair):
        _, report = sdn1_repair
        plans = report.repair["plans"]
        assert plans, "SDN1 must yield at least one verified plan"
        top = plans[0]
        assert top["rank"] == 1
        assert top["edit_size"] == 1
        assert top["blast_radius"] == 0
        assert top["symptom_gone"] is True
        assert top["good_probes_ok"] is True
        (step,) = top["steps"]
        assert "4.3.2.0/23" in step
        assert step.startswith("insert flowEntry")

    def test_good_probes_were_collected(self, sdn1_repair):
        _, report = sdn1_repair
        # 30 background packets plus the good delivery (and its DPI
        # mirror) give a healthy regression suite.
        assert report.repair["probes"] > 10

    def test_in_place_widening_is_vetoed_by_good_probes(self, sdn1_repair):
        _, report = sdn1_repair
        rejected = {
            entry["origin"]: entry for entry in report.repair["rejected"]
        }
        veto = rejected["replace-stale"]
        assert veto["reason"] == REJECT_PROBES
        assert veto["probes_failed"] > 0
        assert veto["failed_probes"]
        assert any("delivered" in probe for probe in veto["failed_probes"])

    def test_bare_deletion_leaves_the_symptom(self, sdn1_repair):
        _, report = sdn1_repair
        rejected = {
            entry["origin"]: entry for entry in report.repair["rejected"]
        }
        assert rejected["delete-spurious"]["reason"] == REJECT_SYMPTOM

    def test_replay_accounting_covers_prepare_and_every_plan(
        self, sdn1_repair
    ):
        _, report = sdn1_repair
        section = report.repair
        verified = len(section["plans"])
        rejected = len(section["rejected"])
        # pristine + reference + one replay per enumerated plan.
        assert section["replays"] == 2 + verified + rejected

    def test_summary_carries_the_ranked_plans(self, sdn1_repair):
        _, report = sdn1_repair
        text = report.summary()
        assert "repair: 1 verified plan(s)" in text
        assert "#1 [revert-to-reference]" in text
        assert "rejected [replace-stale]: breaks-good-probes" in text


class TestRepairIsOptIn:
    def test_diagnose_leaves_the_section_empty(self):
        with Session(scenario="SDN1") as session:
            report = session.diagnose()
        assert report.repair is None
        assert report.canonical_dict()["repair"] is None

    def test_per_call_override_attaches_plans(self):
        with Session(scenario="SDN1") as session:
            report = session.diagnose(repair=True)
            assert report.repair["status"] == "ok"
            # The override is per-call: the next diagnose is plain.
            again = session.diagnose()
            assert again.repair is None


class TestPlanModel:
    def test_a_plan_needs_at_least_one_step(self):
        with pytest.raises(ReproError):
            RollbackPlan([], "empty")

    def test_identity_rests_on_steps_not_origin(self):
        tup = Session(scenario="SDN1").diagnose().changes[0].insert
        a = RollbackPlan([Change(insert=tup)], "revert-to-reference")
        b = RollbackPlan([Change(insert=tup)], "insert-missing")
        assert a.key() == b.key()
        assert a.edit_size == b.edit_size == 1

    def test_touched_counts_inserts_and_removes(self):
        with Session(scenario="SDN1") as session:
            report = session.diagnose()
            tup = report.changes[0].insert
            planner = _planner(session, report)
            planner.prepare()
            (stale,) = planner._counterparts(tup)
        replace = RollbackPlan(
            [Change(insert=tup, remove=(stale,))], "replace-stale"
        )
        assert replace.touched == 2


def _planner(session, report, **kwargs):
    anchor = session.bad.log.index_of_insert(report.bad_seed)
    return RollbackPlanner(
        session.program,
        session.bad,
        good_event=session.good_event,
        bad_event=session.bad_event,
        changes=report.changes,
        anchor_index=anchor,
        **kwargs,
    )


class TestPlannerDirectly:
    def test_no_changes_short_circuits(self):
        with Session(scenario="SDN1") as session:
            report = session.diagnose()
            planner = _planner(session, report)
            planner.changes = []
            section = planner.plan()
        assert section == {
            "status": "no-changes",
            "probes": 0,
            "replays": 0,
            "plans": [],
            "rejected": [],
        }

    def test_enumeration_is_deduplicated(self):
        with Session(scenario="SDN1") as session:
            report = session.diagnose()
            planner = _planner(session, report)
            plans = planner.enumerate()
        keys = [plan.key() for plan in plans]
        assert len(keys) == len(set(keys))
        assert plans[0].origin == "revert-to-reference"

    def test_removing_the_catch_all_breaks_good_probes(self):
        """The veto on a hand-built plan: drop the priority-1 fallback.

        Without the catch-all, the bad packet is no longer delivered
        anywhere (symptom gone!) — but every background delivery the
        fallback carried is retracted with it.  Exactly the plan shape
        the regression suite exists to kill.
        """
        with Session(scenario="SDN1") as session:
            report = session.diagnose()
            planner = _planner(session, report)
            planner.prepare()
            catch_all = [
                tup
                for tup in planner.mutable_base
                if tup.table == "flowEntry"
                and tup.args[0] == "s2"
                and tup.args[1] == 1
            ]
            assert catch_all, "SDN1 should have the priority-1 fallback"
            plan = RollbackPlan(
                [Change(remove=(catch_all[0],))], "hand-built"
            )
            verdict = planner.verify(plan)
        assert verdict["symptom_gone"] is True
        assert verdict["probes_failed"] > 0

    def test_degraded_diagnosis_skips_planning(self):
        # SDN1-F diagnoses under a fault plan; a degraded Δ is not a
        # trustworthy basis for fix plans.
        with Session(scenario="SDN1-F", repair=True) as session:
            report = session.diagnose()
        if report.success and report.degraded:
            assert report.repair["status"] == "skipped-degraded"
            assert report.repair["plans"] == []
