"""SIGKILL mid-repair, resume from the journal, byte-identical plans.

Repair rides the same journal contract as the search itself: plan
verdicts are durable (kind ``"repair"``), the phase boundary is marked
(``"name":"repair"``), and a resumed run replays recorded verdicts
instead of re-verifying.  Two kill points:

- at the repair phase boundary — the diagnosis is already journaled,
  every plan verification is recomputed on resume;
- right after the first plan verdict hit the disk — the resumed run
  reuses it (``skipped_candidates`` counts it).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Session

_CHILD = str(Path(__file__).with_name("_repair_child.py"))
_SRC = str(Path(__file__).parents[2] / "src")


def _child_env(**holds):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update({key: str(value) for key, value in holds.items()})
    return env


def _child_argv(scenario, journal, out):
    return [sys.executable, _CHILD, scenario, journal, out]


def _run_child(scenario, journal, out, env, timeout=120):
    return subprocess.run(
        _child_argv(scenario, journal, out),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _kill_once_held(scenario, journal, out, holds, sentinel):
    """Start a held child, SIGKILL it once ``sentinel`` is journaled."""
    proc = subprocess.Popen(
        _child_argv(scenario, journal, out),
        env=_child_env(REPRO_TEST_HOLD_S="60", **holds),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 90
        while time.monotonic() < deadline:
            if os.path.exists(journal) and sentinel in open(
                journal, encoding="utf-8", errors="replace"
            ).read():
                break
            if proc.poll() is not None:
                pytest.fail(
                    f"child exited (rc={proc.returncode}) before the "
                    f"hold point {sentinel!r} was journaled"
                )
            time.sleep(0.05)
        else:
            pytest.fail(f"hold point {sentinel!r} never reached")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.wait(timeout=30)
    assert not os.path.exists(out), "killed child must not have finished"


@pytest.mark.parametrize(
    "holds,sentinel",
    [
        # Killed at the repair phase boundary: the diagnosis conclusion
        # is journaled, all plan verifications recompute on resume.
        ({"REPRO_TEST_HOLD_PHASE": "repair"}, '"name":"repair"'),
        # Killed right after the first plan verdict was fsync'd: the
        # resumed run replays it off the disk.  (Without minimize=True
        # the only verdict writes in this run are repair verdicts.)
        ({"REPRO_TEST_HOLD_AFTER_VERDICTS": "1"}, '"kind":"repair"'),
    ],
)
def test_sigkill_mid_repair_then_resume_is_byte_identical(
    tmp_path, holds, sentinel
):
    journal = str(tmp_path / "repair.journal")
    out = str(tmp_path / "report.json")

    baseline = Session(scenario="SDN1", repair=True).diagnose()
    assert baseline.repair["status"] == "ok"

    _kill_once_held("SDN1", journal, out, holds, sentinel)

    resumed = _run_child("SDN1", journal, out, _child_env())
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(open(out, encoding="utf-8").read())
    assert payload["canonical"] == baseline.canonical_json()
    section = payload["resilience"]["journal"]
    assert section["resumed"] is True
    if "REPRO_TEST_HOLD_AFTER_VERDICTS" in holds:
        assert section["skipped_candidates"] >= 1
