"""Deadline degradation: repair gives way, the diagnosis survives.

Rollback planning is strictly best-effort — when the incident budget
runs out mid-planning the report degrades to "diagnosis only": the
diagnosis conclusion stands, ``report.repair`` says why it is empty,
and the resilience section pins the expiry to the repair phase.
"""

import pytest

from repro.api import Session
from repro.errors import DeadlineExceeded
from repro.resilience import Deadline


class _RepairBudget(Deadline):
    """A deadline that expires only when the repair phase asks.

    ``allow`` repair-phase checks pass before expiry, so tests can
    place the cut before planning starts or between verification
    replays.  All other phases always pass: the diagnosis itself
    finishes untouched.
    """

    def __init__(self, allow=0):
        super().__init__(3600.0)
        self.allow = allow
        self.repair_checks = 0

    def check(self, phase=""):
        if phase != "repair":
            return
        self.repair_checks += 1
        if self.repair_checks > self.allow:
            raise DeadlineExceeded(
                "repair budget exhausted", phase=phase
            )


def test_expiry_before_planning_degrades_to_diagnosis_only():
    budget = _RepairBudget(allow=0)
    with Session(scenario="SDN1", repair=True, deadline_s=budget) as session:
        report = session.diagnose()
    # The diagnosis conclusion is untouched...
    assert report.success
    assert report.changes
    # ...and the repair section records the degradation.
    assert report.repair == {
        "status": "deadline-exceeded",
        "probes": 0,
        "replays": 0,
        "plans": [],
        "rejected": [],
    }
    deadline = report.resilience["deadline"]
    assert deadline["expired"] is True
    assert deadline["expired_in"] == "repair"


def test_expiry_between_verifications_keeps_the_replay_count():
    # Three repair-phase checks pass: opening plan(), mid-prepare, and
    # the one ahead of the first serial verification.  The cut lands
    # before the second plan's replay.
    budget = _RepairBudget(allow=3)
    with Session(
        scenario="SDN1", repair=True, workers=1, deadline_s=budget
    ) as session:
        report = session.diagnose()
    assert report.success
    section = report.repair
    assert section["status"] == "deadline-exceeded"
    assert section["plans"] == []
    # pristine + reference + the one verification that completed.
    assert section["replays"] == 3
    assert report.resilience["deadline"]["expired_in"] == "repair"


def test_roomy_budget_leaves_planning_untouched():
    with Session(
        scenario="SDN1", repair=True, deadline_s=3600.0
    ) as session:
        report = session.diagnose()
    assert report.repair["status"] == "ok"
    assert report.resilience["deadline"]["expired"] is False
    assert "expired_in" not in report.resilience["deadline"]
