"""The ``repair`` option over the service protocol, end to end.

``repair`` is a whitelisted request option: a tenant asks for fix
plans per request, the worker's Session runs the planner under the
service's deadline/journal contract, and the ranked section comes back
both as a convenience field and inside the canonical report.
"""

import asyncio
import json

import pytest

from repro.service import DiagnosisServer, ServiceClient


@pytest.fixture(scope="module")
def server_loop():
    loop = asyncio.new_event_loop()
    server = DiagnosisServer(workers=2)
    loop.run_until_complete(server.start())
    yield loop, server
    loop.run_until_complete(server.shutdown())
    loop.close()


def test_repair_option_returns_ranked_plans(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)

    response = loop.run_until_complete(
        client.diagnose("SDN1", options={"repair": True})
    )
    assert response["status"] == "ok"
    report = response["report"]
    assert report["success"] is True

    section = report["repair"]
    assert section["status"] == "ok"
    assert section["plans"][0]["rank"] == 1
    assert section["plans"][0]["origin"] == "revert-to-reference"

    # The convenience field mirrors the canonical report exactly — the
    # repair section is a conclusion, not telemetry.
    canonical = json.loads(report["canonical"])
    assert canonical["repair"] == section


def test_repair_section_matches_a_local_session(server_loop):
    from repro.api import Session

    loop, server = server_loop
    client = ServiceClient(server)

    local = Session(scenario="SDN1", repair=True).diagnose()
    response = loop.run_until_complete(
        client.diagnose("SDN1", options={"repair": True})
    )
    assert response["report"]["canonical"] == local.canonical_json()


def test_plain_requests_stay_repair_free(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)

    response = loop.run_until_complete(client.diagnose("SDN1"))
    assert response["status"] == "ok"
    report = response["report"]
    assert "repair" not in report
    assert json.loads(report["canonical"])["repair"] is None


def test_option_whitelist_still_rejects_typos(server_loop):
    loop, server = server_loop

    response = loop.run_until_complete(
        server.submit(
            {
                "id": "typo",
                "kind": "diagnose",
                "scenario": "SDN1",
                "options": {"repiar": True},
            }
        )
    )
    assert response["status"] == "error"
    assert response["category"] == "protocol"
    assert "repiar" in response["message"]
