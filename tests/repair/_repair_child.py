"""Subprocess body for the repair kill-and-resume tests.

Runs one journaled repair-enabled diagnosis and dumps the canonical
report plus the resilience section as JSON.  The parent test kills this
process at a deterministic hold point (REPRO_TEST_HOLD_* — see
repro.resilience.journal) on the first run, then reruns it to resume.

Usage: python _repair_child.py SCENARIO JOURNAL OUT
"""

import json
import sys

from repro.api import Session


def main() -> int:
    scenario, journal, out = sys.argv[1:4]
    session = Session(
        scenario=scenario, repair=True, journal=journal, resume=True
    )
    report = session.diagnose()
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "canonical": report.canonical_json(),
                "resilience": report.resilience,
            },
            handle,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
