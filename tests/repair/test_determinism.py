"""The repair section is part of the canonical report — and therefore
part of the determinism contract: byte-identical across worker counts,
replay-cache states, and journal resume (docs/performance.md,
docs/resilience.md)."""

import pytest

from repro.api import Session


@pytest.fixture(scope="module")
def baseline():
    with Session(scenario="SDN1", repair=True) as session:
        report = session.diagnose()
    assert report.repair["status"] == "ok"
    return report.canonical_json()


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("replay_cache", [True, False])
def test_workers_times_cache_matrix(baseline, workers, replay_cache):
    with Session(
        scenario="SDN1",
        repair=True,
        workers=workers,
        replay_cache=replay_cache,
    ) as session:
        report = session.diagnose()
    assert report.canonical_json() == baseline


def test_journal_resume_reuses_plan_verdicts(baseline, tmp_path):
    journal = str(tmp_path / "repair.journal")
    with Session(scenario="SDN1", repair=True, journal=journal) as session:
        first = session.diagnose()
    assert first.canonical_json() == baseline
    assert first.resilience["journal"]["resumed"] is False

    with Session(scenario="SDN1", repair=True) as session:
        resumed = session.diagnose(resume_from=journal)
    assert resumed.canonical_json() == baseline
    section = resumed.resilience["journal"]
    assert section["resumed"] is True
    # All three enumerated plans' verdicts came off the disk.
    assert section["skipped_candidates"] >= 3


def test_parallel_run_may_resume_a_serial_journal(baseline, tmp_path):
    # Plan verdicts are independent of evaluation order, so unlike the
    # minimality pass a resumed journal does not force the serial path
    # — and a workers=4 resume of a workers=1 journal stays canonical.
    journal = str(tmp_path / "repair.journal")
    with Session(scenario="SDN1", repair=True, journal=journal) as session:
        session.diagnose()
    with Session(scenario="SDN1", repair=True, workers=4) as session:
        resumed = session.diagnose(resume_from=journal)
    assert resumed.canonical_json() == baseline


def test_repair_toggle_changes_the_journal_fingerprint(tmp_path):
    from repro.errors import JournalError

    journal = str(tmp_path / "repair.journal")
    with Session(scenario="SDN1", repair=True, journal=journal) as session:
        session.diagnose()
    # Resuming the repair journal into a repair-less run would replay
    # plan verdicts into a search that never asks for them; the
    # fingerprint mismatch rejects it up front.
    with Session(scenario="SDN1") as session:
        with pytest.raises(JournalError):
            session.diagnose(resume_from=journal)


def test_cross_backend_byte_identity(baseline):
    for engine in ("reference", "indexed", "compiled"):
        with Session(scenario="SDN1", repair=True, engine=engine) as session:
            report = session.diagnose()
        assert report.canonical_json() == baseline
