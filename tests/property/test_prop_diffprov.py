"""Property-based tests for the DiffProv postcondition.

Whatever the fault, a successful diagnosis must satisfy Definition 1:
applying Δ(B→G) to a clone of the bad execution produces the
counterpart of the good event while preserving the bad seed — i.e.
there are no "false positives" in the paper's sense (Section 4.7).
"""

from hypothesis import given, settings, strategies as st

from repro.core import DiffProv
from repro.datalog import parse_program, parse_tuple
from repro.datalog.tuples import Tuple
from repro.replay import Execution

PROGRAM = """
table stim(Id, Y) event immutable.
table cfg(K, V) mutable.
table mid(Id, W) event.
table out(Id, W).
table fallback(Id).

r1 mid(Id, W) :- stim(Id, Y), cfg('scale', Z), W := Y + Z.
r2 out(Id, W) :- mid(Id, W).
r3 fallback(Id) :- stim(Id, Y).
"""

values = st.integers(min_value=-20, max_value=20)


@settings(max_examples=25, deadline=None)
@given(good_scale=values, bad_scale=values, stim_y=values, noise=st.lists(values, max_size=4))
def test_diagnosis_postcondition(good_scale, bad_scale, stim_y, noise):
    program = parse_program(PROGRAM)
    good = Execution(program, name="good")
    bad = Execution(program, name="bad")
    for index, value in enumerate(noise):
        good.insert(Tuple("cfg", [f"noise{index}", value]))
        bad.insert(Tuple("cfg", [f"noise{index}", value + 1]))
    good.insert(Tuple("cfg", ["scale", good_scale]))
    bad.insert(Tuple("cfg", ["scale", bad_scale]))
    good.insert(Tuple("stim", [1, stim_y]))
    bad.insert(Tuple("stim", [2, stim_y]))

    good_event = Tuple("out", [1, stim_y + good_scale])
    bad_event = Tuple("fallback", [2])
    report = DiffProv(program).diagnose(good, bad, good_event, bad_event)

    assert report.success
    if good_scale == bad_scale:
        assert report.num_changes == 0
        return
    assert report.num_changes == 1

    # Postcondition: replaying with Δ produces the expected counterpart
    # of the good event under the seed mapping (Id 1 -> 2) ...
    anchor = bad.log.index_of_insert(Tuple("stim", [2, stim_y]))
    replayed = bad.replay(report.changes, anchor)
    expected = Tuple("out", [2, stim_y + good_scale])
    assert replayed.alive(expected)
    # ... and the original executions are untouched.
    assert not bad.engine.exists(expected)
    # Δ never touches immutable tuples or the noise entries.
    for change in report.changes:
        for tup in (change.insert, *change.remove):
            if tup is not None:
                assert tup.table == "cfg"
                assert tup.args[0] == "scale"


@settings(max_examples=15, deadline=None)
@given(values, values)
def test_diagnosis_is_deterministic(good_scale, bad_scale):
    def run():
        program = parse_program(PROGRAM)
        good = Execution(program, name="good")
        bad = Execution(program, name="bad")
        good.insert(Tuple("cfg", ["scale", good_scale]))
        bad.insert(Tuple("cfg", ["scale", bad_scale]))
        good.insert(Tuple("stim", [1, 5]))
        bad.insert(Tuple("stim", [2, 5]))
        report = DiffProv(program).diagnose(
            good,
            bad,
            Tuple("out", [1, 5 + good_scale]),
            Tuple("fallback", [2]),
        )
        return report.success, [c.describe() for c in report.changes]

    assert run() == run()
