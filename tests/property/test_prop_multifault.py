"""Randomized multi-fault injection: one roll-forward round per fault.

SDN4 generalized: K overly specific entries at distinct random switches
on a random-length chain.  DiffProv must need exactly K rounds, fix
exactly the K broken switches, and the combined Δ must restore the bad
packet end to end.
"""

from hypothesis import given, settings, strategies as st

from repro.core import DiffProv
from repro.replay import Execution
from repro.sdn import model

from tests.property.test_prop_fault_injection import (
    BAD_SRC,
    DST,
    GOOD_SRC,
    build_chain,
    wire_and_route,
)


@st.composite
def multifault_cases(draw):
    n_switches = draw(st.integers(min_value=3, max_value=6))
    n_faults = draw(st.integers(min_value=2, max_value=min(3, n_switches)))
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_switches - 1),
            min_size=n_faults,
            max_size=n_faults,
            unique=True,
        )
    )
    return n_switches, sorted(positions)


class TestMultiFault:
    @settings(max_examples=15, deadline=None)
    @given(multifault_cases())
    def test_one_round_per_fault(self, case):
        n_switches, fault_positions = case
        topo, switches = build_chain(n_switches)
        faulty = {switches[i] for i in fault_positions}
        program = model.sdn_program()
        execution = Execution(program, name="chain")

        # wire_and_route narrows one switch; narrow the rest manually by
        # replacing their entries after installation.
        first_faulty = switches[fault_positions[0]]
        specific = wire_and_route(execution, topo, switches, first_faulty)
        from repro.addresses import Prefix

        for position in fault_positions[1:]:
            name = switches[position]
            correct = specific[name]
            execution.delete(correct)
            execution.insert(
                model.flow_entry(
                    name, 10, Prefix("4.3.2.0/24"), correct.args[3],
                    correct.args[4],
                ),
                mutable=True,
            )

        execution.insert(model.packet("s1", 1, GOOD_SRC, DST), mutable=False)
        execution.insert(model.packet("s1", 2, BAD_SRC, DST), mutable=False)
        good_event = model.delivered("special", 1, GOOD_SRC, DST)
        bad_event = model.delivered("default", 2, BAD_SRC, DST)
        assert execution.engine.exists(good_event), case
        assert execution.engine.exists(bad_event), case

        report = DiffProv(program).diagnose(
            execution, execution, good_event, bad_event
        )
        assert report.success, (case, report.summary())
        # One change per fault, one round per fault (Table 1's "1/1").
        assert report.num_changes == len(fault_positions), (
            case,
            report.root_causes(),
        )
        assert report.changes_per_round == [1] * len(fault_positions), case
        fixed_switches = {c.insert.args[0] for c in report.changes}
        assert fixed_switches == faulty, case

        anchor = execution.log.index_of_insert(
            model.packet("s1", 2, BAD_SRC, DST)
        )
        replayed = execution.replay(report.changes, anchor)
        assert replayed.alive(model.delivered("special", 2, BAD_SRC, DST)), case
