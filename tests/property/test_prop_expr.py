"""Property-based tests for expression evaluation and inversion."""

from hypothesis import assume, given, strategies as st

from repro.datalog.expr import BinOp, Const, Var, fold, invert
from repro.errors import EvaluationError, NonInvertibleError

# Invertible operator chains: build expressions of the form
# op_k(...op_1(X)...) with integer constants, then check that inversion
# recovers X from the forward value.

_INVERTIBLE_OPS = ["+", "-", "*", "^", "<<"]


@st.composite
def invertible_chains(draw):
    """An expression over X built from invertible operations."""
    expr = Var("X")
    depth = draw(st.integers(min_value=1, max_value=5))
    for _ in range(depth):
        op = draw(st.sampled_from(_INVERTIBLE_OPS))
        if op == "<<":
            constant = draw(st.integers(min_value=1, max_value=8))
        elif op == "*":
            constant = draw(st.integers(min_value=1, max_value=50))
        else:
            constant = draw(st.integers(min_value=-100, max_value=100))
        side = draw(st.booleans())
        # Keep X on one side only (inversion requires a single occurrence).
        if side and op in ("+", "*", "^"):
            expr = BinOp(op, Const(constant), expr)
        else:
            expr = BinOp(op, expr, Const(constant))
    return expr


class TestInversionRoundtrip:
    @given(invertible_chains(), st.integers(min_value=-1000, max_value=1000))
    def test_invert_recovers_input(self, expr, x):
        value = expr.evaluate({"X": x})
        solutions = invert(expr, "X", Const(value))
        recovered = []
        for solution in solutions:
            try:
                recovered.append(solution.evaluate({}))
            except EvaluationError:
                continue
        assert x in recovered

    @given(invertible_chains(), st.integers(min_value=-1000, max_value=1000))
    def test_solutions_satisfy_equation(self, expr, x):
        value = expr.evaluate({"X": x})
        for solution in invert(expr, "X", Const(value)):
            try:
                candidate = solution.evaluate({})
            except EvaluationError:
                continue
            assert expr.evaluate({"X": candidate}) == value


class TestSubstitutionProperties:
    @given(invertible_chains(), st.integers(min_value=-50, max_value=50))
    def test_substitute_then_evaluate(self, expr, x):
        substituted = expr.substitute({"X": Const(x)})
        assert substituted.variables() == frozenset()
        assert substituted.evaluate({}) == expr.evaluate({"X": x})

    @given(invertible_chains())
    def test_substitution_with_fresh_var_renames(self, expr):
        renamed = expr.substitute({"X": Var("Y")})
        assert "X" not in renamed.variables()
        assert "Y" in renamed.variables()


class TestFoldProperties:
    @given(invertible_chains(), st.integers(min_value=-50, max_value=50))
    def test_fold_preserves_value(self, expr, x):
        closed = expr.substitute({"X": Const(x)})
        assert fold(closed) == Const(closed.evaluate({}))

    @given(invertible_chains())
    def test_fold_preserves_open_semantics(self, expr):
        folded = fold(expr)
        for x in (-3, 0, 7):
            assert folded.evaluate({"X": x}) == expr.evaluate({"X": x})
