"""Property-based tests for engine determinism and replay equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import Engine, parse_program
from repro.datalog.tuples import Tuple
from repro.provenance import ProvenanceRecorder
from repro.provenance.vertices import VertexKind
from repro.replay import Execution

PROGRAM_TEXT = """
table edge(X, Y).
table src(X) event.
table reach(X, Y).
base reach(X, Y) :- src(X), edge(X, Y).
step reach(X, Z) :- reach(X, Y), edge(Y, Z).
"""

nodes = st.integers(min_value=0, max_value=5)
edge_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), nodes, nodes),
    min_size=1,
    max_size=20,
)


def apply_ops(engine, ops):
    inserted = set()
    for op, a, b in ops:
        tup = Tuple("edge", [a, b])
        if op == "insert":
            engine.insert(tup)
            inserted.add(tup)
        elif tup in inserted:
            engine.delete(tup)
        engine.run()
    engine.insert_and_run(Tuple("src", [0]))
    return engine


class TestEngineDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(edge_ops)
    def test_same_ops_same_state(self, ops):
        program = parse_program(PROGRAM_TEXT)
        first = apply_ops(Engine(program), ops)
        second = apply_ops(Engine(program), ops)
        assert first.store.all_tuples() == second.store.all_tuples()
        assert first.now == second.now

    @settings(max_examples=40, deadline=None)
    @given(edge_ops)
    def test_reachability_matches_graph_closure(self, ops):
        program = parse_program(PROGRAM_TEXT)
        engine = apply_ops(Engine(program), ops)
        # Recompute ground truth from the live edges.  Note that
        # event-driven derivations are permanent: reach() reflects the
        # edges alive when src(0) fired, which is the final edge set.
        edges = {(t.args[0], t.args[1]) for t in engine.lookup("edge")}
        expected = set()
        frontier = {0}
        while frontier:
            node = frontier.pop()
            for a, b in edges:
                if a == node and b not in expected:
                    expected.add(b)
                    frontier.add(b)
        reached = {t.args[1] for t in engine.lookup("reach") if t.args[0] == 0}
        assert reached == expected


class TestReplayEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(edge_ops)
    def test_replay_reproduces_state_and_graph(self, ops):
        program = parse_program(PROGRAM_TEXT)
        execution = Execution(program, mode="runtime")
        inserted = set()
        for op, a, b in ops:
            tup = Tuple("edge", [a, b])
            if op == "insert":
                execution.insert(tup)
                inserted.add(tup)
            elif tup in inserted:
                execution.delete(tup)
        execution.insert(Tuple("src", [0]), mutable=False)

        replayed = execution.replay()
        assert (
            replayed.engine.store.all_tuples()
            == execution.engine.store.all_tuples()
        )
        # The reconstructed provenance graph has the same vertex counts
        # by kind as the one recorded live.
        assert replayed.graph.stats() == execution.graph.stats()


class TestProvenanceInvariants:
    @settings(max_examples=30, deadline=None)
    @given(edge_ops)
    def test_graph_well_formed(self, ops):
        program = parse_program(PROGRAM_TEXT)
        recorder = ProvenanceRecorder()
        apply_ops(Engine(program, recorder=recorder), ops)
        graph = recorder.graph
        for vertex in graph.vertices:
            children = graph.children(vertex)
            if vertex.kind == VertexKind.APPEAR:
                # An APPEAR is caused by an INSERT or a DERIVE of the
                # same tuple.
                assert len(children) == 1
                (cause,) = children
                assert cause.kind in (VertexKind.INSERT, VertexKind.DERIVE)
                assert cause.tuple == vertex.tuple
            elif vertex.kind == VertexKind.EXIST:
                (cause,) = children
                assert cause.kind == VertexKind.APPEAR
                assert cause.time == vertex.time
            elif vertex.kind == VertexKind.DERIVE:
                # Causes exist no later than the derivation fires.
                for child in children:
                    assert child.time <= vertex.time

    @settings(max_examples=30, deadline=None)
    @given(edge_ops)
    def test_exist_intervals_disjoint_per_tuple(self, ops):
        program = parse_program(PROGRAM_TEXT)
        recorder = ProvenanceRecorder()
        engine = apply_ops(Engine(program, recorder=recorder), ops)
        graph = recorder.graph
        seen = set()
        for vertex in graph.vertices:
            if vertex.kind != VertexKind.EXIST or vertex.tuple in seen:
                continue
            seen.add(vertex.tuple)
            intervals = sorted(
                (v.time, v.end_time) for v in graph.exists_of(vertex.tuple)
            )
            for (start1, end1), (start2, _) in zip(intervals, intervals[1:]):
                assert end1 is not None and end1 <= start2
