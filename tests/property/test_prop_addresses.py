"""Property-based tests for addresses, prefixes, and prefix widening."""

from hypothesis import given, strategies as st

from repro.addresses import IPv4Address, Prefix
from repro.core.repair import widen_prefix

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address)
prefixes = st.tuples(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
).map(lambda t: Prefix(IPv4Address(t[0]), t[1]))


class TestAddressProperties:
    @given(addresses)
    def test_string_roundtrip(self, addr):
        assert IPv4Address(str(addr)) == addr

    @given(addresses)
    def test_octets_recompose(self, addr):
        octets = addr.octets()
        value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        assert value == addr.value

    @given(addresses, addresses)
    def test_ordering_consistent_with_value(self, a, b):
        assert (a < b) == (a.value < b.value)


class TestPrefixProperties:
    @given(prefixes)
    def test_network_is_canonical(self, pfx):
        assert Prefix(pfx.network, pfx.length) == pfx

    @given(prefixes)
    def test_contains_own_network(self, pfx):
        assert pfx.contains(pfx.network)

    @given(prefixes, addresses)
    def test_contains_agrees_with_mask(self, pfx, addr):
        mask = 0 if pfx.length == 0 else (0xFFFFFFFF << (32 - pfx.length)) & 0xFFFFFFFF
        assert pfx.contains(addr) == ((addr.value & mask) == pfx.network.value)

    @given(prefixes)
    def test_subnets_partition(self, pfx):
        if pfx.length >= 32:
            return
        low, high = pfx.subnets()
        assert low.length == high.length == pfx.length + 1
        assert pfx.contains(low.network) and pfx.contains(high.network)
        assert not low.overlaps(high)

    @given(prefixes, prefixes)
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)


class TestWideningProperties:
    @given(prefixes, addresses)
    def test_widened_contains_both(self, pfx, addr):
        widened = widen_prefix(pfx, addr)
        assert widened.contains(addr)
        assert widened.contains(pfx.network)

    @given(prefixes, addresses)
    def test_widening_never_lengthens(self, pfx, addr):
        assert widen_prefix(pfx, addr).length <= pfx.length

    @given(prefixes, addresses)
    def test_widening_is_minimal(self, pfx, addr):
        widened = widen_prefix(pfx, addr)
        if widened.length == pfx.length or widened.length == 32:
            return
        # One bit longer must exclude one of the two anchors.
        tighter = Prefix(addr, widened.length + 1)
        assert not (tighter.contains(addr) and tighter.contains(pfx.network))

    @given(prefixes, addresses)
    def test_widening_idempotent(self, pfx, addr):
        widened = widen_prefix(pfx, addr)
        assert widen_prefix(widened, addr) == widened
