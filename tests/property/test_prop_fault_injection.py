"""Randomized fault injection: DiffProv must localize whatever we break.

Chains of 2-5 switches route an "untrusted" subnet to a special host
and everything else to a default host, with a sink host per switch.
One fault is injected at a random switch, drawn from the three classes
the paper's SDN scenarios cover:

- ``narrow``  — an overly specific prefix (SDN1/SDN4),
- ``expire``  — the entry is deleted mid-trace (SDN3),
- ``hijack``  — an overlapping higher-priority entry (SDN2).

The property: the diagnosis succeeds, every change touches the faulty
switch, and replaying the bad log with Δ applied delivers the bad
packet to the special host without breaking the reference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.addresses import Prefix
from repro.core import DiffProv
from repro.replay import Execution
from repro.sdn import model
from repro.sdn.topology import Topology

ANY = Prefix("0.0.0.0/0")
INTENT = Prefix("4.3.2.0/23")
NARROW = Prefix("4.3.2.0/24")
GOOD_SRC = "4.3.2.9"
BAD_SRC = "4.3.3.9"
DST = "172.16.0.80"


def build_chain(n_switches):
    """A chain to the special host; every switch can bail out directly
    to the default host (so a fall-through anywhere is observable) and
    has a local sink (the hijack target)."""
    topo = Topology("chain")
    switches = [f"s{i}" for i in range(1, n_switches + 1)]
    for name in switches:
        topo.add_switch(name)
    topo.add_host("special", "172.16.0.1")
    topo.add_host("default", "172.16.0.2")
    for left, right in zip(switches, switches[1:]):
        topo.add_link(left, right)
    topo.add_link(switches[-1], "special")
    for name in switches:
        topo.add_link(name, "default")
        topo.add_host(f"sink-{name}", "172.16.9.9")
        topo.add_link(name, f"sink-{name}")
    return topo, switches


def wire_and_route(execution, topo, switches, narrow_at=None):
    for tup in topo.wiring_tuples():
        execution.insert(tup, mutable=False)
    last = switches[-1]
    specific_entries = {}
    for index, name in enumerate(switches):
        if name == last:
            special_port = topo.port(last, "special")
        else:
            special_port = topo.port(name, switches[index + 1])
        src = NARROW if name == narrow_at else INTENT
        specific = model.flow_entry(name, 10, src, ANY, special_port)
        specific_entries[name] = specific
        execution.insert(specific, mutable=True)
        execution.insert(
            model.flow_entry(name, 1, ANY, ANY, topo.port(name, "default")),
            mutable=True,
        )
    return specific_entries


@st.composite
def fault_cases(draw):
    n_switches = draw(st.integers(min_value=2, max_value=5))
    fault_kind = draw(st.sampled_from(["narrow", "expire", "hijack"]))
    fault_at = draw(st.integers(min_value=0, max_value=n_switches - 1))
    return n_switches, fault_kind, fault_at


class TestRandomFaults:
    @settings(max_examples=20, deadline=None)
    @given(fault_cases())
    def test_fault_localized_and_fixable(self, case):
        n_switches, fault_kind, fault_index = case
        topo, switches = build_chain(n_switches)
        faulty_switch = switches[fault_index]
        program = model.sdn_program()
        execution = Execution(program, name="chain")

        narrow_at = faulty_switch if fault_kind == "narrow" else None
        specific = wire_and_route(execution, topo, switches, narrow_at)

        # The reference packet, observed before the fault manifests.
        execution.insert(model.packet("s1", 1, GOOD_SRC, DST), mutable=False)
        if fault_kind == "expire":
            execution.delete(specific[faulty_switch])
        elif fault_kind == "hijack":
            # The conflicting rule arrives after the reference (a second
            # controller app, SDN2-style); it also covers the good source,
            # so the bad probe reuses it.
            execution.insert(
                model.flow_entry(
                    faulty_switch,
                    20,
                    Prefix("4.3.0.0/16"),
                    ANY,
                    topo.port(faulty_switch, f"sink-{faulty_switch}"),
                ),
                mutable=True,
            )
        bad_src = BAD_SRC if fault_kind != "hijack" else GOOD_SRC
        execution.insert(model.packet("s1", 2, bad_src, DST), mutable=False)

        good_event = model.delivered("special", 1, GOOD_SRC, DST)
        if fault_kind == "hijack":
            bad_event = model.delivered(f"sink-{faulty_switch}", 2, bad_src, DST)
        else:
            bad_event = model.delivered("default", 2, bad_src, DST)
        assert execution.engine.exists(good_event), case
        assert execution.engine.exists(bad_event), case

        report = DiffProv(program).diagnose(
            execution, execution, good_event, bad_event
        )
        assert report.success, (case, report.summary())
        # Localization: every change touches the faulty switch.
        for change in report.changes:
            touched = list(change.remove)
            if change.insert is not None:
                touched.append(change.insert)
            assert all(t.args[0] == faulty_switch for t in touched), (
                case,
                report.root_causes(),
            )
        # The fix works: replaying with Δ delivers the bad packet to the
        # special host.
        anchor = execution.log.index_of_insert(
            model.packet("s1", 2, bad_src, DST)
        )
        replayed = execution.replay(report.changes, anchor)
        assert replayed.alive(
            model.delivered("special", 2, bad_src, DST)
        ), case

    @settings(max_examples=10, deadline=None)
    @given(fault_cases())
    def test_diagnosis_size_is_one(self, case):
        """A single injected fault always yields a single change."""
        n_switches, fault_kind, fault_index = case
        topo, switches = build_chain(n_switches)
        faulty_switch = switches[fault_index]
        program = model.sdn_program()
        execution = Execution(program, name="chain")
        narrow_at = faulty_switch if fault_kind == "narrow" else None
        specific = wire_and_route(execution, topo, switches, narrow_at)
        execution.insert(model.packet("s1", 1, GOOD_SRC, DST), mutable=False)
        if fault_kind == "expire":
            execution.delete(specific[faulty_switch])
        elif fault_kind == "hijack":
            execution.insert(
                model.flow_entry(
                    faulty_switch, 20, Prefix("4.3.0.0/16"), ANY,
                    topo.port(faulty_switch, f"sink-{faulty_switch}"),
                ),
                mutable=True,
            )
        bad_src = BAD_SRC if fault_kind != "hijack" else GOOD_SRC
        execution.insert(model.packet("s1", 2, bad_src, DST), mutable=False)
        good_event = model.delivered("special", 1, GOOD_SRC, DST)
        if fault_kind == "hijack":
            bad_event = model.delivered(f"sink-{faulty_switch}", 2, bad_src, DST)
        else:
            bad_event = model.delivered("default", 2, bad_src, DST)
        report = DiffProv(program).diagnose(
            execution, execution, good_event, bad_event
        )
        assert report.success, case
        assert report.num_changes == 1, (case, report.root_causes())
