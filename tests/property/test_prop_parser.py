"""Property-based tests for the parser: rendering round-trips."""

from hypothesis import given, strategies as st

from repro.addresses import IPv4Address, Prefix
from repro.datalog.parser import parse_expr, parse_program, parse_tuple
from repro.datalog.tuples import Tuple

# -- tuples -----------------------------------------------------------------

simple_strings = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-. ", min_size=0, max_size=12
)
values = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    simple_strings,
    st.booleans(),
    st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address),
    st.tuples(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    ).map(lambda t: Prefix(IPv4Address(t[0]), t[1])),
)
table_names = st.from_regex(r"[a-z][a-zA-Z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s not in ("table", "true", "false", "argmax", "event", "state",
                        "mutable", "immutable", "count", "sum", "min", "max")
)
tuples = st.builds(
    Tuple,
    table_names,
    st.lists(values, min_size=0, max_size=6),
)


class TestTupleRoundtrip:
    @given(tuples)
    def test_str_parses_back_to_equal_tuple(self, tup):
        assert parse_tuple(str(tup)) == tup

    @given(tuples)
    def test_roundtrip_preserves_types(self, tup):
        parsed = parse_tuple(str(tup))
        for original, reparsed in zip(tup.args, parsed.args):
            assert type(original) is type(reparsed)


class TestExprRoundtrip:
    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    def test_binop_str_roundtrip(self, a, b):
        from repro.datalog.expr import BinOp, Const

        for op in ("+", "-", "*", "&", "|", "^"):
            expr = BinOp(op, Const(a), Const(b))
            assert parse_expr(str(expr)) == expr

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_ip_literal_roundtrip(self, value):
        addr = IPv4Address(value)
        from repro.datalog.expr import Const

        assert parse_expr(str(addr)) == Const(addr)


class TestProgramStability:
    def test_program_reparse_fixpoint(self):
        """Parsing the same program twice yields identical structures."""
        from repro.sdn.model import SDN_PROGRAM_TEXT
        from repro.mapreduce.declarative import MAPREDUCE_PROGRAM_TEXT

        for text in (SDN_PROGRAM_TEXT, MAPREDUCE_PROGRAM_TEXT):
            first = parse_program(text)
            second = parse_program(text)
            assert first.rules == second.rules
            assert first.schemas == second.schemas

    def test_rule_str_reparses_equal(self):
        """str(rule) is itself valid NDlog that parses back equal."""
        from repro.datalog.parser import parse_rule
        from repro.sdn.model import sdn_program

        program = sdn_program()
        for rule in program.rules:
            reparsed = parse_rule(str(rule), program.schemas)
            assert reparsed == rule, rule.name
