"""Cross-process trace stitching, deterministic under ManualClock.

One service request produces ONE trace: the server's admission and
dispatch spans and the worker's engine spans all share a trace id, and
under ManualClock (server telemetry + the request's
``telemetry: "manual"`` option) the exported Chrome trace is
byte-identical across two fresh runs.  The crash-resume variant proves
the trace survives a worker SIGKILL: the resumed attempt reuses the
trace id, tagged ``attempt=2``.
"""

import asyncio
import json

from repro.observability import ManualClock, Telemetry
from repro.service import DiagnosisServer, ServiceClient

from .test_chaos import _await_journal, _kill_current_worker


def _collect(telemetry):
    return list(telemetry.tracer.iter_spans())


def _run_traced_request():
    """One fresh server, one DNS request, fully manual clocks."""

    async def scenario():
        telemetry = Telemetry(clock=ManualClock())
        server = DiagnosisServer(workers=1, telemetry=telemetry)
        async with server:
            client = ServiceClient(server)
            response = await client.request({
                "id": "stitch-1", "kind": "diagnose", "scenario": "DNS",
                "options": {"telemetry": "manual"},
            })
        return response, telemetry

    return asyncio.run(scenario())


def test_one_request_yields_one_stitched_trace():
    response, telemetry = _run_traced_request()
    assert response["status"] == "ok"

    spans = _collect(telemetry)
    names = [s.name for s in spans]
    assert "service.request" in names
    assert "service.admission" in names
    assert "service.dispatch" in names
    # The worker's spans were grafted across the process boundary.
    assert any(n.startswith("diffprov.") for n in names)
    assert any(n.startswith("engine.") for n in names)

    # Everything stamped shares ONE trace id (children inherit their
    # position from the parent chain, so only stamped spans carry it).
    trace_ids = {
        s.attrs["trace_id"] for s in spans if "trace_id" in s.attrs
    }
    assert len(trace_ids) == 1

    # The stitched lineage: request -> dispatch -> worker root.
    by_name = {s.name: s for s in spans}
    request_span = by_name["service.request"]
    dispatch = by_name["service.dispatch"]
    assert dispatch.parent is request_span
    assert by_name["service.admission"].parent is request_span
    worker_roots = dispatch.children
    assert worker_roots, "worker spans must hang under the dispatch span"
    assert worker_roots[0].attrs["parent_span_id"] == \
        dispatch.attrs["span_id"]
    assert worker_roots[0].attrs["trace_id"] == request_span.attrs["trace_id"]


def test_stitched_trace_is_byte_identical_across_runs():
    first_response, first = _run_traced_request()
    second_response, second = _run_traced_request()
    assert first_response["status"] == "ok"
    assert second_response["status"] == "ok"
    first_bytes = json.dumps(first.chrome_trace(), sort_keys=True)
    second_bytes = json.dumps(second.chrome_trace(), sort_keys=True)
    assert first_bytes == second_bytes


def test_upstream_trace_context_is_honoured():
    async def scenario():
        telemetry = Telemetry(clock=ManualClock())
        server = DiagnosisServer(workers=1, telemetry=telemetry)
        async with server:
            client = ServiceClient(server)
            response = await client.request({
                "id": "up-1", "kind": "diagnose", "scenario": "DNS",
                "trace": {"trace_id": "feedfacecafebeef",
                          "span_id": "0123456789abcdef"},
            })
        return response, telemetry

    response, telemetry = asyncio.run(scenario())
    assert response["status"] == "ok"
    request_span = next(
        s for s in _collect(telemetry) if s.name == "service.request"
    )
    assert request_span.attrs["trace_id"] == "feedfacecafebeef"
    assert request_span.attrs["parent_span_id"] == "0123456789abcdef"


def test_crash_resume_stays_in_the_same_trace_with_attempt_tag():
    async def scenario():
        telemetry = Telemetry(clock=ManualClock())
        server = DiagnosisServer(
            workers=2, telemetry=telemetry, allow_test_hooks=True,
            keep_journals=True, breaker_threshold=3,
        )
        async with server:
            client = ServiceClient(server)
            victim = asyncio.ensure_future(client.request({
                "id": "victim", "kind": "diagnose", "scenario": "SDN1",
                "options": {"minimize": True, "telemetry": "manual"},
                "test_hold": {"after_verdicts": 1, "seconds": 30},
            }))
            await _await_journal(server, "victim", '"type":"verdict"')
            await _kill_current_worker(server, "victim")
            response = await victim
        return response, telemetry

    response, telemetry = asyncio.run(scenario())
    assert response["status"] == "ok"
    assert response["attempts"] == 2

    spans = _collect(telemetry)
    dispatches = [s for s in spans if s.name == "service.dispatch"]
    assert len(dispatches) == 2
    first, second = dispatches
    # Both attempts live in the SAME trace at the SAME position...
    assert first.attrs["trace_id"] == second.attrs["trace_id"]
    assert first.attrs["span_id"] == second.attrs["span_id"]
    # ...distinguished only by the attempt tag and their outcome.
    assert first.attrs["attempt"] == 1
    assert second.attrs["attempt"] == 2
    assert first.status == "error"  # the SIGKILL'd attempt
    assert second.status == "ok"
    # Only the surviving attempt shipped worker spans, tagged attempt=2.
    assert not first.children
    assert second.children
    assert second.children[0].attrs["attempt"] == 2
