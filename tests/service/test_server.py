"""DiagnosisServer end to end (in-process and socket transports).

Everything here uses the DNS scenario — the cheapest diagnosis in the
suite — so a full request costs milliseconds of worker time and the
tests exercise the server, not the differ.
"""

import asyncio

import pytest

from repro.service import (
    DiagnosisServer,
    ServiceClient,
    SocketServiceClient,
    TenantQuota,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def server_loop():
    """One server (and one event loop) shared by the module's tests.

    Worker processes take ~1s to prewarm; sharing the fleet keeps the
    module fast.  Each test still sees isolated admission state where
    it matters (tenants are per-test names).
    """
    loop = asyncio.new_event_loop()
    server = DiagnosisServer(
        workers=2,
        max_queue=8,
        quotas={
            "capped": TenantQuota(max_concurrent=1),
            "metered": TenantQuota(rate=0.001, burst=1),
        },
    )
    loop.run_until_complete(server.start())
    yield loop, server
    loop.run_until_complete(server.shutdown())
    loop.close()


def test_diagnose_ok_and_deterministic(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)

    async def scenario():
        first = await client.diagnose("DNS")
        second = await client.diagnose("DNS")
        return first, second

    first, second = loop.run_until_complete(scenario())
    assert first["status"] == "ok"
    assert first["report"]["success"] is True
    assert first["report"]["changes"]
    # The determinism contract, across whatever shards served them.
    assert first["report"]["canonical"] == second["report"]["canonical"]


def test_ping_and_stats_answer_inline(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)
    pong = loop.run_until_complete(client.ping())
    assert pong["status"] == "pong"
    stats = loop.run_until_complete(client.stats())
    assert stats["stats"]["fleet"]["size"] == 2


def test_malformed_request_is_an_error_response(server_loop):
    loop, server = server_loop

    async def scenario():
        return (
            await server.submit({"id": "bad", "kind": "nope"}),
            await server.submit(b"{broken json"),
            await server.submit({"kind": "ping"}),  # no id
        )

    bad_kind, bad_json, no_id = loop.run_until_complete(scenario())
    assert bad_kind == {
        "id": "bad", "status": "error", "category": "protocol",
        "message": bad_kind["message"],
    }
    assert bad_json["status"] == "error" and bad_json["id"] is None
    assert no_id["status"] == "error"


def test_malformed_raw_line_keeps_its_id(server_loop):
    """A rejected NDJSON line still gets an id-matched error, so a
    socket client's pending future resolves instead of hanging."""
    loop, server = server_loop
    response = loop.run_until_complete(
        server.submit(b'{"id": "oops", "kind": "nope"}\n')
    )
    assert response["id"] == "oops"
    assert response["status"] == "error"
    assert response["category"] == "protocol"


def test_tenant_concurrency_cap_sheds_typed(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)

    async def scenario():
        slow = asyncio.ensure_future(client.request({
            "kind": "diagnose", "scenario": "SDN1", "tenant": "capped",
            "options": {"minimize": True},
        }))
        await asyncio.sleep(0.05)  # let it get admitted
        shed = await client.diagnose("DNS", tenant="capped")
        return await slow, shed

    slow, shed = loop.run_until_complete(scenario())
    assert slow["status"] == "ok"
    assert shed["status"] == "overloaded"
    assert shed["reason"] == "concurrency"
    assert shed["retry_after_s"] > 0


def test_rate_quota_sheds_typed(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)

    async def scenario():
        first = await client.diagnose("DNS", tenant="metered")
        second = await client.diagnose("DNS", tenant="metered")
        return first, second

    first, second = loop.run_until_complete(scenario())
    assert first["status"] == "ok"
    assert second["status"] == "overloaded"
    assert second["reason"] == "quota"


def test_test_hold_rejected_without_opt_in(server_loop):
    loop, server = server_loop
    response = loop.run_until_complete(server.submit({
        "id": "h", "kind": "diagnose", "scenario": "DNS",
        "test_hold": {"seconds": 1},
    }))
    assert response["status"] == "error"
    assert "allow_test_hooks" in response["message"]


def test_autoref_requests_work(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)
    response = loop.run_until_complete(client.request({
        "kind": "autoref", "scenario": "DNS", "options": {"limit": 5},
    }))
    assert response["status"] == "ok"
    assert response["report"]["found"] is True
    assert response["report"]["reference"]


def test_expired_deadline_degrades_not_errors(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)
    response = loop.run_until_complete(client.diagnose(
        "SDN1", deadline_s=0.0001, options={"minimize": True},
    ))
    # A hopeless budget still gets a structured answer, not a 500.
    assert response["status"] == "ok"
    report = response["report"]
    assert report["deadline_degraded"] is True


def test_socket_transport_round_trip(server_loop):
    loop, server = server_loop

    async def scenario():
        host, port = await server.serve(port=0)
        async with SocketServiceClient(host, port) as client:
            pong = await client.ping()
            ok = await client.diagnose("DNS", timeout=120)
            # Concurrent requests on one connection, matched by id.
            pair = await asyncio.gather(
                client.diagnose("DNS", timeout=120),
                client.ping(),
            )
        return pong, ok, pair

    pong, ok, (second, pong2) = loop.run_until_complete(scenario())
    assert pong["status"] == "pong"
    assert ok["status"] == "ok"
    assert second["status"] == "ok" and pong2["status"] == "pong"


def test_warm_cache_spans_requests(server_loop):
    loop, server = server_loop
    client = ServiceClient(server)

    async def scenario():
        # Enough repeats that every shard has served DNS at least once.
        responses = []
        for _ in range(4):
            responses.append(await client.diagnose("DNS"))
        return responses

    responses = loop.run_until_complete(scenario())
    hits = sum(
        r["report"]["cache"]["hits"] + r["report"]["cache"]["prefix_hits"]
        for r in responses
    )
    assert hits > 0  # later requests forked warm snapshots


def test_drain_refuses_new_work_then_finishes():
    async def scenario():
        server = DiagnosisServer(workers=1, max_queue=4)
        async with server:
            client = ServiceClient(server)
            ok = await client.diagnose("DNS")
            clean = await server.drain()
            after = await client.diagnose("DNS")
            return ok, clean, after

    ok, clean, after = run(scenario())
    assert ok["status"] == "ok"
    assert clean is True
    assert after["status"] == "overloaded"
    assert after["reason"] == "draining"


def test_queue_full_sheds_under_flood():
    async def scenario():
        server = DiagnosisServer(workers=1, max_queue=2)
        async with server:
            client = ServiceClient(server)
            responses = await asyncio.gather(*[
                client.diagnose("SDN1", options={"minimize": True})
                for _ in range(6)
            ])
        return responses

    responses = run(scenario())
    statuses = [r["status"] for r in responses]
    assert statuses.count("ok") == 2  # exactly the bound
    shed = [r for r in responses if r["status"] == "overloaded"]
    assert len(shed) == 4
    assert all(r["reason"] == "queue-full" for r in shed)
    assert all(r["retry_after_s"] > 0 for r in shed)


def test_default_deadline_applies_to_bare_requests():
    async def scenario():
        server = DiagnosisServer(workers=1, default_deadline_s=0.0001)
        async with server:
            client = ServiceClient(server)
            return await client.diagnose("SDN1", options={"minimize": True})

    response = run(scenario())
    assert response["status"] == "ok"
    assert response["report"]["deadline_degraded"] is True
