"""The service's operations surface: verbs, the endpoint, SLO stats.

The ``metrics`` and ``flight`` control verbs, the ``--metrics-port``
HTTP exposition endpoint, and the SLO/flight sections of ``stats`` —
everything ``diffprov top`` and a Prometheus scraper consume.
"""

import asyncio

from repro.service import DiagnosisServer, ServiceClient


def _run(coro):
    return asyncio.run(coro)


def test_metrics_verb_returns_the_exposition_page():
    async def scenario():
        async with DiagnosisServer(workers=1) as server:
            client = ServiceClient(server)
            await client.diagnose("DNS")
            return await client.metrics()

    response = _run(scenario())
    assert response["status"] == "pong"
    text = response["metrics"]
    assert "# TYPE diffprov_service_responses_total gauge" in text
    assert "diffprov_service_responses_total 1" in text
    # The worker shipped its own counters back; they fold under fleet.
    assert "diffprov_fleet_worker_requests 1" in text
    # Per-tenant SLO series ride along.
    assert 'diffprov_tenant_offered{tenant="default"} 1' in text


def test_flight_verb_exposes_the_ring_buffer():
    async def scenario():
        async with DiagnosisServer(workers=1, flight_capacity=8) as server:
            client = ServiceClient(server)
            await client.request({
                "id": "fl-1", "kind": "diagnose", "scenario": "DNS",
            })
            return await client.flight()

    response = _run(scenario())
    assert response["status"] == "pong"
    flight = response["flight"]
    assert flight["capacity"] == 8
    assert flight["recorded_total"] == 1
    (entry,) = flight["entries"]
    assert entry["request"] == "fl-1"
    assert entry["tenant"] == "default"
    assert entry["status"] == "ok"
    assert entry["verdict"] == "success"
    assert len(entry["trace_id"]) == 16
    assert entry["attempts"] == 1
    assert entry["latency_s"] >= 0.0


def test_stats_carries_slo_books_and_flight_summary():
    async def scenario():
        async with DiagnosisServer(workers=1) as server:
            client = ServiceClient(server)
            await client.diagnose("DNS", tenant="acme")
            return await client.stats()

    stats = _run(scenario())["stats"]
    book = stats["slo"]["acme"]
    assert book["offered"] == 1
    assert book["admitted"] == 1
    assert book["ok"] == 1 and book["errored"] == 0
    assert book["latency_s"]["count"] == 1
    assert book["queue_wait_s"]["count"] == 1
    assert book["error_budget"]["burn"] == 0.0
    assert stats["flight"]["recorded_total"] == 1


def test_shed_requests_land_in_the_slo_books():
    from repro.service import TenantQuota

    async def scenario():
        server = DiagnosisServer(
            workers=1, quotas={"capped": TenantQuota(max_concurrent=1)},
        )
        async with server:
            client = ServiceClient(server)
            burst = [
                asyncio.ensure_future(
                    client.diagnose("DNS", tenant="capped")
                )
                for _ in range(3)
            ]
            responses = await asyncio.gather(*burst)
            return responses, await client.stats()

    responses, stats = _run(scenario())
    stats = stats["stats"]
    shed = [r for r in responses if r["status"] == "overloaded"]
    book = stats["slo"]["capped"]
    assert book["offered"] == 3
    assert sum(book["shed"].values()) == len(shed)
    assert book["admitted"] + sum(book["shed"].values()) == book["offered"]


def test_ops_disabled_keeps_the_verbs_answering():
    async def scenario():
        async with DiagnosisServer(workers=1, ops=False) as server:
            client = ServiceClient(server)
            await client.diagnose("DNS")
            stats = await client.stats()
            flight = await client.flight()
            return server, stats, flight

    server, stats, flight = _run(scenario())
    assert server.ops is None
    assert "slo" not in stats["stats"]
    assert flight["flight"] == {
        "capacity": 0, "recorded_total": 0, "entries": [],
    }


def test_metrics_endpoint_answers_a_raw_http_scrape():
    async def scenario():
        async with DiagnosisServer(workers=1) as server:
            client = ServiceClient(server)
            await client.diagnose("DNS")
            host, port = await server.serve_metrics("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

    raw = _run(scenario())
    headers, _, body = raw.partition(b"\r\n\r\n")
    assert headers.startswith(b"HTTP/1.0 200 OK")
    assert b"Content-Type: text/plain; version=0.0.4" in headers
    text = body.decode("utf-8")
    assert "# TYPE diffprov_service_responses_total gauge" in text
    assert int(
        headers.split(b"Content-Length: ")[1].split(b"\r\n")[0]
    ) == len(body)
