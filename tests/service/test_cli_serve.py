"""The ``diffprov serve`` subcommand, end to end over a real socket.

Spawns the CLI as a subprocess, reads the machine-parseable listening
line, talks NDJSON to it with the socket client, then sends SIGTERM
and checks the graceful drain: exit 0 and a served/shed summary.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import SocketServiceClient

_SRC = str(Path(__file__).parents[2] / "src")


@pytest.fixture
def serve_proc():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli",
            "serve", "--port", "0", "--workers", "1",
            "--quota", "metered=0.001:1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        yield proc
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.communicate()


def _await_listening(proc, timeout=120):
    """Parse (host, port) from the CLI's startup line."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            pytest.fail(f"serve exited early: {proc.communicate()}")
        if line.startswith("diffprov-service listening on "):
            host, _, port = line.split()[-1].rpartition(":")
            return host, int(port)
    pytest.fail("serve never printed its listening line")


def test_serve_answers_requests_and_drains_on_sigterm(serve_proc):
    host, port = _await_listening(serve_proc)

    async def talk():
        async with SocketServiceClient(host, port) as client:
            pong = await client.ping()
            ok = await client.diagnose("DNS", timeout=120)
            first = await client.diagnose(
                "DNS", tenant="metered", timeout=120
            )
            shed = await client.diagnose(
                "DNS", tenant="metered", timeout=120
            )
        return pong, ok, first, shed

    pong, ok, first, shed = asyncio.run(talk())
    assert pong["status"] == "pong"
    assert ok["status"] == "ok"
    assert ok["report"]["success"] is True
    # The --quota flag reached the admission controller.
    assert first["status"] == "ok"
    assert shed["status"] == "overloaded" and shed["reason"] == "quota"

    serve_proc.send_signal(signal.SIGTERM)
    _, stderr = serve_proc.communicate(timeout=120)
    assert serve_proc.returncode == 0
    assert "drained:" in stderr
    # Pings answer inline without admission; the two successful
    # diagnoses are what the admission books count as served.
    assert "2 request(s) served, shed 1" in stderr
