"""The ``diffprov serve`` subcommand, end to end over a real socket.

Spawns the CLI as a subprocess, reads the machine-parseable listening
line, talks NDJSON to it with the socket client, then sends SIGTERM
and checks the graceful drain: exit 0 and a served/shed summary.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import SocketServiceClient

_SRC = str(Path(__file__).parents[2] / "src")


@pytest.fixture
def serve_proc():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli",
            "serve", "--port", "0", "--workers", "1",
            "--quota", "metered=0.001:1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        yield proc
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.communicate()


def _await_listening(proc, timeout=120):
    """Parse (host, port) from the CLI's startup line."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            pytest.fail(f"serve exited early: {proc.communicate()}")
        if line.startswith("diffprov-service listening on "):
            host, _, port = line.split()[-1].rpartition(":")
            return host, int(port)
    pytest.fail("serve never printed its listening line")


def test_serve_answers_requests_and_drains_on_sigterm(serve_proc):
    host, port = _await_listening(serve_proc)

    async def talk():
        async with SocketServiceClient(host, port) as client:
            pong = await client.ping()
            ok = await client.diagnose("DNS", timeout=120)
            first = await client.diagnose(
                "DNS", tenant="metered", timeout=120
            )
            shed = await client.diagnose(
                "DNS", tenant="metered", timeout=120
            )
        return pong, ok, first, shed

    pong, ok, first, shed = asyncio.run(talk())
    assert pong["status"] == "pong"
    assert ok["status"] == "ok"
    assert ok["report"]["success"] is True
    # The --quota flag reached the admission controller.
    assert first["status"] == "ok"
    assert shed["status"] == "overloaded" and shed["reason"] == "quota"

    serve_proc.send_signal(signal.SIGTERM)
    _, stderr = serve_proc.communicate(timeout=120)
    assert serve_proc.returncode == 0
    assert "drained:" in stderr
    # Pings answer inline without admission; the two successful
    # diagnoses are what the admission books count as served.
    assert "2 request(s) served, shed 1" in stderr


@pytest.fixture
def serve_ops_proc():
    """A serve process with the metrics endpoint and a tiny flight box."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli",
            "serve", "--port", "0", "--workers", "1",
            "--metrics-port", "0", "--flight-capacity", "4",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        yield proc
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.communicate()


def _await_line(proc, prefix, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            pytest.fail(f"serve exited early: {proc.communicate()}")
        if line.startswith(prefix):
            host, _, port = line.split()[-1].rpartition(":")
            return host, int(port)
    pytest.fail(f"serve never printed {prefix!r}")


def test_serve_metrics_endpoint_sigusr1_and_top(serve_ops_proc):
    import urllib.request

    host, port = _await_line(serve_ops_proc, "diffprov-service listening on ")
    mhost, mport = _await_line(serve_ops_proc, "diffprov-metrics listening on ")

    async def talk():
        async with SocketServiceClient(host, port) as client:
            return await client.diagnose("DNS", timeout=120)

    assert asyncio.run(talk())["status"] == "ok"

    # The HTTP endpoint serves the exposition page.
    body = urllib.request.urlopen(
        f"http://{mhost}:{mport}/metrics", timeout=30
    ).read().decode("utf-8")
    assert "# TYPE diffprov_service_responses_total gauge" in body
    assert 'diffprov_tenant_offered{tenant="default"} 1' in body

    # `diffprov top --once` renders one frame over the stats verb.
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    top = subprocess.run(
        [
            sys.executable, "-m", "repro.cli",
            "top", "--host", host, "--port", str(port), "--once",
        ],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert top.returncode == 0, top.stderr
    assert f"diffprov top — {host}:{port}" in top.stdout
    assert "flight recorder: 1 recorded" in top.stdout

    # SIGUSR1 dumps the flight recorder to stderr; the drain summary
    # then closes with per-tenant SLO lines.
    serve_ops_proc.send_signal(signal.SIGUSR1)
    time.sleep(1.0)  # let the handler run before the TERM races it
    serve_ops_proc.send_signal(signal.SIGTERM)
    _, stderr = serve_ops_proc.communicate(timeout=120)
    assert serve_ops_proc.returncode == 0
    assert "flight recorder" in stderr
    assert "default/" in stderr  # the recorded request's tenant/id line
    assert "1 request(s) served, shed 0" in stderr
    assert "default: offered 1" in stderr
