"""Worker fleet: persistent shards, crash detection, circuit breakers."""

import pytest

from repro.service.fleet import (
    CircuitBreaker,
    WorkerDied,
    WorkerFleet,
    WorkerShard,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# -- circuit breaker (pure logic, fake clock) --------------------------------


def test_breaker_opens_at_threshold_and_half_opens_after_reset():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, reset_s=5.0, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.allow()
    breaker.record_failure()
    assert not breaker.allow()  # tripped
    assert breaker.trips == 1
    clock.t += 5.0
    assert breaker.allow()  # half-open probe window
    breaker.record_failure()  # probe failed: re-opens immediately
    assert not breaker.allow()


def test_breaker_success_resets_the_count():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=clock)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.allow()  # the count restarted after the success


def test_breaker_validates_threshold():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)


# -- real worker processes ---------------------------------------------------


@pytest.fixture
def fleet():
    fleet = WorkerFleet(size=2, breaker_threshold=2, breaker_reset_s=60.0)
    fleet.start()
    yield fleet
    fleet.stop()


def test_ping_records_worker_pids(fleet):
    pids = {shard.pid for shard in fleet.shards}
    assert len(pids) == 2 and None not in pids


def test_worker_crash_raises_workerdied_and_restart_recovers(fleet):
    shard = fleet.shards[0]
    pid_before = shard.pid
    with pytest.raises(WorkerDied):
        shard.call({"op": "_crash"}, timeout=30)
    fleet.record_crash(shard)
    assert fleet.restart(shard)
    payload = shard.ping()
    assert payload["pid"] != pid_before
    assert fleet.restarts == 1


def test_breaker_fences_a_crash_looping_shard(fleet):
    shard = fleet.shards[0]
    for _ in range(2):  # threshold=2
        with pytest.raises(WorkerDied):
            shard.call({"op": "_crash"}, timeout=30)
        fleet.record_crash(shard)
    assert not shard.breaker.allow()
    assert not fleet.restart(shard)  # fenced: restart refused
    healthy = fleet.pick_healthy(exclude=shard)
    assert healthy is fleet.shards[1]


def test_pick_healthy_prefers_least_crashed(fleet):
    fleet.shards[0].crashes = 3
    assert fleet.pick_healthy() is fleet.shards[1]
    fleet.shards[1].breaker.record_failure()
    fleet.shards[1].breaker.record_failure()
    assert fleet.pick_healthy() is fleet.shards[0]  # only serviceable one
    fleet.shards[0].breaker.record_failure()
    fleet.shards[0].breaker.record_failure()
    assert fleet.pick_healthy() is None


def test_unstarted_shard_raises_workerdied():
    shard = WorkerShard(0, CircuitBreaker())
    with pytest.raises(WorkerDied):
        shard.call({"op": "ping"})


def test_fleet_stats_shape(fleet):
    stats = fleet.stats()
    assert stats["size"] == 2
    assert {entry["index"] for entry in stats["shards"]} == {0, 1}
    assert all("breaker_open" in entry for entry in stats["shards"])


def test_fleet_size_validated():
    with pytest.raises(ValueError):
        WorkerFleet(size=0)
