"""Token buckets and per-tenant quota enforcement (fake clocks)."""

import pytest

from repro.errors import Overloaded
from repro.service.quotas import QuotaRegistry, TenantQuota, TokenBucket


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()  # burst spent
    clock.t += 0.5
    assert not bucket.try_acquire()  # half a token is not a token
    clock.t += 0.5
    assert bucket.try_acquire()


def test_bucket_retry_after_is_exact():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
    assert bucket.try_acquire()
    # 0 tokens, refilling at 2/s: one whole token in 0.5s.
    assert bucket.retry_after() == pytest.approx(0.5)
    clock.t += 0.25
    assert bucket.retry_after() == pytest.approx(0.25)


def test_bucket_validates_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0, burst=1)
    with pytest.raises(ValueError):
        TokenBucket(rate=1, burst=0.5)


def test_registry_rate_limit_sheds_with_reason_quota():
    clock = FakeClock()
    registry = QuotaRegistry(
        {"noisy": TenantQuota(rate=1.0, burst=1.0)}, clock=clock
    )
    registry.acquire("noisy")
    with pytest.raises(Overloaded) as info:
        registry.acquire("noisy")
    assert info.value.reason == "quota"
    assert info.value.retry_after_s == pytest.approx(1.0)
    # Other tenants fall through to the (unlimited) default quota.
    for _ in range(5):
        registry.acquire("quiet")


def test_registry_concurrency_cap_sheds_and_releases():
    registry = QuotaRegistry({"capped": TenantQuota(max_concurrent=2)})
    registry.acquire("capped")
    registry.acquire("capped")
    with pytest.raises(Overloaded) as info:
        registry.acquire("capped", service_time_hint=3.5)
    assert info.value.reason == "concurrency"
    assert info.value.retry_after_s == pytest.approx(3.5)
    registry.release("capped")
    registry.acquire("capped")  # slot freed


def test_registry_default_quota_is_overridable():
    clock = FakeClock()
    registry = QuotaRegistry(
        {"default": TenantQuota(rate=1.0, burst=1.0)}, clock=clock
    )
    registry.acquire("anyone")
    with pytest.raises(Overloaded):
        registry.acquire("anyone")


def test_registry_stats_account_admissions_and_sheds():
    registry = QuotaRegistry({"capped": TenantQuota(max_concurrent=1)})
    registry.acquire("capped")
    with pytest.raises(Overloaded):
        registry.acquire("capped")
    stats = registry.stats()
    assert stats["capped"] == {"in_flight": 1, "admitted": 1, "shed": 1}


def test_release_never_goes_negative():
    registry = QuotaRegistry()
    registry.release("ghost")
    assert registry.stats()["ghost"]["in_flight"] == 0
