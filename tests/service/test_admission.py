"""The admission controller: bounded queue, priorities, shed reasons."""

import asyncio

import pytest

from repro.errors import Overloaded
from repro.service.admission import AdmissionController
from repro.service.protocol import Request
from repro.service.quotas import QuotaRegistry, TenantQuota


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _request(rid, priority=5, tenant="default", deadline_s=None):
    return Request(
        id=rid, kind="diagnose", scenario="SDN1",
        priority=priority, tenant=tenant, deadline_s=deadline_s,
    )


def test_dispatch_order_is_priority_then_admission():
    async def scenario():
        admission = AdmissionController(max_queue=10)
        admission.admit(_request("late-normal"))
        admission.admit(_request("urgent", priority=0))
        admission.admit(_request("bulk", priority=9))
        admission.admit(_request("urgent-2", priority=0))
        order = [(await admission.next()).request.id for _ in range(4)]
        return order

    assert asyncio.run(scenario()) == [
        "urgent", "urgent-2", "late-normal", "bulk",
    ]


def test_queue_full_sheds_with_backlog_eta():
    async def scenario():
        clock = FakeClock()
        admission = AdmissionController(max_queue=2, shards=2, clock=clock)
        admission.admit(_request("a"))
        admission.admit(_request("b"))
        with pytest.raises(Overloaded) as info:
            admission.admit(_request("c"))
        return info.value

    exc = asyncio.run(scenario())
    assert exc.reason == "queue-full"
    # 2 in flight × 1.0s initial EWMA / 2 shards = 1.0s.
    assert exc.retry_after_s == pytest.approx(1.0)


def test_bound_covers_in_flight_not_just_queued():
    async def scenario():
        admission = AdmissionController(max_queue=1)
        admission.admit(_request("a"))
        await admission.next()  # dequeued but still in flight
        with pytest.raises(Overloaded) as info:
            admission.admit(_request("b"))
        return info.value.reason

    assert asyncio.run(scenario()) == "queue-full"


def test_quota_sheds_are_counted_per_reason():
    async def scenario():
        admission = AdmissionController(
            max_queue=10,
            quotas=QuotaRegistry({"t": TenantQuota(max_concurrent=1)}),
        )
        admission.admit(_request("a", tenant="t"))
        for _ in range(3):
            with pytest.raises(Overloaded):
                admission.admit(_request("x", tenant="t"))
        return admission.stats()["shed"]

    shed = asyncio.run(scenario())
    assert shed["concurrency"] == 3
    assert shed["queue-full"] == 0


def test_draining_sheds_and_wakes_dispatchers():
    async def scenario():
        admission = AdmissionController(max_queue=10)
        admission.start_draining()
        with pytest.raises(Overloaded) as info:
            admission.admit(_request("a"))
        assert info.value.reason == "draining"
        # With an empty queue, next() returns None instead of blocking.
        return await asyncio.wait_for(admission.next(), timeout=5)

    assert asyncio.run(scenario()) is None


def test_draining_still_serves_already_admitted():
    async def scenario():
        admission = AdmissionController(max_queue=10)
        admission.admit(_request("a"))
        admission.start_draining()
        first = await admission.next()
        second = await admission.next()
        return first.request.id, second

    first_id, second = asyncio.run(scenario())
    assert first_id == "a"
    assert second is None


def test_mark_done_updates_ewma_and_releases_quota():
    async def scenario():
        clock = FakeClock()
        admission = AdmissionController(
            max_queue=10,
            quotas=QuotaRegistry(
                {"t": TenantQuota(max_concurrent=1)}, clock=clock
            ),
            clock=clock,
        )
        ticket = admission.admit(_request("a", tenant="t"))
        await admission.next()
        clock.t += 3.0
        admission.mark_done(ticket)
        # EWMA moved from 1.0 toward the observed 3.0s.
        assert admission.stats()["service_time_ewma_s"] == pytest.approx(
            0.7 * 1.0 + 0.3 * 3.0
        )
        admission.admit(_request("b", tenant="t"))  # quota released
        return admission.in_flight

    assert asyncio.run(scenario()) == 1


def test_remaining_deadline_burns_while_queued():
    async def scenario():
        clock = FakeClock()
        admission = AdmissionController(max_queue=10, clock=clock)
        ticket = admission.admit(_request("a", deadline_s=10.0))
        clock.t += 4.0
        return ticket.remaining_deadline(clock())

    assert asyncio.run(scenario()) == pytest.approx(6.0)


def test_max_queue_validated():
    with pytest.raises(ValueError):
        AdmissionController(max_queue=0)
