"""Chaos suite: the server under simultaneous failure and overload.

The acceptance scenario from docs/service.md: a worker SIGKILL'd
mid-diagnosis, a tenant blowing through its quota, and a 2× request
overload — all at once.  The server must neither crash nor hang;
admitted requests complete (deadline-degraded at worst), rejected ones
get a typed ``overloaded`` response, and the diagnosis that survived
the SIGKILL resumes on a fresh worker with a byte-identical
``canonical_json()``.
"""

import asyncio
import glob
import os
import signal
import time

import pytest

from repro.service import DiagnosisServer, ServiceClient, TenantQuota


async def _await_journal(server, marker, fragment, timeout=60.0):
    """Poll the victim request's journal until ``fragment`` appears."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pattern = os.path.join(server.journal_dir, f"req-*{marker}*")
        for path in glob.glob(pattern):
            try:
                with open(path, encoding="utf-8", errors="replace") as handle:
                    if fragment in handle.read():
                        return path
            except OSError:
                continue
        await asyncio.sleep(0.02)
    pytest.fail(f"journal for {marker!r} never showed {fragment!r}")


async def _kill_current_worker(server, request_id, timeout=30.0):
    """SIGKILL the worker process serving ``request_id``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        shard = server.shard_for_request(request_id)
        if shard is not None and shard.pid is not None:
            os.kill(shard.pid, signal.SIGKILL)
            return shard
        await asyncio.sleep(0.01)
    pytest.fail(f"no shard ever served {request_id!r}")


def test_sigkill_resume_is_byte_identical():
    """A SIGKILL'd diagnosis restarts, resumes its journal, and returns
    the exact bytes an undisturbed run returns."""

    async def scenario():
        server = DiagnosisServer(
            workers=2, allow_test_hooks=True, keep_journals=True,
            breaker_threshold=3,
        )
        async with server:
            client = ServiceClient(server)
            clean = await client.diagnose("SDN1", options={"minimize": True})
            victim = asyncio.ensure_future(client.request({
                "id": "victim", "kind": "diagnose", "scenario": "SDN1",
                "options": {"minimize": True},
                # Park inside the journal write of the first minimize
                # verdict, so the kill lands mid-candidate-evaluation
                # with durable work already on disk.
                "test_hold": {"after_verdicts": 1, "seconds": 30},
            }))
            await _await_journal(server, "victim", '"type":"verdict"')
            await _kill_current_worker(server, "victim")
            crashed = await victim
            return clean, crashed, server.stats()

    clean, crashed, stats = asyncio.run(scenario())
    fleet = stats["fleet"]
    assert clean["status"] == "ok"
    assert crashed["status"] == "ok"
    assert crashed["attempts"] == 2  # one crash, one resume
    report = crashed["report"]
    journal = (report["resilience"] or {})["journal"]
    assert journal["resumed"] is True
    assert journal["skipped_candidates"] >= 1  # the dead worker's verdict
    # The determinism contract under crash-resume.
    assert report["canonical"] == clean["report"]["canonical"]
    assert fleet["restarts"] >= 1

    # The SLO books stayed honest through the crash: the retry is an
    # internal attempt, not a second offered request.
    book = stats["slo"]["default"]
    assert book["offered"] == 2  # clean + victim
    assert book["admitted"] == 2
    assert book["ok"] == 2 and book["errored"] == 0
    assert book["shed"] == {}


def test_combined_chaos_overload_quota_and_worker_death():
    """SIGKILL + quota abuse + 2× overload, simultaneously."""

    async def scenario():
        server = DiagnosisServer(
            workers=2,
            max_queue=4,
            allow_test_hooks=True,
            keep_journals=True,
            quotas={"greedy": TenantQuota(max_concurrent=1)},
        )
        async with server:
            client = ServiceClient(server)
            clean = await client.diagnose("SDN1", options={"minimize": True})

            # The victim parks mid-minimize; its worker gets SIGKILL'd.
            victim = asyncio.ensure_future(client.request({
                "id": "victim", "kind": "diagnose", "scenario": "SDN1",
                "options": {"minimize": True},
                "test_hold": {"after_verdicts": 1, "seconds": 30},
            }))
            await _await_journal(server, "victim", '"type":"verdict"')

            # Quota abuse first (the queue still has room, so these
            # reach the quota check): 'greedy' is capped at 1 in
            # flight, so of this burst one admits and three shed.
            greedy = [
                asyncio.ensure_future(
                    client.diagnose("DNS", tenant="greedy")
                )
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # let the burst hit admission
            # 2× overload: whatever queue slots remain, 8 requests are
            # roughly twice what fits.
            flood = [
                asyncio.ensure_future(client.diagnose("DNS"))
                for _ in range(8)
            ]
            await _kill_current_worker(server, "victim")

            responses = await asyncio.gather(victim, *greedy, *flood)
            return clean, responses, server.stats()

    clean, responses, stats = asyncio.run(scenario())
    victim, greedy, flood = responses[0], responses[1:5], responses[5:]

    # Nothing crashed or hung: every request got exactly one response.
    assert len(responses) == 13
    assert all(r["status"] in ("ok", "overloaded") for r in responses)

    # The SIGKILL'd diagnosis resumed byte-identically.
    assert victim["status"] == "ok"
    assert victim["report"]["canonical"] == clean["report"]["canonical"]
    assert (victim["report"]["resilience"] or {})["journal"]["resumed"] is True

    # Every admitted request completed; every rejection is typed.
    admitted = [r for r in responses if r["status"] == "ok"]
    rejected = [r for r in responses if r["status"] == "overloaded"]
    assert all(r["report"]["success"] is not None for r in admitted)
    assert rejected, "the overload should have shed something"
    assert all(
        r["reason"] in ("queue-full", "quota", "concurrency")
        and r["retry_after_s"] > 0
        for r in rejected
    )
    # The greedy tenant specifically lost requests to its own cap.
    greedy_shed = [r for r in greedy if r["status"] == "overloaded"]
    assert any(r["reason"] == "concurrency" for r in greedy_shed)

    # The server kept honest books through all of it.
    shed_counts = stats["admission"]["shed"]
    assert sum(shed_counts.values()) == len(rejected)
    assert stats["fleet"]["restarts"] >= 1

    # SLO accounting stays honest under flood + SIGKILL: for every
    # tenant, every offered request is either admitted or shed, and
    # every admitted one finished exactly once.
    books = stats["slo"]
    for tenant, book in books.items():
        assert book["admitted"] + sum(book["shed"].values()) == \
            book["offered"], tenant
        assert book["ok"] + book["errored"] == book["admitted"], tenant
    # 14 work requests total: clean + victim + 4 greedy + 8 flood.
    assert sum(b["offered"] for b in books.values()) == 14
    assert books["greedy"]["offered"] == 4
    assert sum(b["errored"] for b in books.values()) == 0
    # Latency books cover exactly the finished requests.
    for book in books.values():
        assert book["latency_s"]["count"] == book["ok"] + book["errored"]


def test_crash_looping_request_gets_typed_error_not_hang():
    """A request that kills every worker it touches is bounded by
    ``max_attempts`` and answered with a typed error — the fleet stays
    healthy for everyone else."""
    from repro.service.fleet import WorkerDied

    async def scenario():
        server = DiagnosisServer(
            workers=2, keep_journals=True,
            max_attempts=2, breaker_threshold=10,
        )
        async with server:
            client = ServiceClient(server)

            # Make every shard's call die (as if the request crashes
            # whatever worker serves it), deterministically.
            originals = {}
            def poison(shard):
                def dying_call(job, timeout=None):
                    raise WorkerDied(f"shard {shard.index} poisoned")
                originals[shard] = shard.call
                shard.call = dying_call
            for shard in server.fleet.shards:
                poison(shard)

            response = await client.request({
                "id": "poison", "kind": "diagnose", "scenario": "DNS",
            })

            for shard, call in originals.items():
                shard.call = call
            healthy = await client.diagnose("DNS")
            return response, healthy

    response, healthy = asyncio.run(scenario())
    assert response["status"] == "error"
    assert response["category"] == "worker-failure"
    assert "journal kept" in response["message"]
    # The fleet recovered: the server still serves other requests.
    assert healthy["status"] == "ok"
