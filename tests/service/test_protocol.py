"""The NDJSON wire protocol: validation, framing, typed responses."""

import json

import pytest

from repro.errors import Overloaded, ProtocolError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Request,
    decode,
    encode,
    parse_request,
    response_error,
    response_ok,
    response_overloaded,
    response_pong,
)


def test_parse_minimal_diagnose_request():
    request = parse_request({"id": "r1", "kind": "diagnose", "scenario": "sdn1"})
    assert request.id == "r1"
    assert request.scenario == "SDN1"  # case-normalised
    assert request.tenant == "default"
    assert request.priority == 5
    assert request.deadline_s is None


def test_parse_accepts_raw_ndjson_line():
    line = json.dumps({"id": "x", "kind": "ping"}).encode() + b"\n"
    assert parse_request(line).kind == "ping"


def test_parse_full_request_round_trips_into_job():
    request = parse_request({
        "id": "r2", "kind": "autoref", "scenario": "DNS",
        "tenant": "ops", "priority": 1, "deadline_s": 2.5,
        "options": {"limit": 3, "minimize": True},
    })
    job = request.job()
    assert job["op"] == "autoref"
    assert job["scenario"] == "DNS"
    assert job["options"] == {"limit": 3, "minimize": True}
    assert "test_hold" not in job


@pytest.mark.parametrize("payload,fragment", [
    ("{not json", "not valid JSON"),
    ([1, 2], "JSON object"),
    ({"kind": "diagnose", "scenario": "SDN1"}, "'id'"),
    ({"id": "", "kind": "diagnose", "scenario": "SDN1"}, "'id'"),
    ({"id": "x", "kind": "frobnicate"}, "unknown kind"),
    ({"id": "x", "kind": "diagnose"}, "needs a 'scenario'"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "tenant": ""}, "'tenant'"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "priority": 17}, "'priority'"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "priority": True}, "'priority'"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "deadline_s": -1}, "'deadline_s'"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "options": {"workers": 8}}, "unsupported option"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "bogus": 1}, "unknown request field"),
    ({"id": "x", "kind": "ping", "v": 99}, "protocol version"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "trace": "cafe"}, "'trace' must be an object"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "trace": {"trace_id": "cafe", "flavour": 1}}, "unknown trace field"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "trace": {"span_id": "cafe"}}, "non-empty string 'trace_id'"),
    ({"id": "x", "kind": "diagnose", "scenario": "SDN1",
      "trace": {"trace_id": ""}}, "non-empty string 'trace_id'"),
])
def test_parse_rejections_are_typed(payload, fragment):
    with pytest.raises(ProtocolError, match=fragment):
        parse_request(payload)


def test_decode_bounds_line_length():
    huge = b'{"id": "' + b"a" * 70_000 + b'"}'
    with pytest.raises(ProtocolError, match="exceeds"):
        decode(huge)


def test_encode_decode_round_trip_is_canonical():
    obj = {"b": 2, "a": 1}
    line = encode(obj)
    assert line.endswith(b"\n")
    assert line == b'{"a":1,"b":2}\n'  # sorted keys, compact
    assert decode(line) == obj


def test_response_shapes():
    ok = response_ok("r", {"success": True}, shard=0)
    assert (ok["status"], ok["shard"]) == ("ok", 0)
    err = response_error("r", "boom", category="internal")
    assert err["category"] == "internal"
    shed = response_overloaded(
        "r", Overloaded("full", reason="queue-full", retry_after_s=1.23456)
    )
    assert shed["status"] == "overloaded"
    assert shed["reason"] == "queue-full"
    assert shed["retry_after_s"] == 1.235
    assert response_pong("r")["status"] == "pong"


def test_parse_carries_an_upstream_trace_context():
    request = parse_request({
        "id": "x", "kind": "diagnose", "scenario": "SDN1",
        "trace": {"trace_id": "feedfacecafebeef", "span_id": "0123"},
    })
    assert request.trace == {
        "trace_id": "feedfacecafebeef", "span_id": "0123",
    }
    # The trace rides the request, not the worker job.
    assert "trace" not in request.job()


def test_requests_default_protocol_version():
    request = parse_request({"id": "x", "kind": "ping", "v": PROTOCOL_VERSION})
    assert isinstance(request, Request)
