"""Tests for the mappers, the corpus generator, and their agreement."""

import pytest

from repro.datalog.builtins import call as builtin_call
from repro.errors import ReproError
from repro.mapreduce.corpus import (
    VOCABULARY,
    first_word_counts,
    generate_corpus,
    word_counts,
)
from repro.mapreduce.wordcount import (
    BUGGY_MAPPER,
    CORRECT_MAPPER,
    MAPPERS,
    mapper_checksum,
    split_words,
)


class TestSplitWords:
    def test_lowercases_and_tokenizes(self):
        assert split_words("The Quick, brown FOX!") == [
            "the", "quick", "brown", "fox",
        ]

    def test_keeps_digits_and_apostrophes(self):
        assert split_words("it's word2vec") == ["it's", "word2vec"]

    def test_empty_line(self):
        assert split_words("   ") == []


class TestMappers:
    def test_v1_emits_every_word(self):
        emitted = [w for w, _ in MAPPERS[CORRECT_MAPPER]("a b c")]
        assert emitted == ["a", "b", "c"]

    def test_v2_drops_first_word(self):
        emitted = [w for w, _ in MAPPERS[BUGGY_MAPPER]("a b c")]
        assert emitted == ["b", "c"]

    def test_v2_empty_line(self):
        assert list(MAPPERS[BUGGY_MAPPER]("")) == []

    def test_checksums_differ_between_versions(self):
        assert mapper_checksum(CORRECT_MAPPER) != mapper_checksum(BUGGY_MAPPER)

    def test_checksum_stable(self):
        assert mapper_checksum(CORRECT_MAPPER) == mapper_checksum(CORRECT_MAPPER)

    def test_unknown_version(self):
        with pytest.raises(ReproError):
            mapper_checksum("v99")

    def test_mapper_emits_builtin_agrees_with_mappers(self):
        """The declarative model's view of the mappers must match the
        imperative implementations exactly, for every position."""
        line = "alpha beta gamma delta"
        words = split_words(line)
        for version in (CORRECT_MAPPER, BUGGY_MAPPER):
            emitted = [w for w, _ in MAPPERS[version](line)]
            predicted = [
                w
                for pos, w in enumerate(words)
                if builtin_call("mapper_emits", [version, pos])
            ]
            assert emitted == predicted, version


class TestCorpus:
    def test_deterministic(self):
        assert generate_corpus(lines=10) == generate_corpus(lines=10)

    def test_seed_changes_content(self):
        assert generate_corpus(lines=10, seed=1) != generate_corpus(lines=10, seed=2)

    def test_line_and_word_counts(self):
        text = generate_corpus(lines=12, words_per_line=6)
        lines = text.splitlines()
        assert len(lines) == 12
        assert all(len(split_words(line)) == 6 for line in lines)

    def test_word_counts_ground_truth(self):
        text = "a b a\nc a"
        assert word_counts(text) == {"a": 3, "b": 1, "c": 1}

    def test_first_word_counts(self):
        text = "a b a\nc a\na x"
        assert first_word_counts(text) == {"a": 2, "c": 1}

    def test_common_words_open_lines(self):
        # The corpus rotates frequent words through line starts so the
        # MR2 bug is observable in the counts.
        text = generate_corpus(lines=20)
        firsts = first_word_counts(text)
        assert set(firsts) <= set(VOCABULARY[:10])
        assert sum(firsts.values()) == 20
