"""Tests for the imperative runtime, its instrumentation, and the
equivalence between the imperative and declarative WordCount."""

import pytest

from repro.datalog import Engine
from repro.datalog.builtins import call as builtin_call
from repro.errors import ReproError
from repro.mapreduce import declarative
from repro.mapreduce.config import REDUCES_KEY, JobConfig
from repro.mapreduce.corpus import generate_corpus, word_counts
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import (
    ImperativeMapReduceExecution,
    WordCountJob,
    _attribute_positions,
)
from repro.mapreduce.wordcount import BUGGY_MAPPER, CORRECT_MAPPER
from repro.provenance.recorder import ProvenanceRecorder
from repro.replay.replayer import Change

TEXT = "the cat sat\nthe dog ran\ncat and dog"


@pytest.fixture
def hdfs():
    store = HDFS()
    store.write("/in.txt", TEXT)
    return store


class TestWordCountJob:
    def test_counts_are_correct(self, hdfs):
        job = WordCountJob("j1", hdfs, "/in.txt", JobConfig(), CORRECT_MAPPER)
        outputs = job.run()
        truth = word_counts(TEXT)
        assert {w: c for (_, w), c in outputs.items()} == truth

    def test_partitioning_uses_stable_hash(self, hdfs):
        config = JobConfig({REDUCES_KEY: 4})
        job = WordCountJob("j1", hdfs, "/in.txt", config, CORRECT_MAPPER)
        outputs = job.run()
        for (reducer, word) in outputs:
            assert reducer == builtin_call("hash_mod", [word, 4])

    def test_buggy_mapper_changes_counts(self, hdfs):
        job = WordCountJob("j1", hdfs, "/in.txt", JobConfig(), BUGGY_MAPPER)
        outputs = job.run()
        counts = {w: c for (_, w), c in outputs.items()}
        # "the" opens two lines and "cat" one: both lose occurrences.
        assert counts["the"] == 0 if "the" in counts else "the" not in counts
        assert counts.get("dog") == 2  # never first: unaffected

    def test_unknown_mapper_rejected(self, hdfs):
        with pytest.raises(ReproError):
            WordCountJob("j1", hdfs, "/in.txt", JobConfig(), "v77")

    def test_position_attribution(self):
        # v2 dropped "a": emissions map to the remaining positions.
        positions = _attribute_positions("a b c", ["b", "c"])
        assert positions == [(1, "b"), (2, "c")]

    def test_position_attribution_with_duplicates(self):
        positions = _attribute_positions("x y x", ["x", "y", "x"])
        assert positions == [(0, "x"), (1, "y"), (2, "x")]

    def test_position_attribution_rejects_foreign_words(self):
        with pytest.raises(ReproError):
            _attribute_positions("a b", ["z"])


class TestInstrumentation:
    def test_reported_graph_has_all_layers(self, hdfs):
        recorder = ProvenanceRecorder()
        job = WordCountJob("j1", hdfs, "/in.txt", JobConfig(), CORRECT_MAPPER)
        job.run(recorder)
        rules = {d.rule_name for d in recorder.graph.derivations.values()}
        assert rules == {"map", "shuffle", "reduce", "outp"}

    def test_all_config_entries_reported(self, hdfs):
        recorder = ProvenanceRecorder()
        job = WordCountJob("j1", hdfs, "/in.txt", JobConfig(), CORRECT_MAPPER)
        job.run(recorder)
        configs = recorder.graph.live_tuples("jobConfig")
        assert len(configs) == 235

    def test_outputs_traceable_to_input(self, hdfs):
        from repro.provenance.query import provenance_query

        recorder = ProvenanceRecorder()
        job = WordCountJob("j1", hdfs, "/in.txt", JobConfig(), CORRECT_MAPPER)
        outputs = job.run(recorder)
        (reducer,) = [r for (r, w) in outputs if w == "dog"]
        tree = provenance_query(
            recorder.graph,
            declarative.wordcount_output(reducer, "j1", "dog", 2),
        )
        base_tables = {
            n.tuple.table for n in tree.tuple_root.walk() if n.is_base
        }
        assert base_tables == {"jobRun", "wordOcc", "mapperCode", "jobConfig"}


class TestImperativeExecution:
    def test_replay_applies_config_change(self, hdfs):
        execution = ImperativeMapReduceExecution(
            "j1", hdfs, "/in.txt", JobConfig({REDUCES_KEY: 4}), CORRECT_MAPPER
        )
        execution.materialize()
        assert any(r == 3 for (r, w) in execution.last_outputs)
        execution.replay(
            [
                Change(
                    insert=declarative.job_config_tuple(REDUCES_KEY, 1),
                    remove=[declarative.job_config_tuple(REDUCES_KEY, 4)],
                )
            ]
        )
        assert all(r == 0 for (r, w) in execution.last_outputs)

    def test_replay_applies_mapper_change(self, hdfs):
        execution = ImperativeMapReduceExecution(
            "j1", hdfs, "/in.txt", JobConfig(), BUGGY_MAPPER
        )
        execution.materialize()
        buggy_total = sum(execution.last_outputs.values())
        from repro.mapreduce.wordcount import mapper_checksum

        execution.replay(
            [
                Change(
                    insert=declarative.mapper_code(
                        CORRECT_MAPPER, mapper_checksum(CORRECT_MAPPER)
                    ),
                    remove=[
                        declarative.mapper_code(
                            BUGGY_MAPPER, mapper_checksum(BUGGY_MAPPER)
                        )
                    ],
                )
            ]
        )
        assert sum(execution.last_outputs.values()) > buggy_total

    def test_unsupported_change_rejected(self, hdfs):
        execution = ImperativeMapReduceExecution(
            "j1", hdfs, "/in.txt", JobConfig(), CORRECT_MAPPER
        )
        with pytest.raises(ReproError):
            execution.replay(
                [Change(insert=declarative.word_occurrence("/x", 0, 0, "zz"))]
            )

    def test_log_contains_anchor_event(self, hdfs):
        execution = ImperativeMapReduceExecution(
            "j1", hdfs, "/in.txt", JobConfig(), CORRECT_MAPPER
        )
        anchor = execution.log.index_of_insert(
            declarative.job_run("j1", "/in.txt")
        )
        assert anchor == len(execution.log) - 1


class TestImperativeDeclarativeEquivalence:
    """The two WordCount implementations must produce identical facts."""

    @pytest.mark.parametrize("mapper", [CORRECT_MAPPER, BUGGY_MAPPER])
    @pytest.mark.parametrize("reduces", [1, 2, 4])
    def test_outputs_identical(self, hdfs, mapper, reduces):
        from repro.mapreduce.wordcount import mapper_checksum

        # Imperative.
        job = WordCountJob(
            "j1", hdfs, "/in.txt", JobConfig({REDUCES_KEY: reduces}), mapper
        )
        imperative = job.run()

        # Declarative.
        engine = Engine(declarative.mapreduce_program())
        engine.insert(declarative.job_config_tuple(REDUCES_KEY, reduces))
        engine.insert(declarative.mapper_code(mapper, mapper_checksum(mapper)))
        for tup in declarative.load_words(hdfs.read("/in.txt")):
            engine.insert(tup)
        engine.run()
        engine.insert_and_run(declarative.job_run("j1", "/in.txt"))
        engine.fire_aggregates()
        declarative_outputs = {
            (t.args[0], t.args[2]): t.args[3] for t in engine.lookup("output")
        }
        assert declarative_outputs == imperative
