"""Tests for the HDFS stand-in and the job configuration."""

import pytest

from repro.errors import ReproError
from repro.mapreduce.config import DEFAULT_ENTRY_COUNT, REDUCES_KEY, JobConfig
from repro.mapreduce.hdfs import HDFS


class TestHDFS:
    def test_write_and_read(self):
        hdfs = HDFS()
        hdfs.write("/a.txt", "hello\nworld")
        stored = hdfs.read("/a.txt")
        assert stored.lines == ["hello", "world"]

    def test_checksum_stable(self):
        hdfs = HDFS()
        first = hdfs.write("/a.txt", "hello").checksum
        second = HDFS().write("/b.txt", "hello").checksum
        assert first == second

    def test_checksum_content_sensitive(self):
        hdfs = HDFS()
        a = hdfs.write("/a.txt", "hello").checksum
        b = hdfs.write("/b.txt", "hello!").checksum
        assert a != b

    def test_missing_file(self):
        with pytest.raises(ReproError):
            HDFS().read("/nope")

    def test_find_by_checksum(self):
        hdfs = HDFS()
        stored = hdfs.write("/a.txt", "some content")
        assert hdfs.find_by_checksum(stored.checksum) is not None
        assert hdfs.find_by_checksum("0" * 16) is None

    def test_cache_avoids_recomputation(self):
        hdfs = HDFS(cache_checksums=True)
        hdfs.write("/a.txt", "x")
        for _ in range(5):
            hdfs.read("/a.txt")
        assert hdfs.checksum_computations == 1

    def test_no_cache_recomputes_per_read(self):
        hdfs = HDFS(cache_checksums=False)
        hdfs.write("/a.txt", "x")
        for _ in range(5):
            hdfs.read("/a.txt")
        assert hdfs.checksum_computations == 6

    def test_size_bytes(self):
        hdfs = HDFS()
        stored = hdfs.write("/a.txt", "ab\ncd")
        assert stored.size_bytes == 6

    def test_paths_sorted(self):
        hdfs = HDFS()
        hdfs.write("/b", "")
        hdfs.write("/a", "")
        assert hdfs.paths() == ["/a", "/b"]


class TestJobConfig:
    def test_has_235_entries(self):
        config = JobConfig()
        assert len(config) == DEFAULT_ENTRY_COUNT == 235

    def test_reduces_default(self):
        assert JobConfig().reduces == 2

    def test_overrides(self):
        config = JobConfig({REDUCES_KEY: 4})
        assert config.reduces == 4
        assert len(config) == 235

    def test_get_unknown_key(self):
        with pytest.raises(ReproError):
            JobConfig().get("no.such.key")

    def test_set_and_get(self):
        config = JobConfig()
        config.set("mapreduce.map.memory.mb", 4096)
        assert config.get("mapreduce.map.memory.mb") == 4096

    def test_copy_is_independent(self):
        config = JobConfig()
        clone = config.copy()
        clone.set(REDUCES_KEY, 8)
        assert config.reduces == 2
        assert clone.reduces == 8

    def test_items_sorted_and_realistic(self):
        keys = [key for key, _ in JobConfig().items()]
        assert keys == sorted(keys)
        assert all(key.startswith(("mapreduce.", "yarn.")) for key in keys)

    def test_contains(self):
        assert REDUCES_KEY in JobConfig()
        assert "bogus" not in JobConfig()
