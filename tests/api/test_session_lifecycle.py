"""Session lifecycle: close(), the context manager, and the cache knob.

A Session holds real resources once built — an open journal during
calls, megabytes of cached snapshots on the executions — so the
service's worker loop (and any long-lived embedder) needs a definite
way to let go of them.
"""

import pytest

from repro.api import Session
from repro.errors import ReproError
from repro.replay.cache import ReplayCache


def test_close_is_idempotent_and_observable():
    session = Session(scenario="DNS")
    session.diagnose()
    assert session.closed is False
    session.close()
    assert session.closed is True
    session.close()  # a second close is a no-op, not an error
    assert session.closed is True


def test_context_manager_closes_on_exit():
    with Session(scenario="DNS") as session:
        report = session.diagnose()
        assert report.success
    assert session.closed is True


def test_context_manager_closes_on_error_too():
    with pytest.raises(RuntimeError):
        with Session(scenario="DNS") as session:
            raise RuntimeError("boom")
    assert session.closed is True


def test_queries_after_close_raise():
    session = Session(scenario="DNS")
    session.close()
    with pytest.raises(ReproError, match="closed"):
        session.diagnose()
    with pytest.raises(ReproError, match="closed"):
        session.autoref()
    with pytest.raises(ReproError, match="closed"):
        session.setup()


def test_close_drops_execution_references():
    session = Session(scenario="DNS").setup()
    assert session.good is not None and session.bad is not None
    session.close()
    assert session.good is None and session.bad is None
    assert session.program is None


def test_shared_cache_attaches_and_warms_across_sessions():
    cache = ReplayCache()
    with Session(scenario="DNS", cache=cache) as first:
        first.diagnose()
    populated = cache.stats()["entries"]
    assert populated > 0

    # A second Session over the same cache starts warm: its replays
    # fork the snapshots the first one derived.
    with Session(scenario="DNS", cache=cache) as second:
        second.diagnose()
    stats = cache.stats()
    assert stats["hits"] + stats["prefix_hits"] > 0


def test_close_detaches_the_shared_cache():
    cache = ReplayCache()
    session = Session(scenario="DNS", cache=cache).setup()
    good, bad = session.good, session.bad
    assert good.replay_cache is cache and bad.replay_cache is cache
    session.close()
    assert good.replay_cache is None and bad.replay_cache is None


def test_cache_knob_ignored_when_replay_cache_disabled():
    cache = ReplayCache()
    with Session(scenario="DNS", cache=cache, replay_cache=False) as session:
        session.diagnose()
    assert session.cache is None
    assert cache.stats()["entries"] == 0


def test_journal_stays_readable_after_close(tmp_path):
    journal = str(tmp_path / "lifecycle.journal")
    session = Session(scenario="DNS", journal=journal)
    session.diagnose()
    session.close()
    # Crash handlers print journal.progress() after teardown.
    assert session.journal is not None
    assert session.journal.closed is True
    assert session.journal.progress()


def test_shared_cache_report_stays_byte_identical():
    baseline = Session(scenario="DNS").diagnose()
    cache = ReplayCache()
    with Session(scenario="DNS", cache=cache) as warm_up:
        warm_up.diagnose()
    with Session(scenario="DNS", cache=cache) as warmed:
        report = warmed.diagnose()
    assert report.canonical_json() == baseline.canonical_json()
