"""Tests for the Session facade (repro.api)."""

import json
import warnings

import pytest

from repro import Session
from repro.core.autoref import auto_diagnose
from repro.core.diffprov import DiffProv, DiffProvOptions
from repro.datalog import parse_tuple
from repro.errors import FaultSpecError, ReproError
from repro.replay import Execution
from repro.scenarios import ALL_SCENARIOS


class TestConstruction:
    def test_scenario_and_explicit_are_exclusive(self):
        with pytest.raises(ReproError, match="not both"):
            Session(scenario="SDN1", program=object())

    def test_explicit_mode_requires_the_quintet(self):
        with pytest.raises(ReproError, match="good_event"):
            Session(program=object(), good=object(), bad=object())

    def test_unknown_scenario_rejected_eagerly(self):
        with pytest.raises(ReproError, match="unknown scenario"):
            Session(scenario="SDN99")

    def test_scenario_name_is_case_insensitive(self):
        assert Session(scenario="sdn1").scenario_name == "SDN1"

    def test_bad_fault_spec_rejected_eagerly(self):
        with pytest.raises(FaultSpecError):
            Session(scenario="SDN1", faults="bogus")

    def test_construction_is_lazy(self):
        session = Session(scenario="SDN1")
        assert session.program is None  # nothing built yet

    def test_knobs_reach_the_options(self):
        session = Session(
            scenario="SDN1", workers=4, replay_cache=False,
            max_rounds=3, minimize=True, taint=False,
        )
        options = session.options
        assert options.workers == 4
        assert options.replay_cache is False
        assert options.max_rounds == 3
        assert options.minimize is True
        assert options.enable_taint is False

    def test_telemetry_true_builds_one(self):
        session = Session(scenario="SDN1", telemetry=True)
        assert session.telemetry is not None
        assert session.options.telemetry is session.telemetry


class TestFacadeParity:
    """session.diagnose() == the hand-wired DiffProv invocation."""

    @pytest.mark.parametrize("name", ["SDN1", "DNS"])
    def test_diagnose_matches_direct_diffprov(self, name):
        scenario = ALL_SCENARIOS[name]().setup()
        direct = DiffProv(scenario.program, DiffProvOptions()).diagnose(
            scenario.good_execution,
            scenario.bad_execution,
            scenario.good_event,
            scenario.bad_event,
            scenario.good_time,
            scenario.bad_time,
        )
        via_session = Session(scenario=name).diagnose()
        assert via_session.canonical_json() == direct.canonical_json()

    @pytest.mark.parametrize("name", ["SDN1", "DNS"])
    def test_autoref_matches_direct_auto_diagnose(self, name):
        scenario = ALL_SCENARIOS[name]().setup()
        direct = auto_diagnose(
            scenario.program,
            scenario.good_execution,
            scenario.bad_execution,
            scenario.bad_event,
            options=DiffProvOptions(),
            limit=5,
        )
        via_session = Session(scenario=name).autoref(limit=5)
        assert via_session.found == direct.found
        assert str(via_session.reference) == str(direct.reference)
        assert len(via_session.tried) == len(direct.tried)
        if direct.found:
            assert via_session.report.canonical_json() == \
                direct.report.canonical_json()

    def test_tree_matches_scenario_trees(self):
        scenario = ALL_SCENARIOS["SDN1"]().setup()
        good, bad = scenario.trees()
        session = Session(scenario="SDN1")
        assert session.tree(side="good").size() == good.size()
        assert session.tree(side="bad").size() == bad.size()

    def test_tree_rejects_unknown_side(self):
        with pytest.raises(ReproError, match="side"):
            Session(scenario="SDN1").tree(side="ugly")

    def test_export_roundtrip(self, tmp_path):
        from repro.provenance.serialize import load_graph

        path = str(tmp_path / "sdn1.jsonl")
        records = Session(scenario="SDN1").export(path)
        assert records > 0
        assert len(load_graph(path)) > 0

    def test_parallel_session_matches_serial(self):
        serial = Session(scenario="SDN1", minimize=True).diagnose()
        parallel = Session(scenario="SDN1", minimize=True,
                           workers=2).diagnose()
        assert parallel.canonical_json() == serial.canonical_json()


class TestExplicitMode:
    def _network(self, forwarding_program):
        execution = Execution(forwarding_program)
        for text in (
            "link('s1', 2, 's2')",
            "flowEntry('s1', 5, 4.3.2.0/24, 2)",
            "flowEntry('s1', 1, 0.0.0.0/0, 9)",
            "flowEntry('s2', 1, 0.0.0.0/0, 3)",
            "hostAt('s2', 3, 'h1')",
            "hostAt('s1', 9, 'h9')",
        ):
            execution.insert(parse_tuple(text))
        execution.insert(parse_tuple("packet('s1', 7.7.7.7, 4.3.2.1)"))
        execution.insert(parse_tuple("packet('s1', 7.7.7.7, 4.3.3.1)"))
        return execution

    def test_diagnose(self, forwarding_program):
        network = self._network(forwarding_program)
        session = Session(
            program=forwarding_program,
            good=network, bad=network,
            good_event=parse_tuple("delivered('h1', 7.7.7.7, 4.3.2.1)"),
            bad_event=parse_tuple("delivered('h9', 7.7.7.7, 4.3.3.1)"),
        )
        report = session.diagnose()
        assert report.success
        assert report.num_changes == 1
        assert "4.3.2.0/23" in report.changes[0].describe()

    def test_tree_and_repr(self, forwarding_program):
        network = self._network(forwarding_program)
        session = Session(
            program=forwarding_program,
            good=network, bad=network,
            good_event=parse_tuple("delivered('h1', 7.7.7.7, 4.3.2.1)"),
            bad_event=parse_tuple("delivered('h9', 7.7.7.7, 4.3.3.1)"),
        )
        assert session.tree(side="good").size() > 0
        assert "explicit" in repr(session)


class TestDeprecationShims:
    def test_top_level_diffprov_warns_once_per_access(self):
        import repro

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cls = repro.DiffProv
            options_cls = repro.DiffProvOptions
        assert cls is DiffProv
        assert options_cls is DiffProvOptions
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 2
        assert all("repro.api.Session" in m or "docs/api.md" in m
                   for m in messages)

    def test_canonical_submodule_import_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import DiffProv as _  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NoSuchThing
