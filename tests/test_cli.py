"""Tests for the diffprov command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["diagnose", "SDN99"])


class TestCommands:
    def test_scenarios_lists_them_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("SDN1", "SDN4", "MR1-D", "MR2-I", "DNS"):
            assert name in out

    def test_scenarios_json(self, capsys):
        assert main(["--json", "scenarios"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 14
        assert {"name", "description"} <= set(rows[0])

    def test_diagnose_sdn2(self, capsys):
        assert main(["diagnose", "SDN2"]) == 0
        out = capsys.readouterr().out
        assert "root-cause" in out
        assert "remove flowEntry" in out

    def test_diagnose_json(self, capsys):
        assert main(["--json", "diagnose", "SDN2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["success"]
        assert len(data["changes"]) == 1

    def test_diagnose_with_taints_disabled_reports_failure(self, capsys):
        assert main(["--json", "diagnose", "SDN2", "--no-taint"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert not data["success"]

    def test_tree_tuple_view(self, capsys):
        assert main(["tree", "SDN2", "--side", "bad"]) == 0
        out = capsys.readouterr().out
        assert "delivered(" in out
        assert "via" in out

    def test_tree_vertex_view(self, capsys):
        assert main(["tree", "SDN2", "--side", "good", "--view", "vertex"]) == 0
        out = capsys.readouterr().out
        assert "EXIST(" in out and "DERIVE(" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "70.3%" in out

    def test_survey_json(self, capsys):
        assert main(["--json", "survey"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["with_reference"] == 45

    def test_tree_dot(self, capsys):
        assert main(["tree", "DNS", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "->" in out

    def test_tree_dot_diff(self, capsys):
        assert main(["tree", "DNS", "--dot", "--diff"]) == 0
        out = capsys.readouterr().out
        assert "cluster_good" in out and "cluster_bad" in out

    def test_diagnose_minimize_flag(self, capsys):
        assert main(["--json", "diagnose", "DNS", "--minimize"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["success"]
        assert len(data["changes"]) == 1

    def test_autoref(self, capsys):
        assert main(["--json", "autoref", "DNS"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["found"]
        assert data["reference"].startswith("response('ns-c'")
        assert data["changes"] == ["insert transferred('ns-a', 'example.com', 2)"]

    def test_export_roundtrip(self, capsys, tmp_path):
        from repro.provenance.serialize import load_graph

        out = str(tmp_path / "dns.jsonl")
        assert main(["--json", "export", "DNS", "--out", out]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["records"] > 0
        graph = load_graph(out)
        assert len(graph) > 0
        assert graph.live_tuples("response")


class TestScenarioParams:
    def test_param_coercion(self):
        from repro.cli import _coerce_param_value, _parse_params

        assert _coerce_param_value("50") == 50
        assert _coerce_param_value("true") is True
        assert _coerce_param_value("False") is False
        assert _coerce_param_value("0.25") == 0.25
        assert _coerce_param_value("edge") == "edge"
        assert _parse_params(["flaps=5", "name=x", "rate=0.5"]) == {
            "flaps": 5, "name": "x", "rate": 0.5,
        }

    def test_param_reaches_the_scenario(self, capsys):
        assert main([
            "--json", "diagnose", "FLAP",
            "--param", "flaps=5", "--param", "probes_per_phase=3",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["success"]

    def test_malformed_param_is_a_usage_error(self, capsys):
        assert main(["diagnose", "FLAP", "--param", "flaps"]) == 2
        assert "--param wants KEY=VALUE" in capsys.readouterr().err


class TestMonitorCommand:
    def test_monitor_human_output(self, capsys):
        assert main(["monitor", "FLAP-S", "--param", "flaps=4"]) == 0
        out = capsys.readouterr().out
        assert "incident-seq" in out
        assert "[confirmed]" in out
        assert "summary:" in out

    def test_monitor_json_records(self, capsys):
        assert main([
            "--json", "monitor", "FLAP-S", "--param", "flaps=4",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "FLAP-S"
        assert len(data["records"]) == 4
        assert data["summary"]["shed"] == 0
        assert all(r["kind"] == "diagnosis" for r in data["records"])

    def test_monitor_metrics_flag(self, capsys):
        assert main([
            "monitor", "FLAP-S", "--param", "flaps=3", "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "streaming.monitor.diagnoses" in out

    def test_monitor_records_out(self, capsys, tmp_path):
        out = str(tmp_path / "records.ndjson")
        assert main([
            "monitor", "FLAP-S", "--param", "flaps=3",
            "--records-out", out,
        ]) == 0
        lines = open(out, encoding="utf-8").read().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["kind"] == "diagnosis" for line in lines)

    def test_monitor_dump_stream_then_replay_file(self, capsys, tmp_path):
        stream = str(tmp_path / "stream.ndjson")
        assert main([
            "--json", "monitor", "FLAP-S", "--param", "flaps=3",
            "--dump-stream", stream,
        ]) == 0
        dumped = json.loads(capsys.readouterr().out)
        assert dumped["events"] > 0

        assert main([
            "--json", "monitor", "FLAP-S", "--stream", stream,
        ]) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert len(replayed["records"]) == 3

    def test_monitor_under_stream_faults_degrades_in_output(self, capsys):
        assert main([
            "monitor", "FLAP-S", "--param", "flaps=8",
            "--faults", "event-drop=0.08,seed=3",
        ]) == 0
        out = capsys.readouterr().out
        assert "[uncertain]" in out
        assert "UNKNOWN gap(seq=" in out

    def test_monitor_bad_fault_spec_is_a_usage_error(self, capsys):
        assert main(["monitor", "FLAP-S", "--faults", "bogus=1"]) == 2
        assert "error" in capsys.readouterr().err
