"""Tests for the diffprov command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["diagnose", "SDN99"])


class TestCommands:
    def test_scenarios_lists_them_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("SDN1", "SDN4", "MR1-D", "MR2-I", "DNS"):
            assert name in out

    def test_scenarios_json(self, capsys):
        assert main(["--json", "scenarios"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 13
        assert {"name", "description"} <= set(rows[0])

    def test_diagnose_sdn2(self, capsys):
        assert main(["diagnose", "SDN2"]) == 0
        out = capsys.readouterr().out
        assert "root-cause" in out
        assert "remove flowEntry" in out

    def test_diagnose_json(self, capsys):
        assert main(["--json", "diagnose", "SDN2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["success"]
        assert len(data["changes"]) == 1

    def test_diagnose_with_taints_disabled_reports_failure(self, capsys):
        assert main(["--json", "diagnose", "SDN2", "--no-taint"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert not data["success"]

    def test_tree_tuple_view(self, capsys):
        assert main(["tree", "SDN2", "--side", "bad"]) == 0
        out = capsys.readouterr().out
        assert "delivered(" in out
        assert "via" in out

    def test_tree_vertex_view(self, capsys):
        assert main(["tree", "SDN2", "--side", "good", "--view", "vertex"]) == 0
        out = capsys.readouterr().out
        assert "EXIST(" in out and "DERIVE(" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "70.3%" in out

    def test_survey_json(self, capsys):
        assert main(["--json", "survey"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["with_reference"] == 45

    def test_tree_dot(self, capsys):
        assert main(["tree", "DNS", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "->" in out

    def test_tree_dot_diff(self, capsys):
        assert main(["tree", "DNS", "--dot", "--diff"]) == 0
        out = capsys.readouterr().out
        assert "cluster_good" in out and "cluster_bad" in out

    def test_diagnose_minimize_flag(self, capsys):
        assert main(["--json", "diagnose", "DNS", "--minimize"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["success"]
        assert len(data["changes"]) == 1

    def test_autoref(self, capsys):
        assert main(["--json", "autoref", "DNS"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["found"]
        assert data["reference"].startswith("response('ns-c'")
        assert data["changes"] == ["insert transferred('ns-a', 'example.com', 2)"]

    def test_export_roundtrip(self, capsys, tmp_path):
        from repro.provenance.serialize import load_graph

        out = str(tmp_path / "dns.jsonl")
        assert main(["--json", "export", "DNS", "--out", out]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["records"] > 0
        graph = load_graph(out)
        assert len(graph) > 0
        assert graph.live_tuples("response")
