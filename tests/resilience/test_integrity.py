"""Tests for the length+digest framing of persisted artifacts."""

import pytest

from repro.errors import IntegrityError
from repro.resilience import (
    checksum_line,
    digest_text,
    frame,
    unframe,
    verify_line,
)
from repro.resilience.integrity import FRAME_MAGIC, HEADER_BYTES


class TestFraming:
    def test_round_trip(self):
        for payload in (b"", b"x", b"hello world" * 1000):
            assert unframe(frame(payload)) == payload

    def test_header_layout(self):
        framed = frame(b"abc")
        assert framed.startswith(FRAME_MAGIC)
        assert len(framed) == HEADER_BYTES + 3

    def test_truncation_detected(self):
        framed = frame(b"some snapshot payload")
        for cut in (0, 3, HEADER_BYTES - 1, HEADER_BYTES,
                    len(framed) // 2, len(framed) - 1):
            with pytest.raises(IntegrityError):
                unframe(framed[:cut])

    def test_bad_magic_detected(self):
        framed = frame(b"payload")
        with pytest.raises(IntegrityError):
            unframe(b"XXXX" + framed[4:])

    def test_bit_rot_detected(self):
        framed = bytearray(frame(b"payload-with-substance"))
        framed[-1] ^= 0xFF  # flip a payload bit; length stays right
        with pytest.raises(IntegrityError):
            unframe(bytes(framed))

    def test_trailing_garbage_detected(self):
        framed = frame(b"payload")
        with pytest.raises(IntegrityError):
            unframe(framed + b"extra")


class TestLineChecksums:
    def test_round_trip(self):
        line = checksum_line('{"seq": 0, "type": "start"}')
        assert verify_line(line) == '{"seq": 0, "type": "start"}'

    def test_corrupt_line_rejected(self):
        line = checksum_line('{"seq": 1}')
        assert verify_line(line.replace("1", "2", 1)) is None

    def test_garbage_rejected(self):
        assert verify_line("not a checksummed line") is None
        assert verify_line("") is None

    def test_digest_text_is_stable(self):
        assert digest_text("abc") == digest_text("abc")
        assert digest_text("abc") != digest_text("abd")


class TestEventLogTrailer:
    """Dumped event logs carry a sha256 trailer that load verifies."""

    def _log(self):
        from repro.datalog import parse_tuple
        from repro.replay.log import EventLog

        log = EventLog()
        log.append("insert", parse_tuple("link('s1', 2, 's2')"))
        log.append("insert", parse_tuple("packet('s1', 1.2.3.4, 4.3.2.1)"))
        return log

    def test_dump_writes_a_digest_trailer(self, tmp_path):
        path = str(tmp_path / "events.log")
        self._log().dump(path)
        last = open(path, encoding="utf-8").read().splitlines()[-1]
        assert last.startswith("# sha256:")

    def test_tampered_dump_is_rejected(self, tmp_path):
        from repro.replay.log import EventLog

        path = str(tmp_path / "events.log")
        self._log().dump(path)
        text = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text.replace("s2", "s9", 1))
        with pytest.raises(IntegrityError):
            EventLog.load(path)

    def test_legacy_dump_without_trailer_still_loads(self, tmp_path):
        from repro.replay.log import EventLog

        path = str(tmp_path / "events.log")
        self._log().dump(path)
        lines = [
            line
            for line in open(path, encoding="utf-8").read().splitlines()
            if not line.startswith("# sha256:")
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        assert len(EventLog.load(path)) == 2
