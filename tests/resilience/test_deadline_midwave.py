"""Deadline expiry in the middle of a parallel candidate wave.

Both wave-based pool consumers — the autoref candidate sweep and the
minimality post-pass — block on ``CandidateEvaluator.evaluate`` for a
whole wave at a time, so the realistic expiry shape is: a wave runs to
completion on the pool, and only the *next* deadline check sees the
overrun.  These tests pin down what must happen then: the work already
done is kept, the run degrades to a partial result instead of raising,
and the expiry is reported in the resilience section
(docs/resilience.md).

The fixtures drive a fake clock that leaps forward only after a real
pool wave returns, so the budget always dies mid-sweep, never before
the pool was touched.
"""

import pytest

from repro.api import Session
from repro.replay.parallel import CandidateEvaluator
from repro.resilience import Deadline


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def wave_burns_budget(monkeypatch):
    """Make each pool wave cost two virtual minutes on a fake clock.

    The wave itself runs for real (on the real process pool); the
    injected clock advances only after it returns, so the expiry is
    seen by the *next* between-wave deadline check — exactly the
    mid-candidate-wave shape.
    """
    clock = FakeClock()
    real_evaluate = CandidateEvaluator.evaluate

    def expiring_evaluate(self, func, shared, count):
        results = real_evaluate(self, func, shared, count)
        clock.t += 120.0
        return results

    monkeypatch.setattr(CandidateEvaluator, "evaluate", expiring_evaluate)
    return clock


@pytest.fixture
def wave_burns_budget_then_degrades(monkeypatch):
    """Run one real pool wave, burn the budget, then force the serial
    fallback.

    After the wave completes (and the clock has leapt), the patched
    evaluator reports its results as unusable — the same signal an
    unpicklable context sends — so ``_minimize_parallel`` hands the
    remaining trials to the serial pass, whose per-candidate
    ``_check_deadline("minimize")`` is the check that must observe the
    expiry.  (Every built-in scenario's minimize finishes in a single
    wave, so without the handoff no later check would ever run.)
    """
    clock = FakeClock()
    real_evaluate = CandidateEvaluator.evaluate

    def wasted_evaluate(self, func, shared, count):
        real_evaluate(self, func, shared, count)
        clock.t += 120.0
        return None

    monkeypatch.setattr(CandidateEvaluator, "evaluate", wasted_evaluate)
    return clock


def test_deadline_mid_wave_stops_autoref_sweep(wave_burns_budget):
    # DNS proposes 10 candidates and only accepts the fifth, so with
    # two workers the sweep needs three waves; 60s of budget dies
    # during the first.  The between-wave check must stop the sweep —
    # keeping the wave already evaluated — not raise.
    session = Session(
        scenario="DNS", workers=2,
        deadline_s=Deadline(60.0, clock=wave_burns_budget),
    )
    result = session.autoref(limit=10)

    assert result.stopped_early is True
    assert result.found is False and result.report is None
    # Exactly the first wave was evaluated before the budget died.
    assert len(result.tried) == 2
    deadline = result.resilience["deadline"]
    assert deadline["expired"] is True
    assert result.resilience["stopped_early"] is True

    # The partial sweep is a prefix of the full one: ranking (and
    # therefore what a retry would redo) is deterministic.
    full = Session(scenario="DNS").autoref(limit=10)
    assert [str(c.event) for c in result.tried] == [
        str(c.event) for c in full.tried[:2]
    ]


def test_deadline_mid_wave_degrades_to_partial_minimize(
    wave_burns_budget_then_degrades,
):
    # SDN4 reaches minimize with two changes in flight, i.e. a real
    # multi-job wave; 60s of budget dies during it.
    session = Session(
        scenario="SDN4", minimize=True, workers=2,
        deadline_s=Deadline(60.0, clock=wave_burns_budget_then_degrades),
    )
    report = session.diagnose()

    # The diagnosis still succeeds — with the Δ as minimized so far.
    assert report.success
    assert report.changes
    deadline = report.resilience["deadline"]
    assert deadline["expired"] is True
    assert deadline["expired_in"] == "minimize"
    assert report.failure_category is None


def test_partial_minimize_keeps_a_verified_superset(
    wave_burns_budget_then_degrades,
):
    """The degraded Δ contains everything the full minimize keeps."""
    full = Session(scenario="SDN4", minimize=True).diagnose()

    degraded = Session(
        scenario="SDN4", minimize=True, workers=2,
        deadline_s=Deadline(60.0, clock=wave_burns_budget_then_degrades),
    ).diagnose()

    full_described = {change.describe() for change in full.changes}
    degraded_described = {change.describe() for change in degraded.changes}
    assert full_described <= degraded_described
    assert len(degraded.changes) >= len(full.changes)


def test_generous_deadline_stays_byte_identical(wave_burns_budget):
    """A budget the waves never exhaust must not perturb the report."""
    baseline = Session(scenario="SDN4", minimize=True, workers=2).diagnose()
    budgeted = Session(
        scenario="SDN4", minimize=True, workers=2,
        deadline_s=Deadline(100_000.0, clock=wave_burns_budget),
    ).diagnose()
    assert budgeted.canonical_json() == baseline.canonical_json()
