"""Kill-and-resume: the journal's reason to exist.

A diagnosis is SIGKILLed at a deterministic point mid-search (held
inside a journal append by the REPRO_TEST_HOLD_* hooks), then resumed
from its journal.  The resumed run must produce a ``canonical_json()``
byte-identical to an uninterrupted diagnosis — for the clean scenario
(SDN1, where recorded verdicts are reused) and for the faulty one
(SDN1-F, where the degraded search recomputes its trials but the
journal still resumes safely).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Session

_CHILD = str(Path(__file__).with_name("_diagnose_child.py"))
_SRC = str(Path(__file__).parents[2] / "src")


def _child_env(**holds):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update({key: str(value) for key, value in holds.items()})
    return env


def _child_argv(scenario, journal, out, engine=None):
    argv = [sys.executable, _CHILD, scenario, journal, out]
    if engine is not None:
        argv.append(engine)
    return argv


def _run_child(scenario, journal, out, env, timeout=120, engine=None):
    return subprocess.run(
        _child_argv(scenario, journal, out, engine),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _kill_once_held(scenario, journal, out, holds, sentinel, engine=None):
    """Start a held child, SIGKILL it once ``sentinel`` is journaled."""
    proc = subprocess.Popen(
        _child_argv(scenario, journal, out, engine),
        env=_child_env(REPRO_TEST_HOLD_S="60", **holds),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 90
        while time.monotonic() < deadline:
            if os.path.exists(journal) and sentinel in open(
                journal, encoding="utf-8", errors="replace"
            ).read():
                break
            if proc.poll() is not None:
                pytest.fail(
                    f"child exited (rc={proc.returncode}) before the "
                    f"hold point {sentinel!r} was journaled"
                )
            time.sleep(0.05)
        else:
            pytest.fail(f"hold point {sentinel!r} never reached")
        # The hold guarantees the process is parked inside the append
        # *after* the sentinel entry was fsync'd: SIGKILL lands at a
        # deterministic point of the search.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.wait(timeout=30)
    assert not os.path.exists(out), "killed child must not have finished"


@pytest.mark.parametrize(
    "scenario,holds,sentinel",
    [
        # SDN1: killed right after the first minimality verdict hit the
        # disk — the resumed run reuses it (skipped_candidates > 0).
        ("SDN1", {"REPRO_TEST_HOLD_AFTER_VERDICTS": "1"}, '"type":"verdict"'),
        # SDN1-F: killed at the minimize phase boundary.  The degraded
        # search recomputes its trials (divergence checks mutate state),
        # so resume safety — not verdict reuse — is what's under test.
        ("SDN1-F", {"REPRO_TEST_HOLD_PHASE": "minimize"}, '"name":"minimize"'),
    ],
)
def test_sigkill_then_resume_is_byte_identical(
    tmp_path, scenario, holds, sentinel
):
    journal = str(tmp_path / "diag.journal")
    out = str(tmp_path / "report.json")

    baseline = Session(scenario=scenario, minimize=True).diagnose()

    _kill_once_held(scenario, journal, out, holds, sentinel)

    resumed = _run_child(scenario, journal, out, _child_env())
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(open(out, encoding="utf-8").read())
    assert payload["canonical"] == baseline.canonical_json()
    section = payload["resilience"]["journal"]
    assert section["resumed"] is True
    if "REPRO_TEST_HOLD_AFTER_VERDICTS" in holds:
        assert section["skipped_candidates"] >= 1


def test_sigkill_then_resume_compiled_backend(tmp_path):
    """Crash-resume with backend="compiled" is byte-identical — to an
    uninterrupted compiled run *and* to the reference evaluator.  The
    resumed worker unpickles journal/cache state whose ColumnarStore
    dropped its caches and compiled closures on pickling; both must
    rebuild transparently mid-search."""
    journal = str(tmp_path / "diag.journal")
    out = str(tmp_path / "report.json")

    baseline = Session(
        scenario="SDN1", minimize=True, engine="compiled"
    ).diagnose()
    reference = Session(
        scenario="SDN1", minimize=True, engine="reference"
    ).diagnose()
    assert baseline.canonical_json() == reference.canonical_json()

    _kill_once_held(
        "SDN1", journal, out,
        {"REPRO_TEST_HOLD_AFTER_VERDICTS": "1"},
        '"type":"verdict"',
        engine="compiled",
    )

    resumed = _run_child("SDN1", journal, out, _child_env(), engine="compiled")
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(open(out, encoding="utf-8").read())
    assert payload["canonical"] == baseline.canonical_json()
    section = payload["resilience"]["journal"]
    assert section["resumed"] is True
    assert section["skipped_candidates"] >= 1


def test_uninterrupted_journaled_run_matches_baseline(tmp_path):
    journal = str(tmp_path / "diag.journal")
    out = str(tmp_path / "report.json")
    baseline = Session(scenario="SDN1", minimize=True).diagnose()
    result = _run_child("SDN1", journal, out, _child_env())
    assert result.returncode == 0, result.stderr
    payload = json.loads(open(out, encoding="utf-8").read())
    assert payload["canonical"] == baseline.canonical_json()
    assert payload["resilience"]["journal"]["resumed"] is False
