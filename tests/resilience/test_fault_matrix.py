"""Session.diagnose under every fault kind, serial and parallel.

Two properties hold across the whole FaultPlan surface:

- the diagnosis *completes* — success or a typed failure category,
  never an unhandled crash; and
- ``workers=2`` is byte-identical to ``workers=1`` (the determinism
  contract survives injected faults).

Host faults (worker-crash, snapshot-corrupt) additionally leave the
report byte-identical to the fault-free run: they hit the diagnoser's
own machinery, which heals, not the diagnosed network.
"""

import pytest

from repro.api import Session
from repro.core.report import FAILURE_CATEGORIES
from repro.faults import FaultPlan

NETWORK_SPECS = [
    "drop=0.05,seed=7",
    "dup=0.05,seed=7",
    "reorder=0.05,seed=7",
    "delay=0.2,delay-steps=2,seed=7",
    "loss=0.1,seed=7",
    "fetch-loss=0.15,seed=7",
    "link-loss=0.1,seed=7",
    "flap=s2:*:0:2,seed=7",
    "crash=s2:0:2,seed=7",
]

HOST_SPECS = [
    "worker-crash=1.0,seed=7",
    "snapshot-corrupt=1.0,seed=7",
    "worker-crash=0.5,snapshot-corrupt=0.5,seed=7",
]


def _diagnose(spec, workers):
    return Session(
        scenario="SDN1", minimize=True, workers=workers, faults=spec
    ).diagnose()


@pytest.fixture(scope="module")
def baseline():
    return Session(scenario="SDN1", minimize=True).diagnose()


class TestNetworkFaults:
    @pytest.mark.parametrize("spec", NETWORK_SPECS)
    def test_completes_and_is_worker_invariant(self, spec):
        serial = _diagnose(spec, workers=1)
        parallel = _diagnose(spec, workers=2)
        for report in (serial, parallel):
            assert report.success or (
                report.failure_category in FAILURE_CATEGORIES
            )
        assert serial.canonical_json() == parallel.canonical_json()


class TestHostFaults:
    @pytest.mark.parametrize("spec", HOST_SPECS)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_heals_to_the_fault_free_report(self, baseline, spec, workers):
        report = _diagnose(spec, workers)
        assert report.success
        assert report.canonical_json() == baseline.canonical_json()

    def test_host_faults_do_not_count_as_network_degradation(self):
        plan = FaultPlan.parse("worker-crash=0.5,snapshot-corrupt=0.5,seed=7")
        assert plan.host_only()
        assert not plan.is_zero()
        report = _diagnose("worker-crash=0.5,snapshot-corrupt=0.5,seed=7", 2)
        assert not report.degraded

    def test_pool_restarts_are_visible_in_report_and_metrics(self):
        # SDN4's minimality post-pass carries several changes, so the
        # pooled evaluator actually runs (SDN1 has a single candidate,
        # which goes inline).
        from repro.observability import Telemetry

        base = Session(scenario="SDN4", minimize=True).diagnose()
        telemetry = Telemetry()
        report = Session(
            scenario="SDN4", minimize=True, workers=2,
            faults="worker-crash=1.0,seed=3", telemetry=telemetry,
        ).diagnose()
        assert report.success
        assert report.canonical_json() == base.canonical_json()
        assert report.resilience["evaluator"]["pool_restarts"] >= 1
        counters = telemetry.snapshot()["counters"]
        assert counters.get("parallel.pool_restarts", 0) >= 1

    def test_snapshot_corruption_is_visible_in_the_report(self):
        report = _diagnose("snapshot-corrupt=1.0,seed=7", 1)
        section = (report.resilience or {}).get("cache")
        assert section is not None and section["corrupt"] >= 1

    def test_host_faults_round_trip_through_the_spec_parser(self):
        plan = FaultPlan.parse("worker-crash=0.25,snapshot-corrupt=0.5,seed=9")
        assert plan.worker_crash == 0.25
        assert plan.snapshot_corrupt == 0.5
        assert FaultPlan.parse(plan.describe()).describe() == plan.describe()
