"""Tests for the write-ahead diagnosis journal."""

import json

import pytest

from repro.errors import JournalError
from repro.resilience import SCHEMA_VERSION, DiagnosisJournal
from repro.resilience.integrity import verify_line

FP = {"kind": "diagnose", "good_log": "aaa", "bad_log": "bbb"}


def _entries(path):
    out = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = verify_line(line.rstrip("\n"))
            assert text is not None, f"corrupt line in journal: {line!r}"
            out.append(json.loads(text))
    return out


class TestRoundTrip:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal = DiagnosisJournal(path, FP)
        journal.close()
        entries = _entries(path)
        assert entries[0]["type"] == "start"
        assert entries[0]["schema"] == SCHEMA_VERSION
        assert entries[0]["fingerprint"] == FP

    def test_verdicts_survive_a_reopen(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal = DiagnosisJournal(path, FP)
        journal.phase("minimize")
        journal.record("minimize", "change-a", True)
        journal.record("minimize", "change-b", False)
        journal.close()

        resumed = DiagnosisJournal(path, FP, resume=True)
        assert resumed.resumed
        assert resumed.lookup("minimize", "change-a") is True
        assert resumed.lookup("minimize", "change-b") is False
        assert resumed.lookup("minimize", "change-c") is None
        assert resumed.skipped == 2  # the two hits above
        resumed.close()

    def test_record_is_idempotent_per_key(self, tmp_path):
        journal = DiagnosisJournal(str(tmp_path / "j.journal"), FP)
        journal.record("minimize", "k", True)
        writes = journal.writes
        journal.record("minimize", "k", True)
        assert journal.writes == writes
        journal.close()

    def test_sequence_numbers_continue_after_resume(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal = DiagnosisJournal(path, FP)
        journal.phase("query")
        journal.close()
        resumed = DiagnosisJournal(path, FP, resume=True)
        resumed.phase("rounds")
        resumed.close()
        seqs = [entry["seq"] for entry in _entries(path)]
        assert seqs == sorted(seqs) == list(range(len(seqs)))


class TestCrashSafety:
    def test_torn_tail_is_discarded(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal = DiagnosisJournal(path, FP)
        journal.record("minimize", "good-verdict", True)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('deadbeef {"seq": 99, "type": "verdict", "ki')

        resumed = DiagnosisJournal(path, FP, resume=True)
        assert resumed.lookup("minimize", "good-verdict") is True
        resumed.record("minimize", "after-crash", False)
        resumed.close()
        # The torn line is gone from disk; every surviving line verifies.
        kinds = [entry["type"] for entry in _entries(path)]
        assert kinds == ["start", "verdict", "verdict"]

    def test_corrupt_interior_line_truncates_the_rest(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal = DiagnosisJournal(path, FP)
        journal.record("minimize", "kept", True)
        journal.record("minimize", "lost", False)
        journal.close()
        lines = open(path, encoding="utf-8").read().splitlines(keepends=True)
        lines[2] = "00000000 " + lines[2].split(" ", 1)[1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)

        resumed = DiagnosisJournal(path, FP, resume=True)
        assert resumed.lookup("minimize", "kept") is True
        assert resumed.lookup("minimize", "lost") is None
        resumed.close()

    def test_headerless_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "j.journal")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage that is not a journal\n")
        journal = DiagnosisJournal(path, FP, resume=True)
        assert not journal.resumed
        journal.close()
        assert _entries(path)[0]["type"] == "start"


class TestIdentity:
    def test_fingerprint_mismatch_is_a_typed_error(self, tmp_path):
        path = str(tmp_path / "j.journal")
        DiagnosisJournal(path, FP).close()
        other = dict(FP, bad_log="ccc")
        with pytest.raises(JournalError, match="bad_log"):
            DiagnosisJournal(path, other, resume=True)

    def test_schema_mismatch_is_a_typed_error(self, tmp_path):
        path = str(tmp_path / "j.journal")
        DiagnosisJournal(path, FP).close()
        text = open(path, encoding="utf-8").read()
        doctored = verify_line(text.rstrip("\n"))
        entry = json.loads(doctored)
        entry["schema"] = SCHEMA_VERSION + 1
        from repro.resilience.integrity import checksum_line

        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                checksum_line(json.dumps(entry, sort_keys=True,
                                         separators=(",", ":"))) + "\n"
            )
        with pytest.raises(JournalError, match="schema"):
            DiagnosisJournal(path, FP, resume=True)

    def test_without_resume_an_existing_file_is_overwritten(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal = DiagnosisJournal(path, FP)
        journal.record("minimize", "old", True)
        journal.close()
        fresh = DiagnosisJournal(path, FP)  # resume=False
        assert not fresh.resumed
        assert fresh.lookup("minimize", "old") is None
        fresh.close()


class TestLifecycle:
    def test_context_manager_closes(self, tmp_path):
        with DiagnosisJournal(str(tmp_path / "j.journal"), FP) as journal:
            journal.phase("query")
        assert journal.closed

    def test_progress_line_mentions_the_last_phase(self, tmp_path):
        journal = DiagnosisJournal(str(tmp_path / "j.journal"), FP)
        journal.phase("minimize")
        journal.record("minimize", "k", True)
        text = journal.progress()
        journal.close()
        assert "minimize" in text
        assert "1 verdict(s)" in text
