"""Tests for the self-healing candidate evaluator.

Every job is a pure function of (context, index), so healing —
respawning a broken pool, recomputing a timed-out candidate inline,
hedging a straggler — must never change a result, only the counters.
"""

import multiprocessing
import time

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.faults.injector import worker_crash_decision
from repro.replay.parallel import CandidateEvaluator
from repro.resilience import ResiliencePolicy


def _double(shared, index):
    return shared * (index + 1)


def _sleep_in_worker(shared, index):
    # Slow only inside pool workers: the inline fallback (parent
    # process) returns instantly, so timeout tests stay fast.
    if multiprocessing.current_process().name != "MainProcess":
        time.sleep(shared)
    return index


def _raise_for_odd(shared, index):
    if index % 2:
        raise ValueError(f"odd index {index}")
    return index


def _crash_evaluator(workers=2, rate=1.0, seed=3, policy=None):
    plan = FaultPlan(worker_crash=rate, seed=seed)
    return CandidateEvaluator(
        workers, None, policy=policy, faults=FaultInjector(plan, "evaluator")
    )


class TestCrashDecision:
    def test_pure_function_of_seed_rate_index(self):
        first = [worker_crash_decision(7, 0.5, i) for i in range(32)]
        again = [worker_crash_decision(7, 0.5, i) for i in range(32)]
        assert first == again
        assert any(first) and not all(first)

    def test_rate_extremes(self):
        assert not any(worker_crash_decision(1, 0.0, i) for i in range(8))
        assert all(worker_crash_decision(1, 1.0, i) for i in range(8))

    def test_seed_changes_the_schedule(self):
        a = [worker_crash_decision(1, 0.5, i) for i in range(64)]
        b = [worker_crash_decision(2, 0.5, i) for i in range(64)]
        assert a != b


class TestHealing:
    def test_every_worker_crashing_still_converges(self):
        evaluator = _crash_evaluator(rate=1.0)
        results = evaluator.evaluate(_double, 10, 4)
        assert results == [("ok", 10 * (i + 1)) for i in range(4)]
        assert evaluator.pool_restarts >= 1

    def test_partial_crash_schedule_converges(self):
        evaluator = _crash_evaluator(rate=0.5, seed=11)
        results = evaluator.evaluate(_double, 3, 6)
        assert results == [("ok", 3 * (i + 1)) for i in range(6)]

    def test_restart_exhaustion_falls_back_inline(self):
        # Zero restarts allowed: the first broken pool sends every
        # unfinished candidate straight to the inline path.
        evaluator = _crash_evaluator(
            rate=1.0, policy=ResiliencePolicy(max_pool_restarts=0)
        )
        results = evaluator.evaluate(_double, 2, 3)
        assert results == [("ok", 2 * (i + 1)) for i in range(3)]
        assert evaluator.pool_restarts == 0
        assert evaluator.inline_fallbacks >= 1

    def test_healing_is_metered_in_telemetry(self):
        from repro.observability import Telemetry

        telemetry = Telemetry()
        plan = FaultPlan(worker_crash=1.0, seed=3)
        evaluator = CandidateEvaluator(
            2, telemetry, faults=FaultInjector(plan, "evaluator")
        )
        evaluator.evaluate(_double, 1, 4)
        metrics = telemetry.snapshot()["counters"]
        assert metrics.get("parallel.pool_restarts", 0) >= 1

    def test_ordinary_exceptions_are_transported_not_healed(self):
        evaluator = _crash_evaluator(rate=0.0)
        results = evaluator.evaluate(_raise_for_odd, None, 4)
        assert [status for status, _ in results] == ["ok", "err", "ok", "err"]
        assert isinstance(results[1][1], ValueError)
        assert evaluator.pool_restarts == 0


class TestTimeoutsAndHedges:
    def test_timed_out_candidate_is_recomputed_inline(self):
        evaluator = CandidateEvaluator(
            2, None, policy=ResiliencePolicy(candidate_timeout_s=0.2)
        )
        results = evaluator.evaluate(_sleep_in_worker, 30.0, 2)
        assert results == [("ok", 0), ("ok", 1)]
        assert evaluator.timeouts == 2
        assert evaluator.inline_fallbacks == 2

    def test_hedged_straggler_still_returns_one_result(self):
        evaluator = CandidateEvaluator(
            3, None, policy=ResiliencePolicy(hedge_after_s=0.05)
        )
        results = evaluator.evaluate(_sleep_in_worker, 0.4, 2)
        assert results == [("ok", 0), ("ok", 1)]
        assert evaluator.hedges >= 1

    def test_counters_view(self):
        evaluator = CandidateEvaluator(2, None)
        assert evaluator.counters() == {
            "pool_restarts": 0,
            "timeouts": 0,
            "hedges": 0,
            "inline_fallbacks": 0,
        }


class TestDeterminismUnderHealing:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_diagnosis_is_byte_identical_under_worker_crashes(self, workers):
        from repro.api import Session

        base = Session(scenario="SDN1", minimize=True).diagnose()
        crashed = Session(
            scenario="SDN1", minimize=True, workers=workers,
            faults="worker-crash=1.0,seed=3",
        ).diagnose()
        assert crashed.canonical_json() == base.canonical_json()
