"""Tests for the end-to-end diagnosis deadline."""

import pytest

from repro.api import Session
from repro.errors import DeadlineExceeded
from repro.resilience import Deadline


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestDeadline:
    def test_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.remaining() == pytest.approx(10.0)
        assert not deadline.expired
        clock.now += 9.0
        deadline.check("anywhere")  # still within budget
        clock.now += 1.5
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_check_raises_a_typed_error_with_the_phase(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.now += 2.0
        with pytest.raises(DeadlineExceeded, match="engine.run") as info:
            deadline.check("engine.run")
        assert info.value.phase == "engine.run"

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_of_normalizes_every_options_spelling(self):
        assert Deadline.of(None) is None
        existing = Deadline(5.0)
        assert Deadline.of(existing) is existing
        fresh = Deadline.of(2.5)
        assert isinstance(fresh, Deadline)
        assert fresh.seconds == 2.5

    def test_of_clamps_an_already_spent_budget_to_zero(self):
        # A queue wait can eat the whole request budget before the
        # diagnosis starts; that must arrive as "already expired", not
        # as a ValueError from the constructor.
        spent = Deadline.of(-5.0)
        assert spent.seconds == 0.0
        assert spent.expired

    def test_timeout_is_the_clamped_form_of_remaining(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.timeout() == pytest.approx(10.0)
        clock.now += 12.0  # two seconds past expiry
        assert deadline.remaining() == pytest.approx(-2.0)
        # Never hand a negative timeout to a wait/selector call.
        assert deadline.timeout() == 0.0
        assert deadline.timeout(0.25) == 0.25


class TestDiagnosisUnderDeadline:
    def test_generous_budget_leaves_the_report_untouched(self):
        base = Session(scenario="SDN1", minimize=True).diagnose()
        timed = Session(scenario="SDN1", minimize=True,
                        deadline_s=120.0).diagnose()
        assert timed.canonical_json() == base.canonical_json()
        section = timed.resilience["deadline"]
        assert section["seconds"] == 120.0
        assert not section["expired"]

    def test_zero_budget_degrades_to_a_deadline_failure(self):
        report = Session(scenario="SDN1", minimize=True,
                         deadline_s=0.0).diagnose()
        assert not report.success
        assert report.failure_category == "deadline-exceeded"
        assert report.resilience["deadline"]["expired"]

    def test_autoref_sweep_stops_early_on_expiry(self):
        result = Session(scenario="SDN1", deadline_s=0.0).autoref(limit=5)
        assert not result.found
        assert result.stopped_early

    def test_expired_budget_entering_a_candidate_wave_degrades(self):
        # Regression: a *negative* budget reaching the parallel
        # candidate evaluator used to blow up as ValueError before the
        # wave was even dispatched.  It must behave exactly like a
        # zero budget — stop the sweep, keep the partial result.
        result = Session(
            scenario="DNS", workers=2, deadline_s=-5.0
        ).autoref(limit=5)
        assert not result.found
        assert result.stopped_early
        assert result.resilience["deadline"]["expired"] is True

    def test_negative_budget_degrades_diagnose_like_zero(self):
        report = Session(scenario="SDN1", minimize=True,
                         deadline_s=-1.0).diagnose()
        assert not report.success
        assert report.failure_category == "deadline-exceeded"
        assert report.resilience["deadline"]["expired"]
