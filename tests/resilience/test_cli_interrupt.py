"""Ctrl-C and SIGTERM handling of the ``diffprov`` CLI.

An interrupted diagnosis must flush its journal, print a partial
summary (including the exact resume command), and exit with the
conventional 128+signal status — 130 for SIGINT, 143 for SIGTERM
(what process supervisors send on shutdown) — distinct from both
success (0) and argument errors (2).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_INTERRUPTED, EXIT_TERMINATED

_SRC = str(Path(__file__).parents[2] / "src")


def _spawn_held_diagnose(journal):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TEST_HOLD_PHASE"] = "minimize"
    env["REPRO_TEST_HOLD_S"] = "60"
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli",
            "diagnose", "SDN1", "--minimize", "--journal", journal,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _await_minimize_hold(proc, journal, timeout=90):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(journal) and '"name":"minimize"' in open(
            journal, encoding="utf-8", errors="replace"
        ).read():
            return
        if proc.poll() is not None:
            pytest.fail(f"CLI exited early: {proc.communicate()}")
        time.sleep(0.05)
    pytest.fail("diagnosis never reached the minimize hold")


def test_sigint_flushes_journal_and_exits_130(tmp_path):
    journal = str(tmp_path / "cli.journal")
    proc = _spawn_held_diagnose(journal)
    try:
        _await_minimize_hold(proc, journal)
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.communicate()

    assert proc.returncode == EXIT_INTERRUPTED == 130
    assert "interrupted" in stderr
    assert "journal flushed" in stderr
    # The partial summary tells the operator exactly how to continue.
    assert f"--journal {journal} --resume" in stderr
    # Everything journaled before the interrupt survives on disk.
    assert os.path.getsize(journal) > 0


def test_sigterm_flushes_journal_and_exits_143(tmp_path):
    """SIGTERM — what supervisors and ``kill`` send — unwinds exactly
    like Ctrl-C: flushed journal, resume hint, 128+15 exit status."""
    journal = str(tmp_path / "cli.journal")
    proc = _spawn_held_diagnose(journal)
    try:
        _await_minimize_hold(proc, journal)
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.communicate()

    assert proc.returncode == EXIT_TERMINATED == 143
    assert "terminated" in stderr
    assert "journal flushed" in stderr
    assert f"--journal {journal} --resume" in stderr
    assert os.path.getsize(journal) > 0


def test_interrupted_cli_run_can_be_resumed(tmp_path):
    journal = str(tmp_path / "cli.journal")
    proc = _spawn_held_diagnose(journal)
    try:
        _await_minimize_hold(proc, journal)
        proc.send_signal(signal.SIGINT)
        proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.communicate()

    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    resumed = subprocess.run(
        [
            sys.executable, "-m", "repro.cli",
            "diagnose", "SDN1", "--minimize",
            "--journal", journal, "--resume",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "root-cause change" in resumed.stdout
    assert "resumed" in resumed.stdout
