"""Shared fixtures for the test suite."""

import pytest

from repro.datalog import Engine, parse_program, parse_tuple
from repro.provenance import ProvenanceRecorder


FORWARDING_PROGRAM = """
table packet(Sw, Src, Dst) event immutable.
table flowEntry(Sw, Prio, Pfx, Port) mutable.
table packetOut(Sw, Src, Dst, Port) event.
table link(Sw, Port, Next) immutable.
table delivered(Host, Src, Dst).
table hostAt(Sw, Port, Host) immutable.

fwd packetOut(@S, Src, Dst, Port) :- packet(@S, Src, Dst),
    flowEntry(@S, Prio, Pfx, Port) argmax<Prio, prefix_len(Pfx)>,
    ip_in_prefix(Dst, Pfx) == true.
move packet(@N, Src, Dst) :- packetOut(@S, Src, Dst, Port), link(@S, Port, N).
recv delivered(@H, Src, Dst) :- packetOut(@S, Src, Dst, Port), hostAt(@S, Port, H).
"""


@pytest.fixture
def forwarding_program():
    return parse_program(FORWARDING_PROGRAM)


@pytest.fixture
def forwarding_engine(forwarding_program):
    """A two-switch forwarding engine with provenance recording."""
    recorder = ProvenanceRecorder()
    engine = Engine(forwarding_program, recorder=recorder)
    for text in (
        "link('s1', 2, 's2')",
        "flowEntry('s1', 1, 0.0.0.0/0, 9)",
        "flowEntry('s1', 5, 4.3.2.0/24, 2)",
        "flowEntry('s2', 1, 0.0.0.0/0, 3)",
        "hostAt('s2', 3, 'h1')",
    ):
        engine.insert(parse_tuple(text))
    engine.run()
    return engine
