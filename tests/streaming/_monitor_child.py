"""Subprocess body for the monitor kill-and-resume tests.

Runs one journaled monitoring pass over a scenario stream and dumps
the emitted records plus the summary as JSON.  The parent test kills
this process at a deterministic hold point (REPRO_TEST_HOLD_* — see
repro.resilience.journal) on the first run, then reruns it to resume.

Usage: python _monitor_child.py SCENARIO JOURNAL OUT [FLAPS]
"""

import json
import sys

from repro.api import Session


def main() -> int:
    scenario, journal, out = sys.argv[1:4]
    params = {"flaps": int(sys.argv[4])} if len(sys.argv) > 4 else {}
    with Session(
        scenario=scenario, journal=journal, resume=True,
        scenario_params=params,
    ) as session:
        monitor = session.monitor()
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "records": monitor.records,
                "summary": monitor.summary().to_dict(),
            },
            handle,
            sort_keys=True,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
