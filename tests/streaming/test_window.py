"""Sliding windows: GC bound, base folding, deterministic materialize."""

from repro.scenarios import ALL_SCENARIOS
from repro.streaming import Gap, StreamWindow


def _scenario(flaps=3):
    return ALL_SCENARIOS["FLAP"](flaps=flaps).setup()


def _fill(window, events):
    for event in events:
        window.push(event)
    return window


def _log_of(execution):
    return [(e.op, str(e.tuple), e.mutable) for e in execution.log.entries]


class TestGC:
    def test_peak_live_is_o_window_not_o_stream(self):
        # Doubling the stream length must leave peak memory flat: the
        # base folds config churn in place and discards expired probes.
        peaks = {}
        for flaps in (20, 40):
            scenario = _scenario(flaps=flaps)
            window = _fill(StreamWindow(scenario.program, capacity=12),
                           scenario.stream_events())
            peaks[flaps] = window.peak_live
            assert window.expired_events == len(scenario.stream) - 12
        assert peaks[20] == peaks[40]
        assert peaks[40] < len(_scenario(flaps=40).stream) / 4

    def test_event_list_never_exceeds_capacity(self):
        scenario = _scenario(flaps=10)
        window = StreamWindow(scenario.program, capacity=6)
        for event in scenario.stream_events():
            window.push(event)
            assert len(window.events) <= 6

    def test_peak_tracks_high_water_mark(self):
        scenario = _scenario()
        window = _fill(StreamWindow(scenario.program, capacity=100),
                       scenario.stream_events())
        # Nothing expired: everything the stream carried is live.
        assert window.peak_live == len(scenario.stream)
        assert window.expired_events == 0


class TestBaseFold:
    def test_final_config_state_independent_of_capacity(self):
        # Folding expired inserts/deletes into the base must preserve
        # the live configuration at the right edge exactly.
        scenario = _scenario(flaps=5)
        events = scenario.stream_events()
        reference = _fill(
            StreamWindow(scenario.program, capacity=len(events)), events
        ).materialize().graph.live_tuples("flowEntry")
        folded = _fill(
            StreamWindow(scenario.program, capacity=5), events
        ).materialize().graph.live_tuples("flowEntry")
        assert sorted(map(str, folded)) == sorted(map(str, reference))
        # The stream ends mid-down-phase: the primary route is out.
        assert str(scenario.primary_route) not in set(map(str, folded))

    def test_expired_probes_are_collected(self):
        scenario = _scenario(flaps=5)
        events = scenario.stream_events()
        window = _fill(StreamWindow(scenario.program, capacity=4), events)
        materialized = window.materialize()
        in_window_probes = [e for e in window.events if e.kind == "probe"]
        logged_packets = [
            entry for entry in materialized.log.entries
            if entry.tuple is not None and entry.tuple.table == "packet"
        ]
        assert len(logged_packets) == len(in_window_probes)
        assert len(in_window_probes) < len(
            [e for e in events if e.kind == "probe"]
        )


class TestMaterialize:
    def test_same_window_materializes_identically(self):
        scenario = _scenario()
        window = _fill(StreamWindow(scenario.program, capacity=8),
                       scenario.stream_events())
        assert _log_of(window.materialize()) == _log_of(window.materialize())

    def test_base_inserted_before_events(self):
        scenario = _scenario()
        window = _fill(StreamWindow(scenario.program, capacity=8),
                       scenario.stream_events())
        log = _log_of(window.materialize())
        event_strs = [str(e.tuple) for e in window.events]
        assert [item[1] for item in log[-len(event_strs):]] == event_strs

    def test_span(self):
        scenario = _scenario()
        events = scenario.stream_events()
        window = _fill(StreamWindow(scenario.program, capacity=8), events)
        assert window.span() == (events[-8].seq, events[-1].seq)
        assert StreamWindow(scenario.program).span() is None


class TestGaps:
    def test_gap_in_window_degrades(self):
        scenario = _scenario()
        events = scenario.stream_events()
        window = StreamWindow(scenario.program, capacity=50)
        for event in events[:10]:
            window.push(event)
        window.push(Gap(10, 11))
        for event in events[12:]:
            window.push(event)
        assert window.gapped
        assert window.unknown_spans() == ["gap(seq=10..11)"]
        assert not window.base_suspect

    def test_expired_gap_taints_base_forever(self):
        scenario = _scenario(flaps=10)
        events = scenario.stream_events()
        window = StreamWindow(scenario.program, capacity=6)
        for event in events[:10]:
            window.push(event)
        window.push(Gap(10, 11))
        for event in events[12:]:
            window.push(event)
        # The gap slid out of the window long ago without resolution:
        # a config change may have been lost, so the base is suspect.
        assert window.base_suspect
        assert window.gapped
        assert window.unknown_spans() == ["base-state(unresolved gap expired)"]
