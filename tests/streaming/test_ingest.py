"""The ingestion front-end: dedup, reorder buffer, watermark, gaps."""

import pytest

from repro.errors import ReproError
from repro.scenarios import ALL_SCENARIOS
from repro.streaming import Gap, Ingestor, StreamEvent, encode_event
from repro.streaming.events import iter_lines


def _events(flaps=3):
    return ALL_SCENARIOS["FLAP"](flaps=flaps).stream_events()


def _ingest_all(ingestor, events):
    out = []
    for event in events:
        out.extend(ingestor.push(event))
    out.extend(ingestor.flush())
    return out


class TestInOrder:
    def test_clean_stream_passes_through(self):
        events = _events()
        ingestor = Ingestor()
        assert _ingest_all(ingestor, events) == events
        stats = ingestor.stats
        assert stats.delivered == len(events)
        assert stats.duplicates == stats.corrupt == stats.gaps == 0
        assert ingestor.watermark == len(events)

    def test_wire_lines_pass_through(self):
        events = _events()
        ingestor = Ingestor()
        out = []
        for line in iter_lines(events):
            out.extend(ingestor.push_line(line))
        out.extend(ingestor.flush())
        assert out == events


class TestDedup:
    def test_duplicates_absorbed_after_delivery(self):
        events = _events()
        ingestor = Ingestor()
        out = []
        for event in events:
            out.extend(ingestor.push(event))
            out.extend(ingestor.push(event))  # transport echoed everything
        out.extend(ingestor.flush())
        assert out == events
        assert ingestor.stats.duplicates == len(events)

    def test_duplicates_absorbed_while_buffered(self):
        events = _events()
        ingestor = Ingestor(lateness=8)
        # Event 1 arrives early, twice; then 0 unlocks both in order.
        assert ingestor.push(events[1]) == []
        assert ingestor.push(events[1]) == []
        assert ingestor.push(events[0]) == [events[0], events[1]]
        assert ingestor.stats.duplicates == 1


class TestReorder:
    def test_reordering_within_lateness_is_invisible(self):
        events = _events()
        scrambled = list(events)
        # Swap adjacent pairs: displacement 1, far under the bound.
        for index in range(0, len(scrambled) - 1, 2):
            scrambled[index], scrambled[index + 1] = (
                scrambled[index + 1], scrambled[index],
            )
        ingestor = Ingestor(lateness=4)
        assert _ingest_all(ingestor, scrambled) == events
        assert ingestor.stats.gaps == 0
        assert ingestor.stats.reordered > 0


class TestGaps:
    def test_loss_beyond_lateness_becomes_a_gap(self):
        events = _events()
        lossy = [event for event in events if event.seq != 5]
        ingestor = Ingestor(lateness=3)
        out = _ingest_all(ingestor, lossy)
        gaps = [item for item in out if isinstance(item, Gap)]
        assert gaps == [Gap(5, 5)]
        assert [e for e in out if isinstance(e, StreamEvent)] == lossy
        assert ingestor.stats.lost == 1

    def test_gap_emitted_as_soon_as_lateness_exceeded(self):
        events = _events()
        lossy = [event for event in events if event.seq != 5]
        ingestor = Ingestor(lateness=3)
        out = []
        emitted_at = None
        for event in lossy:
            for item in ingestor.push(event):
                if isinstance(item, Gap) and emitted_at is None:
                    emitted_at = event.seq
                out.append(item)
        # The gap surfaced when the buffer stretched `lateness` past the
        # watermark — not at flush time.
        assert emitted_at == 5 + 3

    def test_trailing_loss_surfaces_at_flush(self):
        events = _events()
        lossy = events[:-3] + [events[-1]]  # two events torn off the tail
        ingestor = Ingestor(lateness=8)
        out = _ingest_all(ingestor, lossy)
        gaps = [item for item in out if isinstance(item, Gap)]
        assert gaps == [Gap(events[-3].seq, events[-2].seq)]

    def test_multiple_gaps(self):
        events = _events()
        lossy = [e for e in events if e.seq not in (4, 5, 11)]
        ingestor = Ingestor(lateness=2)
        out = _ingest_all(ingestor, lossy)
        gaps = [item for item in out if isinstance(item, Gap)]
        assert gaps == [Gap(4, 5), Gap(11, 11)]
        assert ingestor.stats.lost == 3


class TestCorruptLines:
    def test_corrupt_lines_counted_not_raised(self):
        events = _events()
        ingestor = Ingestor(lateness=50)
        out = []
        for event in events:
            line = encode_event(event)
            if event.seq == 3:
                line = line[:-4] + "zzzz"  # bit rot
            out.extend(ingestor.push_line(line))
        out.extend(ingestor.flush())
        assert ingestor.stats.corrupt == 1
        # The corrupt line *is* a lost event: it surfaces as a gap.
        gaps = [item for item in out if isinstance(item, Gap)]
        assert gaps == [Gap(3, 3)]


class TestValidation:
    def test_lateness_must_be_positive(self):
        with pytest.raises(ReproError):
            Ingestor(lateness=0)
