"""The FLAP-S acceptance run: detection, fidelity, and backpressure.

The hard guarantees (ISSUE 9): over a long seeded flapping stream the
monitor detects every down-phase with zero false positives, and each
online diagnosis is byte-identical (``canonical_json``) to an offline
``Session.diagnose`` of the same window.
"""

import json

import pytest

from repro.api import Session
from repro.datalog.parser import parse_tuple
from repro.scenarios import ALL_SCENARIOS
from repro.streaming import (
    Ingestor,
    QualityDetector,
    ScenarioStreamSource,
    StreamMonitor,
    StreamWindow,
    observed_event,
)

FLAPS = 200


@pytest.fixture(scope="module")
def flap_s():
    return ALL_SCENARIOS["FLAP-S"](flaps=FLAPS).setup()


@pytest.fixture(scope="module")
def monitor(flap_s):
    with Session("FLAP-S", scenario_params={"flaps": FLAPS}) as session:
        yield session.monitor()


def _down_seqs(scenario):
    seqs = set()
    for phase in scenario.down_phases():
        seqs.update(range(phase["first_seq"], phase["last_seq"] + 1))
    return seqs


class TestDetection:
    def test_every_down_phase_is_detected(self, flap_s, monitor):
        # Records snapshot probe_seqs at diagnosis time; coverage is
        # judged on the detector's fully extended incidents.
        flagged = {
            seq for incident in monitor.detector.incidents
            for seq in incident.probe_seqs
        }
        for phase in flap_s.down_phases():
            phase_seqs = set(
                range(phase["first_seq"], phase["last_seq"] + 1)
            )
            assert phase_seqs & flagged, (
                f"down-phase {phase} produced no detection"
            )
        # In fact every down probe was flagged, and each incident
        # produced exactly one record.
        assert flagged == _down_seqs(flap_s)
        assert len(monitor.records) == len(monitor.detector.incidents)

    def test_zero_false_positives(self, flap_s, monitor):
        down = _down_seqs(flap_s)
        for incident in monitor.detector.incidents:
            assert set(incident.probe_seqs) <= down, (
                f"up-phase probe flagged in {incident.key}"
            )

    def test_every_record_is_a_confirmed_diagnosis(self, monitor):
        # Clean stream, no backpressure: nothing shed, nothing degraded,
        # every record carries a successful DiffProv report that pins
        # the flapping route.
        assert len(monitor.records) == FLAPS
        for record in monitor.records:
            assert record["kind"] == "diagnosis"
            assert record["confidence"] == "confirmed"
            assert record["unknown"] == []
            assert record["reference"] is not None
            assert record["report"]["success"] is True
            assert record["report"]["changes"]
            assert any(
                "flowEntry" in change["change"]
                for change in record["report"]["changes"]
            )
        summary = monitor.summary()
        assert summary.shed == 0
        assert summary.degraded == 0
        assert summary.incidents == FLAPS
        assert summary.ingest["gaps"] == 0

    def test_window_stays_bounded_over_the_long_run(self, flap_s, monitor):
        summary = monitor.summary()
        assert summary.watermark == len(flap_s.stream)
        # Peak live state is O(window), not O(stream): ~1200 events
        # flowed through, never more than base + capacity live at once.
        assert summary.peak_live < 60
        assert summary.expired_events > len(flap_s.stream) - 60

    def test_records_are_json_serializable(self, monitor):
        for record in monitor.records:
            json.dumps(record, sort_keys=True)


class TestOfflineEquivalence:
    def test_each_diagnosis_matches_offline_session_of_same_window(
        self, flap_s, monitor
    ):
        """Rebuild each detection's window offline; reports must match."""
        by_incident = {r["incident"]: r for r in monitor.records}
        checked = 0
        ingestor = Ingestor(lateness=8)
        window = StreamWindow(flap_s.program, capacity=24)
        detector = QualityDetector()
        for event in flap_s.stream_events():
            for delivery in ingestor.push(event):
                window.push(delivery)
                if delivery.kind != "probe":
                    continue
                incident = detector.observe(delivery)
                if incident is None:
                    continue
                record = by_incident[incident.key]
                assert record["window"] == list(window.span())
                execution = window.materialize()
                with Session(
                    program=flap_s.program,
                    good=execution,
                    bad=execution,
                    good_event=parse_tuple(record["reference"]),
                    bad_event=observed_event(delivery),
                ) as offline:
                    report = offline.diagnose()
                online = json.dumps(
                    record["report"], indent=2, sort_keys=True
                )
                assert online == report.canonical_json(), (
                    f"online/offline mismatch for {incident.key}"
                )
                checked += 1
        assert checked == len(monitor.records)


class TestBackpressure:
    def test_overflow_sheds_oldest_as_typed_records(self):
        # Defer all diagnosis to the final drain: with 8 incidents and
        # room for 2, the 6 oldest are shed — as records, not silently.
        source = ScenarioStreamSource.for_name("FLAP-S", flaps=8)
        monitor = StreamMonitor(
            source, max_pending=2, diagnose_every=10**9
        )
        records = monitor.run()
        shed = [r for r in records if r["kind"] == "shed"]
        diagnosed = [r for r in records if r["kind"] == "diagnosis"]
        assert len(shed) == 6
        assert len(diagnosed) == 2
        assert all(r["reason"] == "backpressure" for r in shed)
        assert monitor.summary().shed == 6
        # Shedding is FIFO: what is dropped is the *oldest* detection.
        shed_first = [min(r["probe_seqs"]) for r in shed]
        kept_first = [min(r["probe_seqs"]) for r in diagnosed]
        assert max(shed_first) < min(kept_first)

    def test_paced_monitor_emits_same_diagnoses(self):
        source = ScenarioStreamSource.for_name("FLAP-S", flaps=10)
        prompt = StreamMonitor(source, diagnose_every=1).run()
        paced = StreamMonitor(
            ScenarioStreamSource.for_name("FLAP-S", flaps=10),
            diagnose_every=7,
            max_pending=64,
        ).run()
        # Pacing defers work but must not change what is concluded:
        # same incidents, same root causes.
        assert [r["incident"] for r in paced] == [
            r["incident"] for r in prompt
        ]
        assert [r["report"]["changes"] for r in paced] == [
            r["report"]["changes"] for r in prompt
        ]
