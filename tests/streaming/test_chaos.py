"""Stream-fault chaos: the monitor degrades, it never crashes.

Seeded transport faults (``event-drop``/``event-dup``/``event-reorder``/
``clock-skew`` in :class:`repro.FaultPlan`) are applied to the FLAP-S
feed.  Absorbable faults — duplicates, reordering within the lateness
bound, skewed clocks — must leave the emitted records byte-identical
to a clean run; real loss must surface as reduced-confidence records
naming the unknown spans, not as an exception.
"""

import json

import pytest

from repro.faults import FaultPlan
from repro.streaming import ScenarioStreamSource, StreamMonitor

FLAPS = 12


def _run(spec=None, flaps=FLAPS, **knobs):
    plan = FaultPlan.parse(spec) if spec else None
    source = ScenarioStreamSource.for_name("FLAP-S", faults=plan, flaps=flaps)
    monitor = StreamMonitor(source, **knobs)
    monitor.run()
    return monitor


def _canon(records):
    return json.dumps(records, sort_keys=True)


@pytest.fixture(scope="module")
def clean():
    return _run()


class TestAbsorbableFaults:
    def test_duplicates_are_invisible(self, clean):
        chaotic = _run("event-dup=0.3,seed=5")
        assert chaotic.ingestor.stats.duplicates > 0
        assert _canon(chaotic.records) == _canon(clean.records)

    def test_reordering_within_lateness_is_invisible(self, clean):
        # The perturber displaces events by at most MAX_DISPLACEMENT=3;
        # the default lateness bound (8) absorbs that entirely.
        chaotic = _run("event-reorder=0.5,seed=5")
        assert chaotic.ingestor.stats.reordered > 0
        assert chaotic.ingestor.stats.gaps == 0
        assert _canon(chaotic.records) == _canon(clean.records)

    def test_clock_skew_is_invisible(self, clean):
        # Ordering is by sequence number and latency comes from probe
        # outcomes, so skewed timestamps change nothing downstream.
        chaotic = _run("clock-skew=1.0,seed=5")
        assert _canon(chaotic.records) == _canon(clean.records)


class TestLoss:
    def test_gaps_degrade_confidence_instead_of_crashing(self):
        chaotic = _run("event-drop=0.08,seed=3")
        stats = chaotic.ingestor.stats
        assert stats.gaps > 0  # the seed really did lose events
        uncertain = [
            r for r in chaotic.records
            if r["kind"] == "diagnosis" and r["confidence"] == "uncertain"
        ]
        assert uncertain, "no record degraded despite gaps"
        for record in uncertain:
            assert record["unknown"], "uncertain record names no unknowns"
            for span in record["unknown"]:
                assert span.startswith(("gap(seq=", "base-state("))
        # Confidence is typed, never invented.
        assert {r["confidence"] for r in chaotic.records} <= {
            "confirmed", "uncertain",
        }


class TestNeverCrashes:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_combined_fault_matrix(self, seed):
        monitor = _run(
            "event-drop=0.05,event-dup=0.1,event-reorder=0.2,"
            f"clock-skew=0.5,seed={seed}",
            flaps=10,
        )
        summary = monitor.summary()
        # Whatever the transport did, the monitor finished the stream,
        # settled every sequence number, and emitted well-formed records.
        assert summary.watermark > 0
        stats = monitor.ingestor.stats
        assert stats.delivered + stats.lost == summary.watermark
        for record in monitor.records:
            assert record["kind"] in ("diagnosis", "shed")
            json.dumps(record, sort_keys=True)

    def test_total_loss_of_a_window_still_terminates(self):
        monitor = _run("event-drop=0.6,seed=9", flaps=8)
        assert monitor.summary().watermark > 0
