"""SIGKILL mid-stream, resume, byte-identical record sequence.

The monitor journals every record write-ahead; a resumed monitor over
the same replayable stream re-emits the already-diagnosed records from
the journal (their replays are skipped) and continues fresh — and the
full sequence must be byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Session

_CHILD = str(Path(__file__).with_name("_monitor_child.py"))
_SRC = str(Path(__file__).parents[2] / "src")

FLAPS = 12
HOLD_AFTER = 3


def _child_env(**holds):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update({key: str(value) for key, value in holds.items()})
    return env


def _child_argv(journal, out):
    return [sys.executable, _CHILD, "FLAP-S", journal, out, str(FLAPS)]


def _canon(records):
    return json.dumps(records, sort_keys=True)


@pytest.fixture(scope="module")
def baseline():
    with Session("FLAP-S", scenario_params={"flaps": FLAPS}) as session:
        return session.monitor().records


def _kill_once_held(journal, out):
    """SIGKILL the child once HOLD_AFTER records are durably journaled."""
    proc = subprocess.Popen(
        _child_argv(journal, out),
        env=_child_env(
            REPRO_TEST_HOLD_S="60",
            REPRO_TEST_HOLD_AFTER_VERDICTS=HOLD_AFTER,
        ),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 90
        while time.monotonic() < deadline:
            # Count record entries only — the start entry's fingerprint
            # also says "kind":"monitor", so match on the entry type.
            journaled = 0
            if os.path.exists(journal):
                journaled = open(
                    journal, encoding="utf-8", errors="replace"
                ).read().count('"type":"verdict"')
            if journaled >= HOLD_AFTER:
                break
            if proc.poll() is not None:
                pytest.fail(
                    f"child exited (rc={proc.returncode}) before "
                    f"{HOLD_AFTER} records were journaled"
                )
            time.sleep(0.05)
        else:
            pytest.fail("hold point never reached")
        # The hold parks the process right after the Nth record was
        # fsync'd: SIGKILL lands at a deterministic point of the run.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.wait(timeout=30)
    assert not os.path.exists(out), "killed child must not have finished"


def test_sigkill_then_resume_re_emits_identical_records(tmp_path, baseline):
    journal = str(tmp_path / "monitor.journal")
    out = str(tmp_path / "records.json")

    _kill_once_held(journal, out)

    resumed = subprocess.run(
        _child_argv(journal, out),
        env=_child_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(open(out, encoding="utf-8").read())
    assert _canon(payload["records"]) == _canon(baseline)
    # The already-diagnosed records came from the journal, not replays.
    assert payload["summary"]["resumed_records"] == HOLD_AFTER
    assert payload["summary"]["diagnoses"] == FLAPS - HOLD_AFTER


def test_uninterrupted_journaled_run_matches_baseline(tmp_path, baseline):
    journal = str(tmp_path / "monitor.journal")
    out = str(tmp_path / "records.json")
    result = subprocess.run(
        _child_argv(journal, out),
        env=_child_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    payload = json.loads(open(out, encoding="utf-8").read())
    assert _canon(payload["records"]) == _canon(baseline)
    assert payload["summary"]["resumed_records"] == 0


def test_resume_under_different_transport_noise(tmp_path, baseline):
    """A resumed monitor may see a differently perturbed feed.

    The journal fingerprint binds the *unperturbed* stream, so a
    resume whose transport reorders/duplicates differently still
    matches — and (within the lateness bound) still re-emits the same
    records.
    """
    journal = str(tmp_path / "monitor.journal")
    out = str(tmp_path / "records.json")

    _kill_once_held(journal, out)

    with Session(
        "FLAP-S",
        scenario_params={"flaps": FLAPS},
        faults="event-dup=0.2,event-reorder=0.3,seed=7",
        journal=journal,
        resume=True,
    ) as session:
        monitor = session.monitor()
    assert _canon(monitor.records) == _canon(baseline)
    assert monitor.resumed_records == HOLD_AFTER
