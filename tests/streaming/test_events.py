"""Wire format: checksummed NDJSON round-trips, corruption by value."""

import pytest

from repro.errors import ReproError
from repro.scenarios import ALL_SCENARIOS
from repro.streaming import (
    Gap,
    StreamEvent,
    decode_line,
    dump_events,
    encode_event,
    load_events,
)


def _stream(flaps=3):
    return ALL_SCENARIOS["FLAP"](flaps=flaps).stream_events()


class TestRoundTrip:
    def test_every_flap_event_round_trips(self):
        for event in _stream():
            assert decode_line(encode_event(event)) == event

    def test_sequence_numbers_are_dense_from_zero(self):
        events = _stream()
        assert [event.seq for event in events] == list(range(len(events)))

    def test_dump_and_load(self, tmp_path):
        events = _stream()
        path = str(tmp_path / "stream.ndjson")
        assert dump_events(events, path) == len(events)
        assert load_events(path) == events

    def test_probe_events_carry_outcomes(self):
        probes = [e for e in _stream() if e.kind == "probe"]
        assert probes
        for probe in probes:
            assert probe.ok in (True, False)
            assert probe.outcome["host"] in ("service", "sorry")
            assert probe.outcome["latency_ms"] > 0
        assert any(p.ok for p in probes) and any(not p.ok for p in probes)

    def test_non_probe_events_have_no_outcome(self):
        for event in _stream():
            if event.kind != "probe":
                assert event.outcome is None and event.ok is None


class TestCorruption:
    def test_bit_flip_is_reported_by_value(self):
        line = encode_event(_stream()[0])
        flipped = line[:-1] + ("x" if line[-1] != "x" else "y")
        assert decode_line(flipped) is None

    def test_torn_line_is_reported_by_value(self):
        line = encode_event(_stream()[0])
        assert decode_line(line[: len(line) // 2]) is None

    def test_garbage_is_reported_by_value(self):
        assert decode_line("deadbeef {not json}") is None
        assert decode_line("") is None

    def test_load_drops_torn_tail(self, tmp_path):
        events = _stream()
        path = str(tmp_path / "stream.ndjson")
        dump_events(events, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(encode_event(events[0])[:20])  # torn final write
        assert load_events(path) == events

    def test_unknown_kind_rejected_at_construction(self):
        event = _stream()[0]
        with pytest.raises(ReproError):
            StreamEvent(0, 0.0, "mystery", event.tuple)


class TestGap:
    def test_span_accounting(self):
        gap = Gap(4, 7)
        assert gap.lost == 4
        assert gap.describe() == "gap(seq=4..7)"
        assert gap == Gap(4, 7) and gap != Gap(4, 8)
