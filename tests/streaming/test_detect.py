"""Quality scoring and incident detection over the probe feed."""

from repro.scenarios import ALL_SCENARIOS
from repro.streaming import QualityDetector, quality_score
from repro.streaming.events import StreamEvent


def _scenario(flaps=3, **params):
    return ALL_SCENARIOS["FLAP"](flaps=flaps, **params).setup()


def _probe(seq, ok=True, latency=10.0, host="service"):
    base = _scenario().stream_events()
    template = next(e for e in base if e.kind == "probe")
    return StreamEvent(
        seq, seq * 0.01, "probe", template.tuple, mutable=False,
        outcome={"ok": ok, "host": host, "latency_ms": latency},
    )


class TestQualityScore:
    def test_flap_stream_scores(self):
        probes = [e for e in _scenario().stream_events() if e.kind == "probe"]
        score = quality_score(probes)
        assert score.probes == len(probes)
        assert score.successes == sum(1 for p in probes if p.ok)
        assert 0.0 < score.success_rate < 1.0
        # Down-phase probes are much slower, so p95 >> p50.
        assert score.latency_p95 > score.latency_p50
        assert set(score.to_dict()) == {
            "probes", "successes", "success_rate", "latency_p50",
            "latency_p95",
        }

    def test_empty_window_has_no_score(self):
        assert quality_score([]) is None


class TestIncidentGrouping:
    def test_each_down_phase_opens_exactly_one_incident(self):
        scenario = _scenario(flaps=6)
        detector = QualityDetector()
        for event in scenario.stream_events():
            detector.observe(event)
        down_phases = scenario.down_phases()
        # The final 1-probe down-phase follows the last flap's without a
        # healthy probe between them, so those two merge: N incidents.
        assert len(detector.incidents) == len(down_phases) - 1
        # Every down-phase probe landed in some incident; no up-phase
        # probe did (zero false positives on the seeded stream).
        flagged = {seq for i in detector.incidents for seq in i.probe_seqs}
        down_seqs = set()
        for phase in down_phases:
            for seq in range(phase["first_seq"], phase["last_seq"] + 1):
                down_seqs.add(seq)
        assert flagged == down_seqs
        assert all(i.reasons == ["unhealthy"] for i in detector.incidents)

    def test_healthy_probe_closes_the_incident(self):
        detector = QualityDetector()
        assert detector.observe(_probe(0)) is None
        opened = detector.observe(_probe(1, ok=False))
        assert opened is not None and opened.key == "incident-seq1"
        assert detector.observe(_probe(2, ok=False)) is None  # extends
        assert detector.observe(_probe(3)) is None  # closes
        reopened = detector.observe(_probe(4, ok=False))
        assert reopened is not None and reopened.key == "incident-seq4"
        assert opened.probe_seqs == [1, 2]

    def test_non_probe_events_are_ignored(self):
        detector = QualityDetector()
        setup = next(
            e for e in _scenario().stream_events() if e.kind == "setup"
        )
        assert detector.observe(setup) is None
        assert detector.incidents == []


class TestLatencyOutlier:
    def test_slow_probe_flags_after_baseline_established(self):
        detector = QualityDetector(latency_factor=3.0, min_baseline=3)
        for seq in range(3):
            assert detector.observe(_probe(seq, latency=10.0)) is None
        slow = detector.observe(_probe(3, latency=40.0))
        assert slow is not None
        assert slow.reasons == ["latency-outlier"]

    def test_no_flag_before_baseline(self):
        detector = QualityDetector(min_baseline=3)
        assert detector.observe(_probe(0, latency=500.0)) is None
        assert detector.incidents == []

    def test_moderate_latency_stays_healthy(self):
        detector = QualityDetector(latency_factor=3.0, min_baseline=3)
        for seq in range(5):
            assert detector.observe(_probe(seq, latency=10.0)) is None
        assert detector.observe(_probe(5, latency=25.0)) is None
