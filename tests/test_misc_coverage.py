"""Remaining edge paths: parser errors, controller corners, distributed
errors, execution modes."""

import os

import pytest

from repro.datalog.parser import parse_program, parse_tuple
from repro.errors import ParseError, ReproError


class TestParserErrors:
    def test_location_on_second_arg_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                """
                table a(X, Y).
                table b(X, Y).
                r1 a(X, @Y) :- b(X, @Y).
                """
            )

    def test_unterminated_rule(self):
        with pytest.raises(ParseError):
            parse_program("table a(X).\nr1 a(X) :- ")

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("table a(X)")

    def test_argmax_without_keys(self):
        with pytest.raises(ParseError):
            parse_program(
                """
                table a(X).
                table b(X).
                r1 a(X) :- b(X) argmax<>.
                """
            )

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("table a(X). ??")

    def test_rule_body_condition_without_tables(self):
        # A call on an undeclared name is treated as a condition, which
        # then fails the safety check (unbound variables).
        with pytest.raises(Exception):
            parse_program("table a(X).\nr1 a(X) :- mystery(X).")


class TestControllerCorners:
    def test_policy_rejects_bad_prefix(self):
        from repro.sdn.declarative_controller import policy

        with pytest.raises(Exception):
            policy("p", 1, "not-a-prefix", "0.0.0.0/0", "h")

    def test_path_controller_unreachable_host(self):
        from repro.sdn.controller import Controller, PolicyRule
        from repro.sdn.topology import Topology

        topo = Topology("t")
        topo.add_switch("a")
        topo.add_host("h", "10.0.0.1")
        # h is not linked to anything.
        with pytest.raises(Exception):
            Controller(topo).entries_for(PolicyRule("p", "h"), ingress="a")


class TestDistributedErrors:
    def test_query_unknown_event(self):
        from repro.provenance.distributed import PartitionedProvenance
        from repro.provenance.graph import ProvenanceGraph

        partitioned = PartitionedProvenance(ProvenanceGraph())
        with pytest.raises(ReproError):
            partitioned.query(parse_tuple("ghost(1)"))

    def test_stats_cleared_between_queries(self):
        from repro.provenance.distributed import PartitionedProvenance
        from repro.scenarios.dns import DNSStaleReplica

        scenario = DNSStaleReplica(background_queries=3).setup()
        partitioned = PartitionedProvenance(scenario.good_execution.graph)
        _, first = partitioned.query(scenario.good_event)
        _, second = partitioned.query(scenario.good_event)
        assert first.vertices_fetched == second.vertices_fetched


class TestExecutionModes:
    def test_runtime_mode_barrier(self):
        from repro.mapreduce import declarative
        from repro.mapreduce.wordcount import CORRECT_MAPPER, mapper_checksum
        from repro.replay import Execution

        program = declarative.mapreduce_program()
        execution = Execution(program, mode="runtime")
        execution.insert(declarative.job_config_tuple("mapreduce.job.reduces", 1))
        execution.insert(
            declarative.mapper_code(CORRECT_MAPPER, mapper_checksum(CORRECT_MAPPER))
        )
        execution.insert(declarative.word_occurrence("/f", 0, 0, "hello"))
        execution.insert(declarative.job_run("j", "/f"))
        execution.barrier()
        assert execution.engine.exists(
            declarative.wordcount_output(0, "j", "hello", 1)
        )
        # Runtime mode recorded the barrier's aggregate derivation live.
        assert any(
            d.rule_name == "reduce"
            for d in execution.graph.derivations.values()
        )

    def test_replay_of_barrier_logs(self):
        from repro.mapreduce import declarative
        from repro.mapreduce.wordcount import CORRECT_MAPPER, mapper_checksum
        from repro.replay import Execution

        program = declarative.mapreduce_program()
        execution = Execution(program)
        execution.insert(declarative.job_config_tuple("mapreduce.job.reduces", 1))
        execution.insert(
            declarative.mapper_code(CORRECT_MAPPER, mapper_checksum(CORRECT_MAPPER))
        )
        execution.insert(declarative.word_occurrence("/f", 0, 0, "hello"))
        execution.insert(declarative.job_run("j", "/f"))
        execution.barrier()
        replayed = execution.replay()
        assert replayed.alive(declarative.wordcount_output(0, "j", "hello", 1))


@pytest.mark.skipif(
    not os.environ.get("STANFORD_FULL_SCALE"),
    reason="full-scale Stanford run is slow; set STANFORD_FULL_SCALE=1",
)
class TestStanfordFullScale:
    def test_full_scale_configuration_diagnoses(self):
        from repro.scenarios.stanford import StanfordForwardingError

        scenario = StanfordForwardingError(full_scale=True, background_packets=100)
        scenario.setup()
        assert scenario.config.total_entries() > 700_000
        report = scenario.diagnose()
        assert report.success
        assert report.changes[0].remove == (scenario.expected_fault,)
