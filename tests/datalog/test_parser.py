"""Tests for the NDlog parser."""

import pytest

from repro.addresses import IPv4Address, Prefix
from repro.datalog.expr import Call, Const, Var
from repro.datalog.parser import parse_expr, parse_program, parse_rule, parse_tuple
from repro.datalog.rules import AggSpec
from repro.datalog.tuples import TableKind
from repro.errors import ParseError


class TestTableDeclarations:
    def test_basic_table(self):
        program = parse_program("table foo(A, B).")
        schema = program.schema("foo")
        assert schema.fields == ("A", "B")
        assert schema.kind == TableKind.STATE
        assert schema.mutable

    def test_event_immutable(self):
        program = parse_program("table pkt(S, D) event immutable.")
        schema = program.schema("pkt")
        assert schema.kind == TableKind.EVENT
        assert not schema.mutable

    def test_unknown_modifier(self):
        with pytest.raises(ParseError):
            parse_program("table foo(A) shiny.")


class TestRules:
    def test_simple_rule(self):
        program = parse_program(
            """
            table a(X).
            table b(X).
            r1 a(X) :- b(X).
            """
        )
        rule = program.rule("r1")
        assert rule.head.table == "a"
        assert [atom.table for atom in rule.body] == ["b"]

    def test_location_specifiers(self):
        program = parse_program(
            """
            table a(N, X).
            table b(N, X).
            r1 a(@M, X) :- b(@M, X).
            """
        )
        rule = program.rule("r1")
        assert rule.head.location == "M"
        assert rule.body[0].location == "M"

    def test_assignment_and_condition(self):
        program = parse_program(
            """
            table a(X, Y).
            table b(X).
            r1 a(X, Y) :- b(X), Y := 2 * X + 1, X > 0.
            """
        )
        rule = program.rule("r1")
        assert len(rule.assignments) == 1
        assert rule.assignments[0].var == "Y"
        assert len(rule.conditions) == 1

    def test_boolean_call_condition(self):
        program = parse_program(
            """
            table a(X).
            table b(X, P).
            r1 a(X) :- b(X, P), ip_in_prefix(X, P) == true.
            """
        )
        condition = program.rule("r1").conditions[0]
        assert condition.op == "=="

    def test_argmax_selector(self):
        program = parse_program(
            """
            table out(S, P).
            table fe(S, Prio, P).
            r1 out(S, P) :- fe(S, Prio, P) argmax<Prio>.
            """
        )
        selector = program.rule("r1").body[0].selector
        assert selector is not None
        assert selector.keys == (Var("Prio"),)

    def test_aggregate_head(self):
        program = parse_program(
            """
            table wc(W, C).
            table w(W, X).
            r1 wc(W, count<*>) :- w(W, X).
            """
        )
        rule = program.rule("r1")
        assert rule.is_aggregate
        assert isinstance(rule.head.args[1], AggSpec)

    def test_sum_aggregate(self):
        program = parse_program(
            """
            table total(K, T).
            table v(K, X).
            r1 total(K, sum<X>) :- v(K, X).
            """
        )
        agg = program.rule("r1").head.args[1]
        assert agg.kind == "sum"

    def test_undeclared_table_rejected(self):
        with pytest.raises(Exception):
            parse_program("table a(X). r1 a(X) :- nope(X).")

    def test_unbound_head_variable_rejected(self):
        with pytest.raises(Exception):
            parse_program("table a(X). table b(Y). r1 a(X) :- b(Y).")

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(Exception):
            parse_program(
                """
                table a(X).
                table b(X).
                r1 a(X) :- b(X).
                r1 b(X) :- a(X).
                """
            )

    def test_comments_are_ignored(self):
        program = parse_program(
            """
            // a comment
            table a(X).  // another comment
            table b(X).
            r1 a(X) :- b(X).  // trailing
            """
        )
        assert len(program.rules) == 1


class TestLiterals:
    def test_ip_literal(self):
        assert parse_expr("1.2.3.4") == Const(IPv4Address("1.2.3.4"))

    def test_prefix_literal(self):
        assert parse_expr("4.3.2.0/24") == Const(Prefix("4.3.2.0/24"))

    def test_string_literals(self):
        assert parse_expr("'abc'") == Const("abc")
        assert parse_expr('"abc"') == Const("abc")

    def test_booleans(self):
        assert parse_expr("true") == Const(True)
        assert parse_expr("false") == Const(False)

    def test_negative_number(self):
        assert parse_expr("-5") == Const(-5)

    def test_symbolic_constant(self):
        assert parse_expr("foo") == Const("foo")


class TestParseTuple:
    def test_simple(self):
        tup = parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 8)")
        assert tup.table == "flowEntry"
        assert tup.args == ("s1", 5, Prefix("4.3.2.0/24"), 8)

    def test_location_marker_allowed(self):
        tup = parse_tuple("link(@'s1', 2, 's2')")
        assert tup.args[0] == "s1"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_tuple("a(1) b(2)")

    def test_expression_error(self):
        with pytest.raises(ParseError):
            parse_expr("1 +")
