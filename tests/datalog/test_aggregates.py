"""Tests for barrier-style aggregate evaluation."""

import pytest

from repro.datalog import Engine, parse_program, parse_tuple


PROGRAM = """
table v(K, X).
table total(K, T).
table cnt(K, C).
table lo(K, M).
table hi(K, M).
rs total(K, sum<X>) :- v(K, X).
rc cnt(K, count<*>) :- v(K, X).
rmin lo(K, min<X>) :- v(K, X).
rmax hi(K, max<X>) :- v(K, X).
"""


@pytest.fixture
def engine():
    e = Engine(parse_program(PROGRAM))
    for text in ("v('a', 1)", "v('a', 2)", "v('a', 3)", "v('b', 10)"):
        e.insert(parse_tuple(text))
    e.run()
    return e


class TestAggregates:
    def test_sum(self, engine):
        engine.fire_aggregates()
        assert engine.exists(parse_tuple("total('a', 6)"))
        assert engine.exists(parse_tuple("total('b', 10)"))

    def test_count(self, engine):
        engine.fire_aggregates()
        assert engine.exists(parse_tuple("cnt('a', 3)"))
        assert engine.exists(parse_tuple("cnt('b', 1)"))

    def test_min_max(self, engine):
        engine.fire_aggregates()
        assert engine.exists(parse_tuple("lo('a', 1)"))
        assert engine.exists(parse_tuple("hi('a', 3)"))

    def test_no_contributions_no_groups(self):
        e = Engine(parse_program(PROGRAM))
        assert e.fire_aggregates() == 0
        assert e.lookup("total") == []

    def test_aggregates_not_fired_by_run(self, engine):
        # Aggregates only evaluate at the explicit barrier.
        assert engine.lookup("total") == []

    def test_aggregate_triggers_downstream_rules(self):
        program = parse_program(
            PROGRAM + "\ntable big(K).\nrb big(K) :- total(K, T), T > 5.\n"
        )
        e = Engine(program)
        for text in ("v('a', 3)", "v('a', 4)"):
            e.insert(parse_tuple(text))
        e.run()
        e.fire_aggregates()
        assert e.exists(parse_tuple("big('a')"))

    def test_aggregate_derivation_lists_contributors(self, engine):
        derived = []
        class Recorder:
            def on_derive(self, node, derivation, time):
                derived.append(derivation)
            def __getattr__(self, name):
                return lambda *args, **kwargs: None
        engine.recorder = Recorder()
        engine.fire_aggregates()
        by_head = {d.head: d for d in derived}
        total_a = by_head[parse_tuple("total('a', 6)")]
        assert set(total_a.body) == {
            parse_tuple("v('a', 1)"),
            parse_tuple("v('a', 2)"),
            parse_tuple("v('a', 3)"),
        }

    def test_determinism(self):
        def once():
            e = Engine(parse_program(PROGRAM))
            for text in ("v('b', 10)", "v('a', 3)", "v('a', 1)", "v('a', 2)"):
                e.insert(parse_tuple(text))
            e.run()
            e.fire_aggregates()
            return e.store.all_tuples()
        assert once() == once()
