"""Tests for the IPv4 address and prefix value types."""

import pytest

from repro.addresses import IPv4Address, Prefix, ip, prefix
from repro.errors import SchemaError


class TestIPv4Address:
    def test_parse_dotted(self):
        assert IPv4Address("1.2.3.4").value == 0x01020304

    def test_from_int(self):
        assert str(IPv4Address(0x01020304)) == "1.2.3.4"

    def test_copy_constructor(self):
        original = ip("10.0.0.1")
        assert IPv4Address(original) == original

    def test_octets(self):
        assert ip("10.20.30.40").octets() == (10, 20, 30, 40)

    def test_last_octet(self):
        assert ip("1.2.3.4").last_octet() == 4

    def test_equality_and_hash(self):
        assert ip("1.2.3.4") == ip("1.2.3.4")
        assert ip("1.2.3.4") != ip("1.2.3.5")
        assert hash(ip("1.2.3.4")) == hash(ip("1.2.3.4"))

    def test_ordering(self):
        assert ip("1.2.3.4") < ip("1.2.3.5")
        assert ip("2.0.0.0") > ip("1.255.255.255")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(SchemaError):
            IPv4Address(1 << 32)

    def test_rejects_malformed_strings(self):
        for bad in ("1.2.3", "1.2.3.4.5", "a.b.c.d", "1.2.3.256"):
            with pytest.raises(SchemaError):
                IPv4Address(bad)

    def test_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            IPv4Address(3.14)


class TestPrefix:
    def test_parse_slash_notation(self):
        p = Prefix("4.3.2.0/24")
        assert p.length == 24
        assert str(p.network) == "4.3.2.0"

    def test_network_is_masked(self):
        assert Prefix("4.3.2.99/24").network == ip("4.3.2.0")

    def test_contains(self):
        p = prefix("4.3.2.0/24")
        assert p.contains(ip("4.3.2.1"))
        assert not p.contains(ip("4.3.3.1"))

    def test_slash_23_contains_both(self):
        p = prefix("4.3.2.0/23")
        assert p.contains(ip("4.3.2.1"))
        assert p.contains(ip("4.3.3.1"))

    def test_zero_length_contains_everything(self):
        p = prefix("0.0.0.0/0")
        assert p.contains(ip("255.255.255.255"))
        assert p.contains(ip("0.0.0.0"))

    def test_slash_32_is_exact(self):
        p = prefix("10.0.0.1/32")
        assert p.contains(ip("10.0.0.1"))
        assert not p.contains(ip("10.0.0.2"))

    def test_overlaps(self):
        assert prefix("4.3.2.0/23").overlaps(prefix("4.3.2.0/24"))
        assert prefix("4.3.2.0/24").overlaps(prefix("4.3.2.0/23"))
        assert not prefix("4.3.2.0/24").overlaps(prefix("4.3.3.0/24"))

    def test_subnets(self):
        low, high = prefix("4.3.2.0/23").subnets()
        assert str(low) == "4.3.2.0/24"
        assert str(high) == "4.3.3.0/24"

    def test_subnets_of_host_route_fails(self):
        with pytest.raises(SchemaError):
            prefix("1.2.3.4/32").subnets()

    def test_host(self):
        assert prefix("10.0.0.0/24").host(5) == ip("10.0.0.5")

    def test_host_out_of_range(self):
        with pytest.raises(SchemaError):
            prefix("10.0.0.0/30").host(4)

    def test_requires_length(self):
        with pytest.raises(SchemaError):
            Prefix("10.0.0.0")

    def test_rejects_bad_length(self):
        with pytest.raises(SchemaError):
            Prefix("10.0.0.0/33")

    def test_equality_and_hash(self):
        assert prefix("4.3.2.0/24") == prefix("4.3.2.7/24")
        assert prefix("4.3.2.0/24") != prefix("4.3.2.0/23")
        assert hash(prefix("4.3.2.0/24")) == hash(prefix("4.3.2.0/24"))

    def test_str_roundtrip(self):
        assert str(prefix("4.3.2.0/23")) == "4.3.2.0/23"
