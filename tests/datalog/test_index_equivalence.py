"""Backend selection must be invisible in every observable.

The evaluation backends (compiled closures over the columnar store,
the indexed interpreter, and the linear-scan reference evaluator) are
licensed by one claim: they change cost, never results.  These tests
hold all three — ``EngineConfig("compiled")``, ``("indexed")``, and
``("reference")``, each with its natural provenance mode — against each
other across the paper's scenarios and assert identical table
contents, identical provenance graphs vertex-for-vertex, identical
trees, byte-identical diagnosis reports, and equal recorder metrics.
"""

import pytest

from repro.datalog import BACKENDS, EngineConfig
from repro.observability import Telemetry
from repro.provenance.query import provenance_query
from repro.replay.replayer import replay
from repro.scenarios import ALL_SCENARIOS

# The satellite coverage set: every SDN scenario, DNS, the declarative
# MapReduce pair (the imperative MR variants use the instrumented
# runtime, which bypasses the engine join path entirely), and FLAP —
# the temporal/streaming scenario, whose log churns the same mutable
# tuple through repeated delete/insert cycles.
SCENARIOS = ["SDN1", "SDN2", "SDN3", "SDN4", "DNS", "MR1-D", "MR2-D", "FLAP"]

# compiled/annotated, indexed/lazy, reference/eager — each backend with
# its natural provenance mode (EngineConfig.coerce on a bare name).
MATRIX = sorted(BACKENDS)


def _scenario(name, **params):
    return ALL_SCENARIOS[name](**params).setup()


def _replay_matrix(scenario, execution):
    """The same log replayed under every backend, reference last."""
    return {
        backend: replay(
            scenario.program, execution.log, engine=EngineConfig.coerce(backend)
        )
        for backend in MATRIX
    }


class TestTableEquivalence:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_identical_table_contents(self, name):
        scenario = _scenario(name)
        for execution in (scenario.good_execution, scenario.bad_execution):
            results = _replay_matrix(scenario, execution)
            reference = results.pop("reference")
            for backend, result in results.items():
                for table in sorted(scenario.program.schemas):
                    assert result.engine.lookup(table) == reference.engine.lookup(
                        table
                    ), f"{name}: table {table} diverged under {backend}"


class TestGraphEquivalence:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_identical_graphs_vertex_for_vertex(self, name):
        scenario = _scenario(name)
        results = _replay_matrix(scenario, scenario.bad_execution)
        reference = results.pop("reference")
        # Touching .vertices materializes the lazy/annotated graphs;
        # the reconstruction must replay into the exact eager sequence.
        ref_vertices = reference.graph.vertices
        for backend, result in results.items():
            vertices = result.graph.vertices
            assert len(vertices) == len(ref_vertices), backend
            for mine, theirs in zip(vertices, ref_vertices):
                assert (mine.id, mine.kind, mine.node, mine.tuple, mine.time,
                        mine.end_time, mine.rule, mine.derivation_id,
                        mine.mutable) == (
                    theirs.id, theirs.kind, theirs.node, theirs.tuple,
                    theirs.time, theirs.end_time, theirs.rule,
                    theirs.derivation_id, theirs.mutable)
                assert [c.id for c in result.graph.children(mine)] == [
                    c.id for c in reference.graph.children(theirs)
                ]
            assert sorted(result.graph.derivations) == sorted(
                reference.graph.derivations
            )

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_identical_trees(self, name):
        scenario = _scenario(name)
        results = _replay_matrix(scenario, scenario.bad_execution)
        rendered = {
            backend: provenance_query(
                result.graph, scenario.bad_event, scenario.bad_time
            ).render()
            for backend, result in results.items()
        }
        assert rendered["compiled"] == rendered["reference"]
        assert rendered["indexed"] == rendered["reference"]

    def test_lazy_vertex_count_matches_before_materialization(self):
        scenario = _scenario("SDN1")
        results = _replay_matrix(scenario, scenario.bad_execution)
        # len() on the lazy graph comes from record-time counters; it
        # must agree with eager construction without materializing.
        for backend in ("compiled", "indexed"):
            assert results[backend].graph.pending
            assert len(results[backend].graph) == len(
                results["reference"].graph
            )
            assert results[backend].graph.pending


class TestMinimalProofEquivalence:
    @pytest.mark.parametrize("name", ["SDN1", "SDN3", "DNS"])
    def test_annotated_minimal_proof_matches_tree_facts(self, name):
        scenario = _scenario(name)
        result = replay(
            scenario.program, scenario.bad_execution.log, engine="compiled"
        )
        proof = result.graph.minimal_proof(scenario.bad_event)
        assert proof.tuple == scenario.bad_event
        assert proof.height == result.graph.height_of(scenario.bad_event)
        # Every leaf of the minimal proof is a base fact the reference
        # evaluator also saw inserted.
        reference = replay(
            scenario.program, scenario.bad_execution.log, engine="reference"
        )
        stack = [proof]
        while stack:
            node = stack.pop()
            if not node.children:
                assert node.rule is None
                assert reference.graph.inserts_of(node.tuple)
            stack.extend(node.children)

    def test_minimal_proof_is_deterministic(self):
        scenario = _scenario("SDN1")
        renders = []
        for _ in range(2):
            result = replay(
                scenario.program, scenario.bad_execution.log, engine="compiled"
            )
            renders.append(result.graph.minimal_proof(scenario.bad_event).render())
        assert renders[0] == renders[1]


class TestDiagnosisEquivalence:
    @pytest.mark.parametrize("name", ["SDN1", "SDN3", "DNS", "FLAP"])
    def test_reports_byte_identical_across_backends(self, name):
        reports = {
            backend: _scenario(name, engine=backend)
            .diagnose()
            .canonical_json()
            for backend in MATRIX
        }
        assert reports["compiled"] == reports["reference"]
        assert reports["indexed"] == reports["reference"]


class TestRecorderMetricsEquivalence:
    def test_all_modes_count_the_same_vertices_and_edges(self):
        scenario = _scenario("SDN1")
        log = scenario.bad_execution.log
        snapshots = {}
        for backend in MATRIX:
            telemetry = Telemetry()
            replay(scenario.program, log, telemetry=telemetry, engine=backend)
            counters = telemetry.snapshot()["counters"]
            snapshots[backend] = {
                key: value
                for key, value in counters.items()
                if key.startswith("recorder.vertices.")
                or key == "recorder.edges"
                or key.startswith("engine.rule_firings.")
            }
        assert snapshots["compiled"] == snapshots["reference"]
        assert snapshots["indexed"] == snapshots["reference"]
        assert snapshots["reference"].get("recorder.edges", 0) > 0

    def test_index_hits_and_reconstructions_are_metered(self):
        scenario = _scenario("SDN1")
        telemetry = Telemetry()
        result = replay(
            scenario.program, scenario.bad_execution.log, telemetry=telemetry
        )
        counters = telemetry.snapshot()["counters"]
        assert counters.get("engine.index.hits", 0) > 0
        assert "provenance.lazy.reconstructions" not in counters
        result.graph.vertices  # force one reconstruction
        counters = telemetry.snapshot()["counters"]
        assert counters.get("provenance.lazy.reconstructions") == 1
