"""Indexed + lazy evaluation must be invisible in every observable.

The hot-path rework (composite join indexes, tuple interning, lazy
provenance) is licensed by one claim: it changes cost, never results.
These tests hold the fast defaults against the linear-scan / eager
reference modes (``use_indexes=False`` / ``lazy=False``) across the
paper's scenarios and assert identical table contents, identical
provenance graphs vertex-for-vertex, identical trees, byte-identical
diagnosis reports, and equal recorder metrics.
"""

import pytest

from repro.observability import Telemetry
from repro.provenance.query import provenance_query
from repro.replay.replayer import replay
from repro.scenarios import ALL_SCENARIOS

# The satellite coverage set: every SDN scenario, DNS, and the
# declarative MapReduce pair (the imperative MR variants use the
# instrumented runtime, which bypasses the engine join path entirely).
SCENARIOS = ["SDN1", "SDN2", "SDN3", "SDN4", "DNS", "MR1-D", "MR2-D"]


def _scenario(name):
    return ALL_SCENARIOS[name]().setup()


def _replay_pair(scenario, execution):
    """The same log replayed fast (defaults) and in reference mode."""
    fast = replay(scenario.program, execution.log)
    reference = replay(
        scenario.program, execution.log, use_indexes=False, lazy=False
    )
    return fast, reference


class TestTableEquivalence:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_identical_table_contents(self, name):
        scenario = _scenario(name)
        for execution in (scenario.good_execution, scenario.bad_execution):
            fast, reference = _replay_pair(scenario, execution)
            for table in sorted(scenario.program.schemas):
                assert fast.engine.lookup(table) == reference.engine.lookup(
                    table
                ), f"{name}: table {table} diverged"


class TestGraphEquivalence:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_identical_graphs_vertex_for_vertex(self, name):
        scenario = _scenario(name)
        fast, reference = _replay_pair(scenario, scenario.bad_execution)
        # Touching .vertices materializes the lazy graph; the
        # reconstruction must replay into the exact eager sequence.
        fast_vertices = fast.graph.vertices
        ref_vertices = reference.graph.vertices
        assert len(fast_vertices) == len(ref_vertices)
        for mine, theirs in zip(fast_vertices, ref_vertices):
            assert (mine.id, mine.kind, mine.node, mine.tuple, mine.time,
                    mine.end_time, mine.rule, mine.derivation_id,
                    mine.mutable) == (
                theirs.id, theirs.kind, theirs.node, theirs.tuple,
                theirs.time, theirs.end_time, theirs.rule,
                theirs.derivation_id, theirs.mutable)
            assert [c.id for c in fast.graph.children(mine)] == [
                c.id for c in reference.graph.children(theirs)
            ]
        assert sorted(fast.graph.derivations) == sorted(
            reference.graph.derivations
        )

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_identical_trees(self, name):
        scenario = _scenario(name)
        fast, reference = _replay_pair(scenario, scenario.bad_execution)
        fast_tree = provenance_query(
            fast.graph, scenario.bad_event, scenario.bad_time
        )
        ref_tree = provenance_query(
            reference.graph, scenario.bad_event, scenario.bad_time
        )
        assert fast_tree.render() == ref_tree.render()

    def test_lazy_vertex_count_matches_before_materialization(self):
        scenario = _scenario("SDN1")
        fast, reference = _replay_pair(scenario, scenario.bad_execution)
        # len() on the lazy graph comes from record-time counters; it
        # must agree with eager construction without materializing.
        assert fast.graph.pending
        assert len(fast.graph) == len(reference.graph)
        assert fast.graph.pending


class TestDiagnosisEquivalence:
    @pytest.mark.parametrize("name", ["SDN1", "SDN3", "DNS"])
    def test_reports_byte_identical_to_reference_engine(self, name):
        fast = _scenario(name).diagnose().canonical_json()
        reference_scenario = _scenario(name)
        for execution in (
            reference_scenario.good_execution,
            reference_scenario.bad_execution,
        ):
            execution.use_indexes = False
            execution.lazy_provenance = False
        assert reference_scenario.diagnose().canonical_json() == fast


class TestRecorderMetricsEquivalence:
    def test_lazy_and_eager_count_the_same_vertices_and_edges(self):
        scenario = _scenario("SDN1")
        log = scenario.bad_execution.log
        snapshots = []
        for lazy in (True, False):
            telemetry = Telemetry()
            replay(scenario.program, log, telemetry=telemetry, lazy=lazy)
            counters = telemetry.snapshot()["counters"]
            snapshots.append(
                {
                    key: value
                    for key, value in counters.items()
                    if key.startswith("recorder.vertices.")
                    or key == "recorder.edges"
                }
            )
        assert snapshots[0] == snapshots[1]
        assert snapshots[0].get("recorder.edges", 0) > 0

    def test_index_hits_and_reconstructions_are_metered(self):
        scenario = _scenario("SDN1")
        telemetry = Telemetry()
        result = replay(
            scenario.program, scenario.bad_execution.log, telemetry=telemetry
        )
        counters = telemetry.snapshot()["counters"]
        assert counters.get("engine.index.hits", 0) > 0
        assert "provenance.lazy.reconstructions" not in counters
        result.graph.vertices  # force one reconstruction
        counters = telemetry.snapshot()["counters"]
        assert counters.get("provenance.lazy.reconstructions") == 1
