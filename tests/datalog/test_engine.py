"""Tests for the delta-driven evaluator."""

import pytest

from repro.datalog import Engine, parse_program, parse_tuple
from repro.datalog.tuples import Tuple
from repro.errors import SchemaError


def run(program_text, inserts, deletes=()):
    engine = Engine(parse_program(program_text))
    for text in inserts:
        engine.insert(parse_tuple(text))
    engine.run()
    for text in deletes:
        engine.delete(parse_tuple(text))
    engine.run()
    return engine


class TestBasicDerivation:
    PROGRAM = """
    table a(X).
    table b(X).
    table c(X, Y).
    r1 b(X) :- a(X).
    r2 c(X, Y) :- a(X), Y := X + 1.
    """

    def test_single_step(self):
        engine = run(self.PROGRAM, ["a(1)"])
        assert engine.exists(parse_tuple("b(1)"))

    def test_assignment(self):
        engine = run(self.PROGRAM, ["a(2)"])
        assert engine.exists(parse_tuple("c(2, 3)"))

    def test_no_spurious_tuples(self):
        engine = run(self.PROGRAM, ["a(1)"])
        assert not engine.exists(parse_tuple("b(2)"))

    def test_duplicate_insert_is_idempotent(self):
        engine = run(self.PROGRAM, ["a(1)", "a(1)"])
        assert engine.lookup("b") == [parse_tuple("b(1)")]


class TestJoins:
    PROGRAM = """
    table a(X, Y).
    table b(Y, Z).
    table c(X, Z).
    r1 c(X, Z) :- a(X, Y), b(Y, Z).
    """

    def test_join_in_either_order(self):
        first = run(self.PROGRAM, ["a(1, 2)", "b(2, 3)"])
        second = run(self.PROGRAM, ["b(2, 3)", "a(1, 2)"])
        expected = [parse_tuple("c(1, 3)")]
        assert first.lookup("c") == expected
        assert second.lookup("c") == expected

    def test_join_key_mismatch(self):
        engine = run(self.PROGRAM, ["a(1, 2)", "b(9, 3)"])
        assert engine.lookup("c") == []

    def test_multiple_matches(self):
        engine = run(self.PROGRAM, ["a(1, 2)", "b(2, 3)", "b(2, 4)"])
        assert engine.lookup("c") == [parse_tuple("c(1, 3)"), parse_tuple("c(1, 4)")]


class TestConditions:
    PROGRAM = """
    table a(X).
    table big(X).
    r1 big(X) :- a(X), X > 10.
    """

    def test_condition_filters(self):
        engine = run(self.PROGRAM, ["a(5)", "a(15)"])
        assert engine.lookup("big") == [parse_tuple("big(15)")]


class TestRecursion:
    PROGRAM = """
    table edge(X, Y).
    table reach(X, Y).
    base reach(X, Y) :- edge(X, Y).
    step reach(X, Z) :- reach(X, Y), edge(Y, Z).
    """

    def test_transitive_closure(self):
        engine = run(self.PROGRAM, ["edge(1, 2)", "edge(2, 3)", "edge(3, 4)"])
        assert engine.exists(parse_tuple("reach(1, 4)"))

    def test_cycle_terminates(self):
        engine = run(self.PROGRAM, ["edge(1, 2)", "edge(2, 1)"])
        assert engine.exists(parse_tuple("reach(1, 1)"))
        assert engine.exists(parse_tuple("reach(2, 2)"))


class TestDeletion:
    PROGRAM = """
    table a(X).
    table b(X).
    table c(X).
    r1 b(X) :- a(X).
    r2 c(X) :- b(X).
    """

    def test_cascading_underivation(self):
        engine = run(self.PROGRAM, ["a(1)"], deletes=["a(1)"])
        assert not engine.exists(parse_tuple("a(1)"))
        assert not engine.exists(parse_tuple("b(1)"))
        assert not engine.exists(parse_tuple("c(1)"))

    def test_support_counting(self):
        # b(1) is derivable from a(1) and independently inserted as base;
        # deleting a(1) must not kill it.
        engine = Engine(parse_program(self.PROGRAM))
        engine.insert(parse_tuple("a(1)"))
        engine.insert(parse_tuple("b(1)"))
        engine.run()
        engine.delete(parse_tuple("a(1)"))
        engine.run()
        assert engine.exists(parse_tuple("b(1)"))

    def test_delete_nonexistent_is_noop(self):
        engine = run(self.PROGRAM, ["a(1)"], deletes=["a(2)"])
        assert engine.exists(parse_tuple("a(1)"))


class TestEvents:
    PROGRAM = """
    table ev(X) event.
    table state(X).
    table out(X).
    r1 out(X) :- ev(X), state(X).
    """

    def test_event_triggers_against_existing_state(self):
        engine = run(self.PROGRAM, ["state(1)", "ev(1)"])
        assert engine.exists(parse_tuple("out(1)"))

    def test_event_is_not_stored(self):
        # State arriving after the event must not fire the rule: the
        # event was transient.
        engine = run(self.PROGRAM, ["ev(1)", "state(1)"])
        assert not engine.exists(parse_tuple("out(1)"))

    def test_event_derived_state_survives_state_deletion(self):
        engine = run(self.PROGRAM, ["state(1)", "ev(1)"], deletes=["state(1)"])
        # The packet was already forwarded; deleting the flow entry
        # afterwards does not un-forward it (SDN3 semantics).
        assert engine.exists(parse_tuple("out(1)"))

    def test_two_event_atoms_rejected(self):
        with pytest.raises(SchemaError):
            Engine(
                parse_program(
                    """
                    table e1(X) event.
                    table e2(X) event.
                    table out(X).
                    r1 out(X) :- e1(X), e2(X).
                    """
                )
            )

    def test_cannot_delete_event(self):
        engine = Engine(
            parse_program("table ev(X) event.\ntable s(X).\nr1 s(X) :- ev(X).")
        )
        engine.delete(parse_tuple("ev(1)"))
        with pytest.raises(SchemaError):
            engine.run()


class TestSelectors:
    PROGRAM = """
    table pkt(S, D) event.
    table fe(S, Prio, Pfx, Port).
    table out(S, D, Port) event.
    table seen(S, D, Port).
    r1 out(S, D, Port) :- pkt(S, D),
        fe(S, Prio, Pfx, Port) argmax<Prio, prefix_len(Pfx)>,
        ip_in_prefix(D, Pfx) == true.
    r2 seen(S, D, Port) :- out(S, D, Port).
    """

    def test_highest_priority_wins(self):
        engine = run(
            self.PROGRAM,
            ["fe('s', 1, 0.0.0.0/0, 9)", "fe('s', 5, 1.2.3.0/24, 2)",
             "pkt('s', 1.2.3.4)"],
        )
        assert engine.lookup("seen") == [parse_tuple("seen('s', 1.2.3.4, 2)")]

    def test_only_matching_entries_are_candidates(self):
        # The high-priority entry does not match, so the default must win
        # even though its priority is lower.
        engine = run(
            self.PROGRAM,
            ["fe('s', 1, 0.0.0.0/0, 9)", "fe('s', 5, 1.2.3.0/24, 2)",
             "pkt('s', 7.7.7.7)"],
        )
        assert engine.lookup("seen") == [parse_tuple("seen('s', 7.7.7.7, 9)")]

    def test_longest_prefix_breaks_priority_ties(self):
        engine = run(
            self.PROGRAM,
            ["fe('s', 5, 1.2.0.0/16, 8)", "fe('s', 5, 1.2.3.0/24, 2)",
             "pkt('s', 1.2.3.4)"],
        )
        assert engine.lookup("seen") == [parse_tuple("seen('s', 1.2.3.4, 2)")]

    def test_no_match_no_output(self):
        engine = run(self.PROGRAM, ["fe('s', 5, 1.2.3.0/24, 2)", "pkt('s', 9.9.9.9)"])
        assert engine.lookup("seen") == []


class TestDistribution:
    PROGRAM = """
    table msg(N, X) event.
    table stored(N, X).
    table peer(N, M).
    r1 stored(@M, X) :- msg(@N, X), peer(@N, M).
    """

    def test_head_shipped_to_remote_node(self):
        engine = run(self.PROGRAM, ["peer('a', 'b')", "msg('a', 42)"])
        assert engine.exists(parse_tuple("stored('b', 42)"))
        assert engine.node_of(parse_tuple("stored('b', 42)")) == "b"


class TestDeterminism:
    def test_same_inputs_same_clock_sequence(self, forwarding_program):
        def run_once():
            engine = Engine(forwarding_program)
            for text in (
                "link('s1', 2, 's2')",
                "flowEntry('s1', 5, 4.3.2.0/24, 2)",
                "flowEntry('s2', 1, 0.0.0.0/0, 3)",
                "hostAt('s2', 3, 'h1')",
                "packet('s1', 4.3.2.9, 4.3.2.1)",
            ):
                engine.insert(parse_tuple(text))
            engine.run()
            return engine.now, engine.store.all_tuples()

        first = run_once()
        second = run_once()
        assert first == second


class TestValidation:
    def test_unknown_table_insert(self, forwarding_program):
        engine = Engine(forwarding_program)
        with pytest.raises(SchemaError):
            engine.insert(Tuple("nonsense", [1]))

    def test_arity_mismatch(self, forwarding_program):
        engine = Engine(forwarding_program)
        with pytest.raises(SchemaError):
            engine.insert(Tuple("link", [1]))
