"""Tests for the store's join-acceleration indexes."""

import pytest

from repro.datalog import Engine, parse_program, parse_tuple
from repro.datalog.state import Store
from repro.datalog.tuples import TableSchema, Tuple


@pytest.fixture
def store():
    schemas = {"cfg": TableSchema("cfg", ["K", "V"])}
    store = Store(schemas)
    for index in range(10):
        store.add_base_support(Tuple("cfg", [f"k{index}", index]), index, True)
    return store


class TestEqualityIndex:
    def test_matching_by_key(self, store):
        assert store.tuples_matching("cfg", 0, "k3") == [Tuple("cfg", ["k3", 3])]

    def test_matching_by_value_position(self, store):
        assert store.tuples_matching("cfg", 1, 7) == [Tuple("cfg", ["k7", 7])]

    def test_no_match(self, store):
        assert store.tuples_matching("cfg", 0, "nope") == []

    def test_index_tracks_insertions(self, store):
        store.tuples_matching("cfg", 0, "k0")  # build the index
        store.add_base_support(Tuple("cfg", ["k0", 99]), 100, True)
        assert store.tuples_matching("cfg", 0, "k0") == [
            Tuple("cfg", ["k0", 0]),
            Tuple("cfg", ["k0", 99]),
        ]

    def test_index_tracks_removals(self, store):
        store.tuples_matching("cfg", 0, "k2")  # build the index
        store.remove_base_support(Tuple("cfg", ["k2", 2]))
        assert store.tuples_matching("cfg", 0, "k2") == []

    def test_index_consistent_with_scan(self, store):
        store.tuples_matching("cfg", 0, "k1")
        store.add_base_support(Tuple("cfg", ["k1", 50]), 200, True)
        store.remove_base_support(Tuple("cfg", ["k1", 1]))
        scan = [t for t in store.tuples("cfg") if t.args[0] == "k1"]
        assert store.tuples_matching("cfg", 0, "k1") == scan


class TestSortedCache:
    def test_returned_list_is_a_copy(self, store):
        first = store.tuples("cfg")
        first.append(Tuple("cfg", ["fake", -1]))
        assert Tuple("cfg", ["fake", -1]) not in store.tuples("cfg")

    def test_cache_invalidated_on_change(self, store):
        before = store.tuples("cfg")
        store.add_base_support(Tuple("cfg", ["new", 1]), 300, True)
        after = store.tuples("cfg")
        assert len(after) == len(before) + 1


class TestIndexedJoinSemantics:
    """Indexed and scanned access paths must produce identical results."""

    PROGRAM = """
    table fact(K, V).
    table probe(K) event.
    table hit(K, V).
    r1 hit(K, V) :- probe(K), fact(K, V).
    """

    def test_indexed_join_matches_expectations(self):
        engine = Engine(parse_program(self.PROGRAM))
        for index in range(50):
            engine.insert(parse_tuple(f"fact('k{index % 5}', {index})"))
        engine.run()
        engine.insert_and_run(parse_tuple("probe('k2')"))
        hits = engine.lookup("hit")
        assert len(hits) == 10
        assert all(t.args[0] == "k2" for t in hits)

    def test_constant_atom_uses_index(self):
        program = parse_program(
            """
            table cfg(K, V).
            table ev(X) event.
            table out(X, V).
            r1 out(X, V) :- ev(X), cfg('special', V).
            """
        )
        engine = Engine(program)
        for index in range(30):
            engine.insert(parse_tuple(f"cfg('noise{index}', {index})"))
        engine.insert(parse_tuple("cfg('special', 42)"))
        engine.run()
        engine.insert_and_run(parse_tuple("ev(1)"))
        assert engine.lookup("out") == [parse_tuple("out(1, 42)")]
