"""Tests for the expression AST: evaluation, substitution, inversion."""

import pytest

from repro.datalog.expr import BinOp, Call, Const, Var, fold, invert
from repro.datalog.parser import parse_expr
from repro.errors import EvaluationError, NonInvertibleError


class TestEvaluation:
    def test_const(self):
        assert Const(42).evaluate({}) == 42

    def test_var(self):
        assert Var("X").evaluate({"X": 7}) == 7

    def test_unbound_var(self):
        with pytest.raises(EvaluationError):
            Var("X").evaluate({})

    def test_arithmetic(self):
        expr = parse_expr("2 * X + 1")
        assert expr.evaluate({"X": 3}) == 7

    def test_exact_division(self):
        assert parse_expr("X / 2").evaluate({"X": 10}) == 5

    def test_exact_division_rejects_remainder(self):
        with pytest.raises(EvaluationError):
            parse_expr("X / 2").evaluate({"X": 7})

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            parse_expr("1 / X").evaluate({"X": 0})

    def test_bitwise(self):
        assert parse_expr("X & 255").evaluate({"X": 0x1FF}) == 0xFF
        assert parse_expr("X ^ 5").evaluate({"X": 3}) == 6
        assert parse_expr("X << 2").evaluate({"X": 3}) == 12

    def test_precedence(self):
        assert parse_expr("1 + 2 * 3").evaluate({}) == 7
        assert parse_expr("(1 + 2) * 3").evaluate({}) == 9

    def test_call(self):
        assert parse_expr("sq(X)").evaluate({"X": 5}) == 25

    def test_type_error_is_evaluation_error(self):
        with pytest.raises(EvaluationError):
            BinOp("+", Const(1), Const("a")).evaluate({})


class TestSubstitution:
    def test_substitute_var(self):
        expr = parse_expr("X + 1")
        result = expr.substitute({"X": Var("Y")})
        assert result == parse_expr("Y + 1")

    def test_substitute_into_call(self):
        expr = parse_expr("sq(X)")
        result = expr.substitute({"X": parse_expr("Y + 2")})
        assert result.evaluate({"Y": 3}) == 25

    def test_substitution_composes(self):
        # Formulas compose as they travel up the tree (Section 4.4):
        # if the 3 was computed by f, then 2*f+1 computes the 7.
        inner = parse_expr("$0 + 1")
        outer = parse_expr("2 * C + 1").substitute({"C": inner})
        assert outer.evaluate({"$0": 2}) == 7

    def test_untouched_vars_stay(self):
        expr = parse_expr("X + Y")
        result = expr.substitute({"X": Const(1)})
        assert result.variables() == frozenset(["Y"])


class TestVariables:
    def test_variables_of_expression(self):
        assert parse_expr("X + sq(Y) * 2").variables() == frozenset(["X", "Y"])

    def test_const_has_no_variables(self):
        assert parse_expr("1 + 2").variables() == frozenset()


class TestFold:
    def test_folds_constants(self):
        assert fold(parse_expr("1 + 2 * 3")) == Const(7)

    def test_keeps_variables(self):
        folded = fold(parse_expr("X + (2 * 3)"))
        assert folded == BinOp("+", Var("X"), Const(6))

    def test_folds_calls(self):
        assert fold(parse_expr("sq(3)")) == Const(9)


class TestInversion:
    """The paper's Section 4.5: q = x + 2 must invert to x = q - 2."""

    def solve(self, text, var, target_value, env=None):
        solutions = invert(parse_expr(text), var, Const(target_value))
        return [s.evaluate(env or {}) for s in solutions]

    def test_identity(self):
        assert self.solve("X", "X", 5) == [5]

    def test_addition(self):
        assert self.solve("X + 2", "X", 8) == [6]

    def test_addition_var_on_right(self):
        assert self.solve("2 + X", "X", 8) == [6]

    def test_subtraction_left(self):
        assert self.solve("X - 3", "X", 4) == [7]

    def test_subtraction_right(self):
        assert self.solve("10 - X", "X", 4) == [6]

    def test_multiplication(self):
        assert self.solve("2 * X", "X", 8) == [4]

    def test_division(self):
        assert self.solve("X / 3", "X", 4) == [12]

    def test_xor_is_self_inverse(self):
        assert self.solve("X ^ 5", "X", 6) == [3]

    def test_shift(self):
        assert self.solve("X << 2", "X", 12) == [3]

    def test_nested(self):
        # 2*(x+1)+1 == 9  =>  x == 3
        assert self.solve("2 * (X + 1) + 1", "X", 9) == [3]

    def test_paper_example(self):
        # d = 2*c + 1 with d = 7 gives c = 3 (Section 4.4's rule).
        assert self.solve("2 * C + 1", "C", 7) == [3]

    def test_multiple_preimages(self):
        # sq has two square roots; DiffProv tries all of them (4.5).
        assert sorted(self.solve("sq(X)", "X", 9)) == [-3, 3]

    def test_inverse_of_call_with_inner_expression(self):
        # sq(x + 1) == 9  =>  x in {2, -4}
        assert sorted(self.solve("sq(X + 1)", "X", 9)) == [-4, 2]

    def test_var_absent_fails(self):
        with pytest.raises(NonInvertibleError):
            invert(parse_expr("Y + 1"), "X", Const(3))

    def test_var_on_both_sides_fails(self):
        with pytest.raises(NonInvertibleError):
            invert(parse_expr("X + X"), "X", Const(4))

    def test_modulo_not_invertible(self):
        with pytest.raises(NonInvertibleError):
            invert(parse_expr("X % 7"), "X", Const(3))

    def test_bitand_not_invertible(self):
        with pytest.raises(NonInvertibleError):
            invert(parse_expr("X & 255"), "X", Const(3))

    def test_hash_not_invertible(self):
        # "say, a SHA256 hash" — Section 4.7's third failure mode.
        with pytest.raises(NonInvertibleError):
            invert(parse_expr("hash_mod(X, 100)"), "X", Const(42))

    def test_noninvertible_error_carries_attempted_change(self):
        try:
            invert(parse_expr("X % 7"), "X", Const(3))
        except NonInvertibleError as failure:
            assert failure.attempted is not None
        else:  # pragma: no cover
            pytest.fail("expected NonInvertibleError")

    def test_roundtrip_forward_backward(self):
        expr = parse_expr("(X * 4 - 6) / 2")
        value = expr.evaluate({"X": 9})
        solutions = invert(expr, "X", Const(value))
        assert [s.evaluate({}) for s in solutions] == [9]
