"""Deeper engine coverage: multi-hop located rules, aggregate joins,
and provenance of negative events."""

import pytest

from repro.datalog import Engine, parse_program, parse_tuple
from repro.provenance import ProvenanceRecorder
from repro.provenance.vertices import VertexKind


class TestLocatedChains:
    """NDlog's hallmark: recursive distributed computation over @nodes."""

    PROGRAM = """
    table link(Src, Dst).
    table start(Node) event.
    table visited(Node, Origin).
    hop1 visited(@N, O) :- start(@O), link(@O, N).
    hopN visited(@M, O) :- visited(@N, O), link(@N, M).
    """

    def test_multi_hop_propagation(self):
        engine = Engine(parse_program(self.PROGRAM))
        for text in ("link('a', 'b')", "link('b', 'c')", "link('c', 'd')"):
            engine.insert(parse_tuple(text))
        engine.run()
        engine.insert_and_run(parse_tuple("start('a')"))
        visited = {t.args[0] for t in engine.lookup("visited")}
        assert visited == {"b", "c", "d"}

    def test_tuples_live_at_their_nodes(self):
        engine = Engine(parse_program(self.PROGRAM))
        engine.insert(parse_tuple("link('a', 'b')"))
        engine.run()
        engine.insert_and_run(parse_tuple("start('a')"))
        tup = parse_tuple("visited('b', 'a')")
        assert engine.exists(tup)
        assert engine.node_of(tup) == "b"

    def test_provenance_spans_nodes(self):
        recorder = ProvenanceRecorder()
        engine = Engine(parse_program(self.PROGRAM), recorder=recorder)
        for text in ("link('a', 'b')", "link('b', 'c')"):
            engine.insert(parse_tuple(text))
        engine.run()
        engine.insert_and_run(parse_tuple("start('a')"))
        from repro.provenance import provenance_query

        tree = provenance_query(recorder.graph, parse_tuple("visited('c', 'a')"))
        nodes = {n.node for n in tree.tuple_root.walk()}
        assert {"a", "b", "c"} <= nodes


class TestAggregateJoins:
    PROGRAM = """
    table sale(Region, Product, Amount).
    table listed(Product).
    table revenue(Region, Total).
    r1 revenue(Region, sum<Amount>) :- sale(Region, Product, Amount),
        listed(Product), Amount > 0.
    """

    def test_aggregate_over_join_with_condition(self):
        engine = Engine(parse_program(self.PROGRAM))
        for text in (
            "sale('eu', 'a', 10)",
            "sale('eu', 'b', 5)",
            "sale('eu', 'c', 7)",     # c is not listed
            "sale('eu', 'a', -3)",    # filtered by the condition
            "sale('us', 'a', 2)",
            "listed('a')",
            "listed('b')",
        ):
            engine.insert(parse_tuple(text))
        engine.run()
        engine.fire_aggregates()
        assert engine.exists(parse_tuple("revenue('eu', 15)"))
        assert engine.exists(parse_tuple("revenue('us', 2)"))

    def test_aggregate_provenance_includes_join_partners(self):
        recorder = ProvenanceRecorder()
        engine = Engine(parse_program(self.PROGRAM), recorder=recorder)
        for text in ("sale('eu', 'a', 10)", "listed('a')"):
            engine.insert(parse_tuple(text))
        engine.run()
        engine.fire_aggregates()
        from repro.provenance import provenance_query

        tree = provenance_query(recorder.graph, parse_tuple("revenue('eu', 10)"))
        tables = {n.tuple.table for n in tree.tuple_root.walk()}
        assert tables == {"revenue", "sale", "listed"}


class TestNegativeVertexes:
    PROGRAM = """
    table base(X).
    table derived(X).
    r1 derived(X) :- base(X).
    """

    def test_underive_and_disappear_recorded(self):
        recorder = ProvenanceRecorder()
        engine = Engine(parse_program(self.PROGRAM), recorder=recorder)
        engine.insert_and_run(parse_tuple("base(1)"))
        engine.delete(parse_tuple("base(1)"))
        engine.run()
        stats = recorder.graph.stats()
        assert stats["DELETE"] == 1
        assert stats["UNDERIVE"] == 1
        assert stats["DISAPPEAR"] == 2  # the base and the derived tuple

    def test_underive_points_to_its_derive(self):
        recorder = ProvenanceRecorder()
        engine = Engine(parse_program(self.PROGRAM), recorder=recorder)
        engine.insert_and_run(parse_tuple("base(1)"))
        engine.delete(parse_tuple("base(1)"))
        engine.run()
        underives = [
            v for v in recorder.graph.vertices
            if v.kind == VertexKind.UNDERIVE
        ]
        (underive,) = underives
        (cause,) = recorder.graph.children(underive)
        assert cause.kind == VertexKind.DERIVE
        assert cause.derivation_id == underive.derivation_id

    def test_disappear_of_derived_points_to_underive(self):
        recorder = ProvenanceRecorder()
        engine = Engine(parse_program(self.PROGRAM), recorder=recorder)
        engine.insert_and_run(parse_tuple("base(1)"))
        engine.delete(parse_tuple("base(1)"))
        engine.run()
        disappears = [
            v for v in recorder.graph.vertices
            if v.kind == VertexKind.DISAPPEAR
            and v.tuple == parse_tuple("derived(1)")
        ]
        (disappear,) = disappears
        (cause,) = recorder.graph.children(disappear)
        assert cause.kind == VertexKind.DERIVE  # via the underive edge


class TestTaintConflicts:
    """Two children binding the same variable: first formula wins, and
    the annotation stays internally consistent."""

    PROGRAM = """
    table stim(X) event immutable.
    table mirror(X) event.
    table pair(X, Y) event.
    table out(X).
    m mirror(X) :- stim(X).
    p pair(X, X) :- stim(X).
    o out(X) :- pair(X, Y).
    """

    def test_duplicate_variable_taints(self):
        from repro.core.seeds import find_seed
        from repro.core.taint import TaintAnnotation
        from repro.provenance import provenance_query

        program = parse_program(self.PROGRAM)
        recorder = ProvenanceRecorder()
        engine = Engine(program, recorder=recorder)
        engine.insert_and_run(parse_tuple("stim(5)"))
        tree = provenance_query(recorder.graph, parse_tuple("out(5)"))
        seed = find_seed(tree.tuple_root)
        annotation = TaintAnnotation(program, tree.tuple_root, seed)
        (formula,) = annotation.formulas_for(tree.tuple_root)
        assert formula is not None
        assert formula.evaluate({"$0": 9}) == 9
