"""The unified EngineConfig API: validation, coercion, legacy shims.

One frozen dataclass replaces the old ``use_indexes=``/``lazy=``
boolean pair everywhere (replay(), Execution, Engine, Session, CLI,
service protocol).  These tests pin its contract: validated enums,
every accepted input shape, the legacy mapping (with its
DeprecationWarning), and the typed protocol error for malformed
``engine`` option blocks.
"""

import dataclasses
import json

import pytest

from repro.datalog import BACKENDS, PROVENANCE_MODES, EngineConfig
from repro.datalog.engine import Engine
from repro.replay.execution import Execution
from repro.service.protocol import ProtocolError, parse_request


class TestValidation:
    def test_default_is_compiled_annotated(self):
        config = EngineConfig()
        assert config.backend == "compiled"
        assert config.provenance == "annotated"
        assert config.describe() == "compiled/annotated"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("provenance", PROVENANCE_MODES)
    def test_every_combination_constructs(self, backend, provenance):
        config = EngineConfig(backend=backend, provenance=provenance)
        assert config.to_dict() == {
            "backend": backend, "provenance": provenance
        }

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            EngineConfig(backend="vectorized")

    def test_unknown_provenance_rejected(self):
        with pytest.raises(ValueError, match="unknown provenance mode"):
            EngineConfig(provenance="graphless")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EngineConfig().backend = "indexed"


class TestCoerce:
    def test_none_is_the_default(self):
        assert EngineConfig.coerce(None) == EngineConfig()

    def test_instance_passes_through(self):
        config = EngineConfig(backend="indexed")
        assert EngineConfig.coerce(config) is config

    @pytest.mark.parametrize(
        "name,provenance",
        [("compiled", "annotated"), ("indexed", "lazy"),
         ("reference", "eager")],
    )
    def test_backend_name_picks_natural_provenance(self, name, provenance):
        config = EngineConfig.coerce(name)
        assert config.backend == name
        assert config.provenance == provenance

    def test_mapping_is_validated_field_by_field(self):
        config = EngineConfig.coerce(
            {"backend": "indexed", "provenance": "eager"}
        )
        assert config == EngineConfig(backend="indexed", provenance="eager")

    def test_mapping_with_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown engine option field"):
            EngineConfig.coerce({"backend": "compiled", "workers": 4})

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            EngineConfig.coerce("hash-join")

    def test_unsupported_shape_rejected(self):
        with pytest.raises(ValueError, match="cannot interpret"):
            EngineConfig.coerce(42)


class TestLegacyBridge:
    def test_from_legacy_maps_the_old_modes(self):
        assert EngineConfig.from_legacy() == EngineConfig(
            backend="indexed", provenance="lazy"
        )
        assert EngineConfig.from_legacy(
            use_indexes=False, lazy=False
        ) == EngineConfig(backend="reference", provenance="eager")

    def test_legacy_views(self):
        assert EngineConfig(backend="compiled").use_indexes
        assert not EngineConfig(backend="reference").use_indexes
        assert EngineConfig(provenance="lazy").lazy
        assert not EngineConfig(provenance="eager").lazy

    def test_resolve_booleans_warn(self):
        with pytest.warns(DeprecationWarning, match="use_indexes=/lazy="):
            config = EngineConfig.resolve(use_indexes=False)
        assert config == EngineConfig(backend="reference", provenance="lazy")

    def test_resolve_rejects_mixing_apis(self):
        with pytest.raises(ValueError, match="not both"):
            EngineConfig.resolve(engine="compiled", lazy=False)

    def test_resolve_engine_only_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert EngineConfig.resolve("reference").backend == "reference"

    def test_execution_boolean_attributes_warn(self, tmp_path):
        from repro.datalog.rules import Program

        execution = Execution(Program(), "legacy")
        with pytest.warns(DeprecationWarning):
            assert execution.use_indexes
        with pytest.warns(DeprecationWarning):
            execution.lazy_provenance = False
        assert execution.engine_config.provenance == "eager"

    def test_engine_use_indexes_kwarg_warns(self):
        from repro.datalog.rules import Program

        with pytest.warns(DeprecationWarning):
            engine = Engine(Program(), use_indexes=False)
        assert engine.config.backend == "reference"


class TestProtocolOption:
    def _request(self, engine):
        return json.dumps(
            {
                "id": "req-1",
                "kind": "diagnose",
                "scenario": "SDN1",
                "options": {"engine": engine},
            }
        )

    def test_valid_engine_block_is_normalized(self):
        request = parse_request(self._request("reference"))
        assert request.options["engine"] == {
            "backend": "reference", "provenance": "eager"
        }

    def test_mapping_block_accepted(self):
        request = parse_request(
            self._request({"backend": "compiled", "provenance": "lazy"})
        )
        assert request.options["engine"] == {
            "backend": "compiled", "provenance": "lazy"
        }

    def test_unknown_backend_is_a_typed_protocol_error(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(self._request("warp-drive"))
        assert "unknown engine backend" in str(excinfo.value)

    def test_non_string_non_mapping_is_a_typed_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_request(self._request(17))
