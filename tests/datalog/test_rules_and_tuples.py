"""Unit tests for the rule/tuple building blocks not covered elsewhere."""

import pytest

from repro.datalog import builtins as bi
from repro.datalog.expr import Const, Var
from repro.datalog.parser import parse_program
from repro.datalog.rules import (
    AggSpec,
    Assignment,
    Atom,
    Condition,
    Rule,
    Selector,
)
from repro.datalog.tuples import TableKind, TableSchema, Tuple, check_schema
from repro.errors import EvaluationError, SchemaError


class TestTuple:
    def test_immutability(self):
        tup = Tuple("t", [1, 2])
        with pytest.raises(AttributeError):
            tup.table = "other"

    def test_replace(self):
        tup = Tuple("t", [1, 2, 3])
        assert tup.replace(1, 9) == Tuple("t", [1, 9, 3])
        assert tup.args == (1, 2, 3)  # original unchanged

    def test_with_args(self):
        assert Tuple("t", [1]).with_args([7, 8]) == Tuple("t", [7, 8])

    def test_location_property(self):
        assert Tuple("t", ["n1", 5]).location == "n1"
        assert Tuple("t", []).location is None

    def test_str_quotes_strings(self):
        assert str(Tuple("t", ["a", 1])) == "t('a', 1)"

    def test_hash_stable(self):
        assert hash(Tuple("t", [1])) == hash(Tuple("t", [1]))


class TestSchemas:
    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ["A", "A"])

    def test_field_index(self):
        schema = TableSchema("t", ["A", "B"])
        assert schema.field_index("B") == 1
        with pytest.raises(SchemaError):
            schema.field_index("C")

    def test_check_schema(self):
        schemas = {"t": TableSchema("t", ["A", "B"])}
        assert check_schema(Tuple("t", [1, 2]), schemas).name == "t"
        with pytest.raises(SchemaError):
            check_schema(Tuple("t", [1]), schemas)
        with pytest.raises(SchemaError):
            check_schema(Tuple("zz", [1]), schemas)


class TestRuleConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(SchemaError):
            Rule("r", Atom("a", [Var("X")]), [])

    def test_selector_needs_keys(self):
        with pytest.raises(SchemaError):
            Selector([])

    def test_aggspec_kinds(self):
        with pytest.raises(SchemaError):
            AggSpec("median", Var("X"))
        with pytest.raises(SchemaError):
            AggSpec("sum", None)  # sum needs an argument
        assert AggSpec("count", None).kind == "count"

    def test_condition_operators(self):
        with pytest.raises(SchemaError):
            Condition("~=", Const(1), Const(2))
        with pytest.raises(SchemaError):
            Condition("call", Const(1), Const(2))

    def test_condition_type_error(self):
        condition = Condition("<", Const(1), Const("a"))
        with pytest.raises(EvaluationError):
            condition.holds({})

    def test_atom_str_includes_location_and_selector(self):
        atom = Atom(
            "fe",
            [Var("S"), Var("P")],
            location="S",
            selector=Selector([Var("P")]),
        )
        assert str(atom) == "fe(@S, P) argmax<P>"

    def test_rule_str_is_readable(self):
        program = parse_program(
            """
            table a(X).
            table b(X).
            r1 a(X) :- b(X), X > 0.
            """
        )
        text = str(program.rule("r1"))
        assert text == "r1 a(X) :- b(X), X > 0."

    def test_assignment_str(self):
        assert str(Assignment("Y", Const(3))) == "Y := 3"


class TestBuiltinsRegistry:
    def test_unknown_builtin(self):
        with pytest.raises(EvaluationError):
            bi.call("no_such_fn", [1])

    def test_arity_checked(self):
        with pytest.raises(EvaluationError):
            bi.call("sq", [1, 2])

    def test_has_inverse(self):
        assert bi.has_inverse("sq", 0)
        assert not bi.has_inverse("hash_mod", 0)
        assert not bi.has_inverse("no_such_fn", 0)

    def test_register_replaces(self):
        bi.register("test_tmp_fn", lambda x: x + 1, 1)
        assert bi.call("test_tmp_fn", [1]) == 2
        bi.register("test_tmp_fn", lambda x: x + 2, 1)
        assert bi.call("test_tmp_fn", [1]) == 3
        del bi.BUILTINS["test_tmp_fn"]

    def test_stable_hash_is_process_independent(self):
        # FNV-1a over the repr: fixed constants, fixed results.
        assert bi.stable_hash("the") == bi.stable_hash("the")
        assert bi._hash_mod("the", 2) in (0, 1)
        assert bi.call("hash_mod", ["the", 2]) == bi._hash_mod("the", 2)

    def test_hash_mod_rejects_bad_modulus(self):
        with pytest.raises(EvaluationError):
            bi.call("hash_mod", ["x", 0])

    def test_ecmp_choice_deterministic_given_seed(self):
        first = bi.call("ecmp_choice", [7, "flow-1", 4])
        second = bi.call("ecmp_choice", [7, "flow-1", 4])
        assert first == second
        assert 0 <= first < 4

    def test_ecmp_choice_varies_with_seed(self):
        outcomes = {bi.call("ecmp_choice", [seed, "flow-1", 2]) for seed in range(16)}
        assert outcomes == {0, 1}

    def test_ecmp_choice_rejects_bad_fanout(self):
        with pytest.raises(EvaluationError):
            bi.call("ecmp_choice", [1, "f", 0])

    def test_checksum_format(self):
        digest = bi.call("checksum", ["content"])
        assert len(digest) == 16
        assert int(digest, 16) >= 0
