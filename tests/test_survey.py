"""Tests for the Section 2.4 survey reproduction."""

from repro.survey import (
    CATEGORY_COUNTS,
    SurveyPost,
    analyze,
    build_corpus,
    paper_stats,
)


class TestCorpus:
    def test_corpus_has_89_posts(self):
        assert len(build_corpus()) == 89

    def test_corpus_is_deterministic(self):
        first = [(p.is_diagnostic, p.has_reference, p.category)
                 for p in build_corpus()]
        second = [(p.is_diagnostic, p.has_reference, p.category)
                  for p in build_corpus()]
        assert first == second

    def test_posts_have_sequential_ids(self):
        posts = build_corpus()
        assert [p.post_id for p in posts] == list(range(1, 90))

    def test_months_in_survey_window(self):
        months = {p.month for p in build_corpus()}
        assert months <= {"2014-09", "2014-10", "2014-11", "2014-12"}

    def test_excerpts_present(self):
        assert all(p.excerpt for p in build_corpus())


class TestAnalysis:
    def test_paper_numbers(self):
        stats = paper_stats()
        assert stats.total == 89
        assert stats.diagnostic == 64
        assert stats.with_reference == 45
        assert stats.cross_domain == 10
        assert stats.in_domain == 35

    def test_reference_fraction_is_70_point_3(self):
        assert round(paper_stats().reference_fraction * 100, 1) == 70.3

    def test_category_counts(self):
        stats = paper_stats()
        assert stats.by_category == CATEGORY_COUNTS
        assert stats.by_category["partial"] == max(stats.by_category.values())

    def test_strategies_cover_both_kinds(self):
        stats = paper_stats()
        assert set(stats.by_strategy) == {"look-back-in-time", "sibling-system"}
        assert sum(stats.by_strategy.values()) == 45

    def test_analyze_on_custom_corpus(self):
        posts = [
            SurveyPost(1, "2014-09", True, True, False, "partial", "sibling-system"),
            SurveyPost(2, "2014-09", True, False),
            SurveyPost(3, "2014-09", False),
        ]
        stats = analyze(posts)
        assert stats.total == 3
        assert stats.diagnostic == 2
        assert stats.with_reference == 1
        assert stats.in_domain == 1

    def test_empty_corpus(self):
        stats = analyze([])
        assert stats.reference_fraction == 0.0
