"""Tests for checkpoint-based state reconstruction."""

import pytest

from repro.datalog import parse_program, parse_tuple
from repro.errors import ReproError
from repro.replay import Checkpointer, EventLog

PROGRAM = """
table a(X).
table b(X).
r1 b(X) :- a(X).
"""


def make_log(n=10):
    log = EventLog()
    for i in range(n):
        log.append("insert", parse_tuple(f"a({i})"))
    log.append("delete", parse_tuple("a(0)"))
    return log


class TestCheckpointer:
    def test_build_creates_snapshots(self):
        program = parse_program(PROGRAM)
        checkpointer = Checkpointer(program, every=4)
        log = make_log()
        checkpoints = checkpointer.build(log)
        assert [c.index for c in checkpoints] == [0, 4, 8]

    def test_state_at_matches_full_replay(self):
        program = parse_program(PROGRAM)
        checkpointer = Checkpointer(program, every=3)
        log = make_log()
        for index in (0, 3, 5, 10, len(log)):
            engine = checkpointer.state_at(log, index)
            # Full replay of the prefix for comparison.
            from repro.datalog import Engine

            reference = Engine(program)
            for entry in log.entries[:index]:
                if entry.op == "insert":
                    reference.insert_and_run(entry.tuple, entry.mutable)
                elif entry.op == "delete":
                    reference.delete(entry.tuple)
                    reference.run()
            assert engine.store.all_tuples() == reference.store.all_tuples()

    def test_deletion_reflected_in_state(self):
        program = parse_program(PROGRAM)
        checkpointer = Checkpointer(program, every=4)
        log = make_log()
        engine = checkpointer.state_at(log, len(log))
        assert not engine.exists(parse_tuple("a(0)"))
        assert not engine.exists(parse_tuple("b(0)"))

    def test_nearest_before(self):
        program = parse_program(PROGRAM)
        checkpointer = Checkpointer(program, every=4)
        checkpointer.build(make_log())
        assert checkpointer.nearest_before(5).index == 4
        assert checkpointer.nearest_before(3).index == 0

    def test_positive_interval_required(self):
        with pytest.raises(ReproError):
            Checkpointer(parse_program(PROGRAM), every=0)
