"""Tests for the reported-execution adapter and graph store view."""

import pytest

from repro.datalog.tuples import Tuple
from repro.errors import ReproError
from repro.provenance.recorder import ProvenanceRecorder
from repro.replay.log import EventLog
from repro.replay.replayer import Change
from repro.replay.reported import (
    GraphStoreView,
    ReportedExecution,
    ReportedReplayResult,
)


def make_runner(value_holder):
    """A deterministic runner: reports cfg -> derived(value)."""

    def runner(changes):
        value = value_holder["value"]
        for change in changes:
            if change.insert is not None and change.insert.table == "cfg":
                value = change.insert.args[1]
        recorder = ProvenanceRecorder()
        cfg = Tuple("cfg", ["k", value])
        recorder.report_insert("n1", cfg, mutable=True)
        recorder.report_derive(
            "n1", Tuple("derived", [value * 2]), "double", [cfg]
        )
        return recorder

    return runner


@pytest.fixture
def execution():
    log = EventLog()
    log.append("insert", Tuple("cfg", ["k", 3]), mutable=True)
    return ReportedExecution("sys", make_runner({"value": 3}), log)


class TestReportedExecution:
    def test_materialize_runs_once_and_caches(self, execution):
        execution.materialize()
        execution.materialize()
        assert execution.replay_count == 1

    def test_graph_property(self, execution):
        assert execution.graph.live_tuples("derived") == [Tuple("derived", [6])]

    def test_replay_with_changes(self, execution):
        result = execution.replay([Change(insert=Tuple("cfg", ["k", 5]))])
        assert result.alive(Tuple("derived", [10]))
        assert not result.alive(Tuple("derived", [6]))

    def test_replay_counts_time(self, execution):
        execution.replay()
        assert execution.replay_count == 1
        assert execution.replay_seconds >= 0

    def test_bad_runner_rejected(self):
        execution = ReportedExecution("bad", lambda changes: 42, EventLog())
        with pytest.raises(ReproError):
            execution.replay()


class TestGraphStoreView:
    @pytest.fixture
    def view(self):
        recorder = ProvenanceRecorder()
        recorder.report_insert("n", Tuple("cfg", ["a", 1]), mutable=True)
        recorder.report_insert("n", Tuple("wire", [7]), mutable=False)
        recorder.report_derive(
            "n", Tuple("derived", [2]), "r", [Tuple("cfg", ["a", 1])]
        )
        recorder.report_insert("n", Tuple("cfg", ["b", 2]), mutable=True)
        recorder.report_delete("n", Tuple("cfg", ["b", 2]))
        return GraphStoreView(recorder.graph)

    def test_store_is_self(self, view):
        assert view.store is view

    def test_live_tuples_by_table(self, view):
        assert view.tuples("cfg") == [Tuple("cfg", ["a", 1])]
        assert view.tuples("derived") == [Tuple("derived", [2])]
        assert view.tuples("nothing") == []

    def test_deleted_tuples_not_live(self, view):
        assert Tuple("cfg", ["b", 2]) not in view.tuples("cfg")

    def test_record_distinguishes_base(self, view):
        assert view.record(Tuple("cfg", ["a", 1])).is_base
        assert not view.record(Tuple("derived", [2])).is_base
        assert view.record(Tuple("cfg", ["zzz", 0])) is None

    def test_mutability(self, view):
        assert view.is_mutable(Tuple("cfg", ["a", 1]))
        assert not view.is_mutable(Tuple("wire", [7]))
