"""Tests for event logging and deterministic replay."""

import pytest

from repro.datalog import parse_tuple
from repro.errors import ReproError
from repro.replay import Change, EventLog, Execution, estimate_size, replay
from repro.replay.log import PACKET_RECORD_BYTES, LogEntry


class TestEventLog:
    def test_append_and_total_bytes(self):
        log = EventLog()
        log.append("insert", parse_tuple("a(1)"), size=10)
        log.append("insert", parse_tuple("a(2)"), size=20)
        assert len(log) == 2
        assert log.total_bytes == 30

    def test_default_size_estimate(self):
        tup = parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 8)")
        assert estimate_size(tup) > 0
        log = EventLog()
        entry = log.append("insert", tup)
        assert entry.size == estimate_size(tup)

    def test_fixed_packet_record_size_constant(self):
        assert PACKET_RECORD_BYTES == 54

    def test_index_of_insert(self):
        log = EventLog()
        log.append("insert", parse_tuple("a(1)"))
        log.append("insert", parse_tuple("a(2)"))
        assert log.index_of_insert(parse_tuple("a(2)")) == 1
        assert log.index_of_insert(parse_tuple("a(9)")) is None

    def test_unknown_op_rejected(self):
        with pytest.raises(ReproError):
            LogEntry("mangle", parse_tuple("a(1)"))

    def test_dump_and_load_roundtrip(self, tmp_path):
        log = EventLog()
        log.append("insert", parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 8)"), mutable=True)
        log.append("delete", parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 8)"))
        log.append("barrier")
        log.append("insert", parse_tuple("packet('s1', 1.2.3.4, 5.6.7.8)"), mutable=False)
        path = tmp_path / "events.log"
        log.dump(str(path))
        loaded = EventLog.load(str(path))
        assert [(e.op, e.tuple, e.mutable) for e in loaded] == [
            (e.op, e.tuple, e.mutable) for e in log
        ]


class TestExecution:
    def test_insert_runs_and_logs(self, forwarding_program):
        execution = Execution(forwarding_program)
        execution.insert(parse_tuple("flowEntry('s1', 5, 0.0.0.0/0, 2)"))
        assert len(execution.log) == 1
        assert execution.engine.exists(parse_tuple("flowEntry('s1', 5, 0.0.0.0/0, 2)"))

    def test_query_time_mode_has_no_runtime_recorder(self, forwarding_program):
        execution = Execution(forwarding_program, mode="query-time")
        assert execution._runtime_recorder is None

    def test_runtime_mode_records_as_it_goes(self, forwarding_program):
        execution = Execution(forwarding_program, mode="runtime")
        execution.insert(parse_tuple("flowEntry('s1', 5, 0.0.0.0/0, 2)"))
        assert len(execution.graph) > 0
        assert execution.replay_count == 0

    def test_query_time_mode_materializes_by_replay(self, forwarding_program):
        execution = Execution(forwarding_program, mode="query-time")
        execution.insert(parse_tuple("flowEntry('s1', 5, 0.0.0.0/0, 2)"))
        graph = execution.graph
        assert execution.replay_count == 1
        assert len(graph.inserts_of(parse_tuple("flowEntry('s1', 5, 0.0.0.0/0, 2)"))) == 1

    def test_materialize_is_cached(self, forwarding_program):
        execution = Execution(forwarding_program)
        execution.insert(parse_tuple("flowEntry('s1', 5, 0.0.0.0/0, 2)"))
        execution.materialize()
        execution.materialize()
        assert execution.replay_count == 1

    def test_new_events_invalidate_cache(self, forwarding_program):
        execution = Execution(forwarding_program)
        execution.insert(parse_tuple("flowEntry('s1', 5, 0.0.0.0/0, 2)"))
        execution.materialize()
        execution.insert(parse_tuple("flowEntry('s2', 5, 0.0.0.0/0, 3)"))
        execution.materialize()
        assert execution.replay_count == 2

    def test_logging_disabled_blocks_materialization(self, forwarding_program):
        execution = Execution(forwarding_program, logging_enabled=False)
        execution.insert(parse_tuple("flowEntry('s1', 5, 0.0.0.0/0, 2)"))
        with pytest.raises(ReproError):
            execution.materialize()

    def test_unknown_mode_rejected(self, forwarding_program):
        with pytest.raises(ReproError):
            Execution(forwarding_program, mode="psychic")


class TestReplayWithChanges:
    def setup_execution(self, forwarding_program):
        execution = Execution(forwarding_program)
        for text in (
            "link('s1', 2, 's2')",
            "flowEntry('s1', 5, 4.3.2.0/24, 2)",
            "flowEntry('s1', 1, 0.0.0.0/0, 9)",
            "flowEntry('s2', 1, 0.0.0.0/0, 3)",
            "hostAt('s2', 3, 'h1')",
        ):
            execution.insert(parse_tuple(text))
        execution.insert(parse_tuple("packet('s1', 7.7.7.7, 4.3.3.1)"))
        return execution

    def test_replay_reproduces_original(self, forwarding_program):
        execution = self.setup_execution(forwarding_program)
        result = execution.replay()
        # 4.3.3.1 misses the /24 entry and uses the default to port 9,
        # which leads nowhere — no delivery.
        assert not result.alive(parse_tuple("delivered('h1', 7.7.7.7, 4.3.3.1)"))

    def test_replay_with_inserted_entry_changes_outcome(self, forwarding_program):
        execution = self.setup_execution(forwarding_program)
        anchor = execution.log.index_of_insert(
            parse_tuple("packet('s1', 7.7.7.7, 4.3.3.1)")
        )
        change = Change(insert=parse_tuple("flowEntry('s1', 5, 4.3.2.0/23, 2)"))
        result = execution.replay([change], anchor_index=anchor)
        assert result.alive(parse_tuple("delivered('h1', 7.7.7.7, 4.3.3.1)"))

    def test_replay_with_removal_suppresses_log_insert(self, forwarding_program):
        execution = self.setup_execution(forwarding_program)
        change = Change(remove=[parse_tuple("flowEntry('s2', 1, 0.0.0.0/0, 3)")])
        result = execution.replay([change])
        assert not result.alive(parse_tuple("flowEntry('s2', 1, 0.0.0.0/0, 3)"))

    def test_replay_does_not_touch_original_execution(self, forwarding_program):
        execution = self.setup_execution(forwarding_program)
        change = Change(remove=[parse_tuple("flowEntry('s2', 1, 0.0.0.0/0, 3)")])
        execution.replay([change])
        assert execution.engine.exists(
            parse_tuple("flowEntry('s2', 1, 0.0.0.0/0, 3)")
        )

    def test_change_requires_content(self):
        with pytest.raises(ReproError):
            Change()

    def test_change_describe(self):
        modification = Change(
            insert=parse_tuple("a(2)"), remove=[parse_tuple("a(1)")]
        )
        assert "->" in modification.describe()
        assert Change(insert=parse_tuple("a(2)")).describe().startswith("insert")
        assert Change(remove=[parse_tuple("a(1)")]).describe().startswith("remove")
