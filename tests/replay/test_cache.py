"""Tests for the baseline snapshot cache and the parallel evaluator.

The contract under test (docs/performance.md): the cache and the
worker pool are pure speed-ups — a diagnosis is byte-identical whether
the cache is cold, warm, or disabled, and whether candidates are
evaluated serially or on a process pool.
"""

import pytest

from repro.core.diffprov import DiffProvOptions
from repro.datalog import BACKENDS, EngineConfig, parse_tuple
from repro.faults import FaultPlan
from repro.replay import Change, Execution, ReplayCache, replay
from repro.scenarios import ALL_SCENARIOS


def _forwarding_execution(forwarding_program):
    execution = Execution(forwarding_program)
    for text in (
        "link('s1', 2, 's2')",
        "flowEntry('s1', 5, 4.3.2.0/24, 2)",
        "flowEntry('s1', 1, 0.0.0.0/0, 9)",
        "flowEntry('s2', 1, 0.0.0.0/0, 3)",
        "hostAt('s2', 3, 'h1')",
    ):
        execution.insert(parse_tuple(text))
    execution.insert(parse_tuple("packet('s1', 7.7.7.7, 4.3.3.1)"))
    return execution


WIDEN = Change(
    insert=parse_tuple("flowEntry('s1', 5, 4.3.2.0/23, 2)"),
    remove=[parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 2)")],
)


class TestAccounting:
    def test_cold_replay_misses_and_stores(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        replay(forwarding_program, execution.log, cache=cache)
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] >= 1
        assert stats["stores"] >= 1
        assert stats["entries"] == len(cache) > 0
        assert stats["bytes"] > 0

    def test_warm_replay_hits(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        replay(forwarding_program, execution.log, cache=cache)
        before = cache.stats()
        replay(forwarding_program, execution.log, cache=cache)
        after = cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["stores"] == before["stores"]

    def test_changed_replay_result_is_cached(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        anchor = len(execution.log) - 1
        replay(forwarding_program, execution.log, [WIDEN],
               anchor_index=anchor, cache=cache)
        hits = cache.hits
        replay(forwarding_program, execution.log, [WIDEN],
               anchor_index=anchor, cache=cache)
        assert cache.hits == hits + 1

    def test_restored_state_matches_fresh_replay(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        anchor = len(execution.log) - 1
        first = replay(forwarding_program, execution.log, [WIDEN],
                       anchor_index=anchor, cache=cache)
        warm = replay(forwarding_program, execution.log, [WIDEN],
                      anchor_index=anchor, cache=cache)
        fresh = replay(forwarding_program, execution.log, [WIDEN],
                       anchor_index=anchor)
        for result in (first, warm):
            assert sorted(map(str, result.engine.store.all_tuples())) == \
                sorted(map(str, fresh.engine.store.all_tuples()))
        delivered = parse_tuple("delivered('h1', 7.7.7.7, 4.3.3.1)")
        assert warm.engine.exists(delivered)

    def test_restores_are_isolated_copies(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        replay(forwarding_program, execution.log, cache=cache)
        one = replay(forwarding_program, execution.log, cache=cache)
        extra = parse_tuple("flowEntry('s9', 1, 0.0.0.0/0, 1)")
        one.engine.insert(extra)
        two = replay(forwarding_program, execution.log, cache=cache)
        assert one.engine is not two.engine
        assert not two.engine.exists(extra)

    def test_lru_eviction(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache(max_entries=1)
        anchor = len(execution.log) - 1
        replay(forwarding_program, execution.log, cache=cache)
        replay(forwarding_program, execution.log, [WIDEN],
               anchor_index=anchor, cache=cache)
        assert len(cache) == 1
        assert cache.evictions >= 1

    def test_fold_into_records_occupancy(self, forwarding_program):
        from repro.observability import Telemetry

        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        replay(forwarding_program, execution.log, cache=cache)
        telemetry = Telemetry()
        cache.fold_into(telemetry)
        gauges = telemetry.snapshot()["gauges"]
        assert gauges["replay.cache.entries"] == len(cache)
        assert gauges["replay.cache.bytes"] == cache.bytes_stored


class TestKeys:
    def test_key_sensitive_to_fault_plan(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        log = execution.log
        none = ReplayCache.base_key(log, None, False, True)
        plan_a = ReplayCache.base_key(
            log, FaultPlan.parse("loss=0.1,seed=7"), False, True
        )
        plan_b = ReplayCache.base_key(
            log, FaultPlan.parse("loss=0.1,seed=8"), False, True
        )
        assert len({none, plan_a, plan_b}) == 3

    def test_lossless_collapsed_without_plan(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        log = execution.log
        assert ReplayCache.base_key(log, None, True, True) == \
            ReplayCache.base_key(log, None, False, True)
        plan = FaultPlan.parse("loss=0.1,seed=7")
        assert ReplayCache.base_key(log, plan, True, True) != \
            ReplayCache.base_key(log, plan, False, True)

    def test_key_sensitive_to_log_content(self, forwarding_program):
        a = _forwarding_execution(forwarding_program)
        b = _forwarding_execution(forwarding_program)
        b.insert(parse_tuple("packet('s1', 7.7.7.7, 4.3.2.1)"))
        assert ReplayCache.base_key(a.log, None, False, True) != \
            ReplayCache.base_key(b.log, None, False, True)

    def test_zero_change_result_key_is_full_prefix(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        base = ReplayCache.base_key(execution.log, None, False, True)
        key = ReplayCache.result_key(base, [], None, len(execution.log))
        assert key == ReplayCache.prefix_key(base, len(execution.log))

    def test_result_key_sensitive_to_changes_and_anchor(
        self, forwarding_program
    ):
        execution = _forwarding_execution(forwarding_program)
        base = ReplayCache.base_key(execution.log, None, False, True)
        n = len(execution.log)
        other = Change(insert=parse_tuple("flowEntry('s1', 9, 0.0.0.0/0, 2)"))
        keys = {
            ReplayCache.result_key(base, [WIDEN], 3, n),
            ReplayCache.result_key(base, [WIDEN], 4, n),
            ReplayCache.result_key(base, [other], 3, n),
        }
        assert len(keys) == 3


class TestBackendSnapshots:
    """ColumnarStore + compiled closures must survive the pickle path.

    A cached snapshot is a pickled engine; the compiled backend drops
    its (unpicklable) closures and columnar caches on ``__getstate__``
    and rebuilds them lazily after restore, so a warm replay must be
    byte-identical to a cold one — per backend, and across backends.
    """

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_warm_restore_matches_cold_replay(
        self, forwarding_program, backend
    ):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        anchor = len(execution.log) - 1
        cold = replay(forwarding_program, execution.log, [WIDEN],
                      anchor_index=anchor, cache=cache, engine=backend)
        warm = replay(forwarding_program, execution.log, [WIDEN],
                      anchor_index=anchor, cache=cache, engine=backend)
        assert cache.hits >= 1
        assert sorted(map(str, warm.engine.store.all_tuples())) == \
            sorted(map(str, cold.engine.store.all_tuples()))
        delivered = parse_tuple("delivered('h1', 7.7.7.7, 4.3.3.1)")
        assert warm.engine.exists(delivered)
        # The restored engine must still evaluate: push another packet
        # through the compiled/indexed/reference join path.
        warm.engine.insert_and_run(
            parse_tuple("packet('s1', 8.8.8.8, 4.3.3.2)")
        )
        assert warm.engine.exists(
            parse_tuple("delivered('h1', 8.8.8.8, 4.3.3.2)")
        )

    def test_snapshots_never_cross_backends(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        replay(forwarding_program, execution.log, cache=cache,
               engine="compiled")
        replay(forwarding_program, execution.log, cache=cache,
               engine="indexed")
        # The second replay used a different backend: pickled engine
        # state differs even though results do not, so it must be a
        # miss, not a hit on the compiled snapshot.
        assert cache.hits == 0
        assert cache.stats()["misses"] >= 2

    def test_base_key_separates_engine_configs(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        log = execution.log
        keys = {
            ReplayCache.base_key(log, None, False, True,
                                 EngineConfig.coerce(backend))
            for backend in BACKENDS
        }
        keys.add(ReplayCache.base_key(log, None, False, True))
        assert len(keys) == len(BACKENDS) + 1


class TestDeterminism:
    """Cache states and worker counts never change a diagnosis."""

    @pytest.mark.parametrize("scenario", ["SDN1", "DNS"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_equals_serial(self, scenario, workers):
        serial = ALL_SCENARIOS[scenario]().setup().diagnose(
            DiffProvOptions(minimize=True, replay_cache=False)
        )
        parallel = ALL_SCENARIOS[scenario]().setup().diagnose(
            DiffProvOptions(minimize=True, workers=workers)
        )
        assert parallel.canonical_json() == serial.canonical_json()
        assert parallel.replays == serial.replays

    def test_multi_change_scenario_parallel_equals_serial(self):
        # SDN4 exercises the minimality post-pass with several changes
        # in flight, i.e. actual multi-job waves.
        serial = ALL_SCENARIOS["SDN4"]().setup().diagnose(
            DiffProvOptions(minimize=True, replay_cache=False)
        )
        parallel = ALL_SCENARIOS["SDN4"]().setup().diagnose(
            DiffProvOptions(minimize=True, workers=2)
        )
        assert parallel.canonical_json() == serial.canonical_json()
        assert parallel.replays == serial.replays


class TestCorruption:
    """A damaged snapshot is a recorded miss, never a crash.

    Regression: a truncated pickle in the cache used to raise out of
    ``pickle.loads`` mid-minimization and take the whole diagnosis
    down (docs/resilience.md).
    """

    def _warm_cache(self, forwarding_program):
        execution = _forwarding_execution(forwarding_program)
        cache = ReplayCache()
        replay(forwarding_program, execution.log, cache=cache)
        return execution, cache

    def test_truncated_pickle_is_a_quarantined_miss(self, forwarding_program):
        execution, cache = self._warm_cache(forwarding_program)
        # Truncate every framed payload mid-pickle, as a half-written
        # snapshot file would be after a crash.
        for entry in cache._entries.values():
            entry.payload = entry.payload[: max(1, len(entry.payload) // 2)]
        result = replay(forwarding_program, execution.log, cache=cache)
        assert result.graph is not None
        stats = cache.stats()
        assert stats["corrupt"] >= 1
        assert stats["hits"] == 0

    def test_bit_rot_is_a_quarantined_miss(self, forwarding_program):
        execution, cache = self._warm_cache(forwarding_program)
        for entry in cache._entries.values():
            flipped = bytearray(entry.payload)
            flipped[-1] ^= 0xFF
            entry.payload = bytes(flipped)
        replay(forwarding_program, execution.log, cache=cache)
        assert cache.stats()["corrupt"] >= 1

    def test_quarantine_evicts_and_releases_bytes(self, forwarding_program):
        execution, cache = self._warm_cache(forwarding_program)
        entries_before = len(cache)
        for entry in cache._entries.values():
            entry.payload = entry.payload[:10]
        replay(forwarding_program, execution.log, cache=cache)
        assert len(cache) <= entries_before
        assert cache.bytes_stored >= 0

    def test_corruption_is_metered(self, forwarding_program):
        from repro.observability import Telemetry

        execution, cache = self._warm_cache(forwarding_program)
        for entry in cache._entries.values():
            entry.payload = entry.payload[:10]
        telemetry = Telemetry()
        replay(forwarding_program, execution.log, cache=cache,
               telemetry=telemetry)
        counters = telemetry.snapshot()["counters"]
        assert counters.get("replay.cache.corrupt", 0) >= 1

    def test_healthy_cache_reports_zero_corruption(self, forwarding_program):
        execution, cache = self._warm_cache(forwarding_program)
        replay(forwarding_program, execution.log, cache=cache)
        assert cache.stats()["corrupt"] == 0
