"""Tests for seed finding (Section 4.2) and taint tracking (4.3/4.4)."""

import pytest

from repro.core.equivalence import EquivalenceRelation
from repro.core.seeds import find_seed, seed_path
from repro.core.taint import TaintAnnotation, seed_env, seed_var
from repro.datalog import Engine, parse_program, parse_tuple
from repro.datalog.parser import parse_expr
from repro.provenance import ProvenanceRecorder, provenance_query


PROGRAM = """
table stim(X, Y) event immutable.
table cfg(K, V) mutable.
table mid(X, Y, Z) event.
table out(X, W).

r1 mid(X, Y, Z) :- stim(X, Y), cfg('scale', Z).
r2 out(X, W) :- mid(X, Y, Z), W := 2 * Y + Z.
"""


@pytest.fixture
def annotated():
    program = parse_program(PROGRAM)
    recorder = ProvenanceRecorder()
    engine = Engine(program, recorder=recorder)
    engine.insert(parse_tuple("cfg('scale', 3)"))
    engine.run()
    engine.insert(parse_tuple("stim(1, 5)"))
    engine.run()
    tree = provenance_query(recorder.graph, parse_tuple("out(1, 13)"))
    seed = find_seed(tree.tuple_root)
    annotation = TaintAnnotation(program, tree.tuple_root, seed)
    return program, tree, seed, annotation


class TestFindSeed:
    def test_seed_is_the_stimulus(self, annotated):
        _, _, seed, _ = annotated
        assert seed.tuple == parse_tuple("stim(1, 5)")
        assert seed.is_base

    def test_seed_path_leads_to_root(self, annotated):
        _, tree, _, _ = annotated
        path = seed_path(tree.tuple_root)
        assert path[0].tuple.table == "stim"
        assert path[-1] is tree.tuple_root
        assert [n.tuple.table for n in path] == ["stim", "mid", "out"]

    def test_config_is_not_the_seed(self, annotated):
        # cfg appeared before the stimulus, so the latest-APPEAR descent
        # must never choose it.
        _, _, seed, _ = annotated
        assert seed.tuple.table != "cfg"


class TestTaintAnnotation:
    def test_seed_fields_have_identity_formulas(self, annotated):
        _, _, seed, annotation = annotated
        assert annotation.formulas_for(seed) == [seed_var(0), seed_var(1)]

    def test_untainted_base_has_no_formulas(self, annotated):
        _, tree, _, annotation = annotated
        mid = tree.tuple_root.children[0]
        cfg = mid.children[1]
        assert cfg.tuple.table == "cfg"
        assert annotation.formulas_for(cfg) == [None, None]

    def test_formulas_propagate_through_assignments(self, annotated):
        # W := 2*Y + Z with Y tainted ($1) and Z untainted (3):
        # the formula for W must evaluate to 2*$1 + 3.
        _, tree, _, annotation = annotated
        formulas = annotation.formulas_for(tree.tuple_root)
        assert formulas[0] == seed_var(0)
        w_formula = formulas[1]
        assert w_formula is not None
        assert w_formula.evaluate({"$1": 5}) == 13
        assert w_formula.evaluate({"$1": 10}) == 23

    def test_var_formulas_recorded_for_derivations(self, annotated):
        _, tree, _, annotation = annotated
        var_formulas = annotation.var_formulas_for(tree.tuple_root)
        assert "Y" in var_formulas

    def test_disabled_annotation_has_no_taints(self, annotated):
        program, tree, seed, _ = annotated
        disabled = TaintAnnotation(program, tree.tuple_root, seed, enabled=False)
        assert disabled.formulas_for(seed) == [None, None]

    def test_foreign_node_rejected(self, annotated):
        program, tree, seed, annotation = annotated
        from repro.provenance.tree import TupleNode

        foreign = TupleNode(parse_tuple("out(9, 9)"), "n", None, None, 0, None, None)
        with pytest.raises(Exception):
            annotation.formulas_for(foreign)


class TestSeedEnv:
    def test_env_binds_dollar_vars(self):
        env = seed_env(parse_tuple("stim(7, 8)"))
        assert env == {"$0": 7, "$1": 8}

    def test_formula_evaluation_under_other_seed(self):
        formula = parse_expr("2 * $1 + 3")
        assert formula.evaluate(seed_env(parse_tuple("stim(1, 10)"))) == 23


class TestEquivalenceRelation:
    def test_expected_tuple_applies_taint(self, annotated):
        program, tree, seed, annotation = annotated
        equiv = EquivalenceRelation(annotation, parse_tuple("stim(2, 7)"))
        expected = equiv.expected_tuple(tree.tuple_root)
        # out(X, 2*Y+Z) with X=2, Y=7, Z=3 (untainted, from the good run).
        assert expected == parse_tuple("out(2, 17)")

    def test_untainted_fields_stay_literal(self, annotated):
        program, tree, seed, annotation = annotated
        equiv = EquivalenceRelation(annotation, parse_tuple("stim(2, 7)"))
        mid = tree.tuple_root.children[0]
        cfg = mid.children[1]
        assert equiv.expected_tuple(cfg) == cfg.tuple

    def test_override_takes_precedence(self, annotated):
        program, tree, seed, annotation = annotated
        equiv = EquivalenceRelation(annotation, parse_tuple("stim(2, 7)"))
        mid = tree.tuple_root.children[0]
        cfg = mid.children[1]
        equiv.add_override(cfg.tuple, parse_tuple("cfg('scale', 9)"))
        assert equiv.expected_tuple(cfg) == parse_tuple("cfg('scale', 9)")

    def test_tuples_equivalent(self, annotated):
        program, tree, seed, annotation = annotated
        equiv = EquivalenceRelation(annotation, parse_tuple("stim(2, 7)"))
        assert equiv.tuples_equivalent(tree.tuple_root, parse_tuple("out(2, 17)"))
        assert not equiv.tuples_equivalent(tree.tuple_root, parse_tuple("out(2, 18)"))
        assert not equiv.tuples_equivalent(tree.tuple_root, parse_tuple("mid(2, 7, 3)"))
