"""Unit tests for the DiffProv algorithm on a small, controlled program.

The full-size scenario tests live under tests/integration/; these cover
the algorithm's behaviours one by one: guided base-tuple insertion,
condition repair with inversion, competitor removal, selector blockers,
the failure taxonomy, and the postcondition that applying Δ(B→G)
aligns the trees.
"""

import pytest

from repro.core import DiffProv, DiffProvOptions
from repro.datalog import parse_program, parse_tuple
from repro.replay import Execution

PROGRAM = """
table stim(Id, Y) event immutable.
table cfg(K, V) mutable.
table frozen(K, V) immutable.
table mid(Id, W) event.
table out(Id, W).

r1 mid(Id, W) :- stim(Id, Y), cfg('scale', Z), W := Y + Z.
r2 out(Id, W) :- mid(Id, W).
"""


def build_pair(good_cfg, bad_cfg, program_text=PROGRAM):
    program = parse_program(program_text)
    good = Execution(program, name="good")
    for text in good_cfg:
        good.insert(parse_tuple(text))
    good.insert(parse_tuple("stim(1, 5)"))
    bad = Execution(program, name="bad")
    for text in bad_cfg:
        bad.insert(parse_tuple(text))
    bad.insert(parse_tuple("stim(2, 5)"))
    return program, good, bad


class TestConfigurationFix:
    def test_wrong_config_value_is_modified(self):
        program, good, bad = build_pair(["cfg('scale', 3)"], ["cfg('scale', 9)"])
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 8)"), parse_tuple("out(2, 14)")
        )
        assert report.success
        assert report.num_changes == 1
        change = report.changes[0]
        assert change.insert == parse_tuple("cfg('scale', 3)")
        assert change.remove == (parse_tuple("cfg('scale', 9)"),)

    def test_missing_config_is_inserted(self):
        program = parse_program(PROGRAM + "\nrd out(Id, 0) :- stim(Id, Y).\n")
        good = Execution(program, name="good")
        good.insert(parse_tuple("cfg('scale', 3)"))
        good.insert(parse_tuple("stim(1, 5)"))
        bad = Execution(program, name="bad")
        bad.insert(parse_tuple("stim(2, 5)"))
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 8)"), parse_tuple("out(2, 0)")
        )
        assert report.success
        assert report.changes[0].insert == parse_tuple("cfg('scale', 3)")

    def test_verified_flag_set(self):
        program, good, bad = build_pair(["cfg('scale', 3)"], ["cfg('scale', 9)"])
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 8)"), parse_tuple("out(2, 14)")
        )
        assert report.verified

    def test_no_difference_no_changes(self):
        program, good, bad = build_pair(["cfg('scale', 3)"], ["cfg('scale', 3)"])
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 8)"), parse_tuple("out(2, 8)")
        )
        assert report.success
        assert report.num_changes == 0


class TestFailureTaxonomy:
    def test_seed_type_mismatch(self):
        program, good, bad = build_pair(["cfg('scale', 3)"], ["cfg('scale', 3)"])
        report = DiffProv(program).diagnose(
            good,
            bad,
            parse_tuple("out(1, 8)"),
            parse_tuple("cfg('scale', 3)"),
        )
        assert not report.success
        assert report.failure_category == "seed-type-mismatch"

    def test_immutable_change_required(self):
        frozen_program = PROGRAM.replace(
            "r1 mid(Id, W) :- stim(Id, Y), cfg('scale', Z), W := Y + Z.",
            "r1 mid(Id, W) :- stim(Id, Y), frozen('scale', Z), W := Y + Z.",
        )
        program, good, bad = build_pair(
            ["frozen('scale', 3)"], ["frozen('scale', 9)"], frozen_program
        )
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 8)"), parse_tuple("out(2, 14)")
        )
        assert not report.success
        assert report.failure_category == "immutable-change-required"
        # The required change is surfaced as a clue (Section 4.7).
        assert "frozen" in str(report.failure)

    def test_failure_report_has_summary(self):
        program, good, bad = build_pair(["cfg('scale', 3)"], ["cfg('scale', 3)"])
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 8)"), parse_tuple("cfg('scale', 3)")
        )
        assert "seed-type-mismatch" in report.summary()


class TestConditionRepairPath:
    PROGRAM = """
    table pkt(Id, Dst) event immutable.
    table route(Pfx, Port) mutable.
    table sent(Id, Dst, Port).

    r1 sent(Id, Dst, Port) :- pkt(Id, Dst), route(Pfx, Port),
        ip_in_prefix(Dst, Pfx) == true.
    """

    def test_querying_a_never_observed_event_fails_cleanly(self):
        # A provenance system can only explain observed events; the bad
        # event must be something that actually happened (here the
        # fallback in the test below).
        from repro.errors import ReproError
        from repro.provenance import provenance_query

        program = parse_program(self.PROGRAM)
        execution = Execution(program, name="net")
        execution.insert(parse_tuple("route(4.3.2.0/24, 7)"))
        execution.insert(parse_tuple("pkt(2, 4.3.3.1)"))
        with pytest.raises(ReproError):
            provenance_query(execution.graph, parse_tuple("sent(2, 4.3.3.1, 7)"))

    def test_repair_produces_widened_entry(self):
        program = parse_program(
            self.PROGRAM
            + """
            table fallback(Id, Dst).
            r2 fallback(Id, Dst) :- pkt(Id, Dst).
            """
        )
        execution = Execution(program, name="net")
        execution.insert(parse_tuple("route(4.3.2.0/24, 7)"))
        execution.insert(parse_tuple("pkt(1, 4.3.2.1)"))
        execution.insert(parse_tuple("pkt(2, 4.3.3.1)"))
        report = DiffProv(program).diagnose(
            execution,
            execution,
            parse_tuple("sent(1, 4.3.2.1, 7)"),
            parse_tuple("fallback(2, 4.3.3.1)"),
        )
        # Seeds are both pkt events, so the comparison is valid; the
        # only way to align is widening the route prefix.
        assert report.success
        assert report.num_changes == 1
        assert report.changes[0].insert == parse_tuple("route(4.3.2.0/23, 7)")


class TestInversionRepairPath:
    PROGRAM = """
    table stim(Id, Q) event immutable.
    table knob(K, X) mutable.
    table hit(Id).
    table alt(Id).

    r1 hit(Id) :- stim(Id, Q), knob('x', X), Q == X + 2.
    r2 alt(Id) :- stim(Id, Q).
    """

    def test_inverted_knob_value(self):
        # Good stim has Q=9 and knob x=7 (9 == 7+2 holds); bad stim has
        # Q=12, so the knob must become 10 — found by inverting X+2.
        program = parse_program(self.PROGRAM)
        execution = Execution(program, name="sys")
        execution.insert(parse_tuple("knob('x', 7)"))
        execution.insert(parse_tuple("stim(1, 9)"))
        execution.insert(parse_tuple("stim(2, 12)"))
        report = DiffProv(program).diagnose(
            execution, execution, parse_tuple("hit(1)"), parse_tuple("alt(2)")
        )
        assert report.success
        changes = {c.insert for c in report.changes}
        assert parse_tuple("knob('x', 10)") in changes

    def test_inversion_disabled_fails_with_clue(self):
        program = parse_program(self.PROGRAM)
        execution = Execution(program, name="sys")
        execution.insert(parse_tuple("knob('x', 7)"))
        execution.insert(parse_tuple("stim(1, 9)"))
        execution.insert(parse_tuple("stim(2, 12)"))
        options = DiffProvOptions(enable_inversion=False)
        report = DiffProv(program, options).diagnose(
            execution, execution, parse_tuple("hit(1)"), parse_tuple("alt(2)")
        )
        assert not report.success
        assert report.failure_category == "non-invertible"


class TestSelectorBlockers:
    PROGRAM = """
    table pkt(Id, Dst) event immutable.
    table route(Prio, Pfx, Port) mutable.
    table sent(Id, Dst, Port).

    r1 sent(Id, Dst, Port) :- pkt(Id, Dst),
        route(Prio, Pfx, Port) argmax<Prio>,
        ip_in_prefix(Dst, Pfx) == true.
    """

    def test_hijacking_entry_removed(self):
        program = parse_program(self.PROGRAM)
        execution = Execution(program, name="net")
        execution.insert(parse_tuple("route(1, 0.0.0.0/0, 7)"))
        execution.insert(parse_tuple("pkt(1, 9.9.9.9)"))
        # The overlapping high-priority entry arrives, then hijacks pkt 2.
        execution.insert(parse_tuple("route(9, 9.9.9.0/24, 3)"))
        execution.insert(parse_tuple("pkt(2, 9.9.9.9)"))
        report = DiffProv(program).diagnose(
            execution,
            execution,
            parse_tuple("sent(1, 9.9.9.9, 7)"),
            parse_tuple("sent(2, 9.9.9.9, 3)"),
        )
        assert report.success
        assert report.num_changes == 1
        assert report.changes[0].remove == (parse_tuple("route(9, 9.9.9.0/24, 3)"),)


class TestMultiRound:
    PROGRAM = """
    table stim(Id, Y) event immutable.
    table cfg(K, V) mutable.
    table stage1(Id, Y) event.
    table stage2(Id).
    table final(Id).
    table fallback(Id).

    r1 stage1(Id, Y) :- stim(Id, Y), cfg('first', Y).
    r2 stage2(Id) :- stage1(Id, Y), cfg('second', Y).
    r3 final(Id) :- stage2(Id).
    r4 fallback(Id) :- stim(Id, Y).
    """

    def test_two_faults_two_rounds(self):
        program = parse_program(self.PROGRAM)
        good = Execution(program, name="good")
        good.insert(parse_tuple("cfg('first', 5)"))
        good.insert(parse_tuple("cfg('second', 5)"))
        good.insert(parse_tuple("stim(1, 5)"))
        bad = Execution(program, name="bad")
        # Both stages are misconfigured; fixing the first only reveals
        # the second on the next roll-forward.
        bad.insert(parse_tuple("cfg('first', 6)"))
        bad.insert(parse_tuple("cfg('second', 7)"))
        bad.insert(parse_tuple("stim(2, 5)"))
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("final(1)"), parse_tuple("fallback(2)")
        )
        assert report.success
        assert report.num_changes == 2
        assert len(report.rounds) >= 2
        assert report.changes_per_round == [1, 1]

    def test_max_rounds_bounds_work(self):
        program = parse_program(self.PROGRAM)
        good = Execution(program, name="good")
        good.insert(parse_tuple("cfg('first', 5)"))
        good.insert(parse_tuple("cfg('second', 5)"))
        good.insert(parse_tuple("stim(1, 5)"))
        bad = Execution(program, name="bad")
        bad.insert(parse_tuple("cfg('first', 6)"))
        bad.insert(parse_tuple("cfg('second', 7)"))
        bad.insert(parse_tuple("stim(2, 5)"))
        options = DiffProvOptions(max_rounds=1)
        report = DiffProv(program, options).diagnose(
            good, bad, parse_tuple("final(1)"), parse_tuple("fallback(2)")
        )
        assert not report.success


class TestTimings:
    def test_phase_timings_recorded(self):
        program, good, bad = build_pair(["cfg('scale', 3)"], ["cfg('scale', 9)"])
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 8)"), parse_tuple("out(2, 14)")
        )
        for key in ("query", "find_seed", "divergence", "make_appear", "replay"):
            assert key in report.timings
        assert report.reasoning_seconds >= 0
        assert report.total_seconds >= report.reasoning_seconds
