"""Tests for diagnosis reports and the failure taxonomy."""

import pytest

from repro.core.report import DiagnosisReport, RoundInfo
from repro.datalog import parse_tuple
from repro.errors import (
    DiagnosisFailure,
    ImmutableChangeRequired,
    NonInvertibleError,
    SeedTypeMismatch,
)
from repro.replay import Change


def make_report(**overrides):
    defaults = dict(
        success=True,
        changes=[Change(insert=parse_tuple("cfg('a', 1)"))],
        rounds=[RoundInfo(1, parse_tuple("x(1)"), parse_tuple("x(2)"),
                          [Change(insert=parse_tuple("cfg('a', 1)"))])],
        timings={"query": 0.5, "replay": 1.0, "divergence": 0.01,
                 "make_appear": 0.02, "find_seed": 0.001},
        good_tree_size=100,
        bad_tree_size=120,
        good_seed=parse_tuple("pkt(1)"),
        bad_seed=parse_tuple("pkt(2)"),
        replays=2,
        verified=True,
    )
    defaults.update(overrides)
    return DiagnosisReport(**defaults)


class TestSuccessReports:
    def test_num_changes(self):
        assert make_report().num_changes == 1

    def test_changes_per_round(self):
        assert make_report().changes_per_round == [1]

    def test_failure_category_none_on_success(self):
        assert make_report().failure_category is None

    def test_summary_mentions_changes_and_verification(self):
        text = make_report().summary()
        assert "1 root-cause change" in text
        assert "verified" in text
        assert "cfg('a', 1)" in text

    def test_root_causes(self):
        assert make_report().root_causes() == ["insert cfg('a', 1)"]

    def test_timing_views(self):
        report = make_report()
        assert report.total_seconds == pytest.approx(1.531)
        # Reasoning excludes replay and the initial tree queries.
        assert report.reasoning_seconds == pytest.approx(0.031)


class TestFailureCategories:
    @pytest.mark.parametrize(
        "failure,category",
        [
            (SeedTypeMismatch(parse_tuple("a(1)"), parse_tuple("b(1)")),
             "seed-type-mismatch"),
            (ImmutableChangeRequired(parse_tuple("link(1)")),
             "immutable-change-required"),
            (NonInvertibleError("no inverse"), "non-invertible"),
            (DiagnosisFailure("wedged"), "stuck"),
            (None, "max-rounds"),
        ],
    )
    def test_category_mapping(self, failure, category):
        report = make_report(success=False, failure=failure, verified=False)
        assert report.failure_category == category

    def test_failure_summary_mentions_category_and_attempts(self):
        report = make_report(
            success=False,
            failure=DiagnosisFailure("wedged"),
            verified=False,
        )
        text = report.summary()
        assert "stuck" in text
        assert "attempted changes" in text

    def test_seed_type_mismatch_message_names_both(self):
        failure = SeedTypeMismatch(parse_tuple("pkt(1)"), parse_tuple("cfg(1)"))
        assert "pkt" in str(failure) and "cfg" in str(failure)

    def test_immutable_message_names_tuple(self):
        failure = ImmutableChangeRequired(parse_tuple("link('a', 1)"), "why")
        assert "link('a', 1)" in str(failure)
        assert "why" in str(failure)


class TestRoundInfo:
    def test_repr(self):
        info = RoundInfo(2, parse_tuple("x(1)"), parse_tuple("x(2)"), [])
        assert "#2" in repr(info)


class TestPhaseBreakdown:
    def test_summary_renders_phase_breakdown(self):
        report = make_report(telemetry={"phases": [
            {"name": "diffprov.diagnose", "seconds": 2.0, "count": 1},
            {"name": "diffprov.replay", "seconds": 1.0, "count": 4},
        ]})
        text = report.summary()
        assert "phase breakdown:" in text
        assert "diffprov.replay" in text
        assert "x4" in text
        assert "50.0%" in text  # share of the root diagnosis span

    def test_zero_span_phases_render_with_zeros_not_errors(self):
        """Regression: a phase with no spans used to crash the
        formatter with a None seconds/count."""
        report = make_report(telemetry={"phases": [
            {"name": "diffprov.diagnose", "seconds": 2.0, "count": 1},
            {"name": "diffprov.idle", "seconds": None, "count": None},
            {"name": "diffprov.sparse"},  # degraded run: bare entry
            "not-a-dict",  # hostile input is skipped, not fatal
        ]})
        text = report.summary()
        assert "diffprov.idle" in text
        assert "diffprov.sparse" in text
        assert "0.000000s" in text
        assert "not-a-dict" not in text

    def test_zero_total_avoids_division_by_zero(self):
        report = make_report(telemetry={"phases": [
            {"name": "diffprov.instant", "seconds": 0.0, "count": 1},
        ]})
        assert "  0.0%" in report.summary()

    def test_no_phases_means_no_breakdown_section(self):
        assert "phase breakdown" not in make_report().summary()
        assert "phase breakdown" not in make_report(
            telemetry={"phases": []}
        ).summary()
