"""Tests for the Section 4.8/4.9 extensions: Δ minimization, automatic
reference discovery, and distributed query accounting."""

import pytest

from repro.core import DiffProv, DiffProvOptions
from repro.core.autoref import auto_diagnose, propose_references, similarity
from repro.datalog import parse_program, parse_tuple
from repro.provenance.distributed import PartitionedProvenance
from repro.provenance.query import provenance_query
from repro.replay import Execution
from repro.scenarios import SDN1BrokenFlowEntry


@pytest.fixture(scope="module")
def sdn1():
    return SDN1BrokenFlowEntry(background_packets=8).setup()


class TestMinimization:
    # Competitor removals are proposed from the rule's atom pattern, but
    # here the V > 0 condition already excludes the bad value at
    # runtime, so the removal half of the modification is unnecessary —
    # exactly the kind of non-minimal Δ Section 4.9 admits.
    PROGRAM = """
    table stim(Id, Y) event immutable.
    table cfg(K, V) mutable.
    table other(K, V) mutable.
    table out(Id).
    table fallback(Id).

    r1 out(Id) :- stim(Id, Y), cfg('a', V), other('x', W), V > 0.
    rf fallback(Id) :- stim(Id, Y).
    """

    def build(self):
        program = parse_program(self.PROGRAM)
        good = Execution(program, name="good")
        good.insert(parse_tuple("cfg('a', 5)"))
        good.insert(parse_tuple("other('x', 1)"))
        good.insert(parse_tuple("stim(1, 5)"))
        bad = Execution(program, name="bad")
        bad.insert(parse_tuple("cfg('a', -3)"))
        bad.insert(parse_tuple("other('x', 1)"))
        bad.insert(parse_tuple("stim(2, 5)"))
        return program, good, bad

    def test_unminimized_diagnosis_includes_removal(self):
        program, good, bad = self.build()
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1)"), parse_tuple("fallback(2)")
        )
        assert report.success
        assert report.num_changes == 1
        assert report.changes[0].is_modification

    def test_minimize_narrows_modification_to_insert(self):
        program, good, bad = self.build()
        options = DiffProvOptions(minimize=True)
        report = DiffProv(program, options).diagnose(
            good, bad, parse_tuple("out(1)"), parse_tuple("fallback(2)")
        )
        assert report.success
        assert report.num_changes == 1
        change = report.changes[0]
        assert change.insert == parse_tuple("cfg('a', 5)")
        assert change.remove == ()  # the removal was unnecessary

    def test_minimized_delta_still_aligns(self):
        program, good, bad = self.build()
        options = DiffProvOptions(minimize=True)
        report = DiffProv(program, options).diagnose(
            good, bad, parse_tuple("out(1)"), parse_tuple("fallback(2)")
        )
        anchor = bad.log.index_of_insert(parse_tuple("stim(2, 5)"))
        replayed = bad.replay(report.changes, anchor)
        assert replayed.alive(parse_tuple("out(2)"))

    def test_necessary_changes_survive_minimization(self, sdn1):
        report = sdn1.diagnose(DiffProvOptions(minimize=True))
        assert report.success
        assert report.num_changes == 1

    def test_scenario_diagnoses_unchanged_by_minimization(self):
        from repro.scenarios import SDN4MultipleFaultyEntries

        scenario = SDN4MultipleFaultyEntries(background_packets=6).setup()
        plain = scenario.diagnose()
        minimized = scenario.diagnose(DiffProvOptions(minimize=True))
        assert plain.changes == minimized.changes


class TestAutoReference:
    def test_similarity_counts_matching_fields(self):
        a = parse_tuple("delivered('web2', 1, 1.1.1.1, 2.2.2.2)")
        b = parse_tuple("delivered('web2', 2, 1.1.1.1, 2.2.2.2)")
        assert similarity(a, b) == 3

    def test_propose_references_same_table_only(self, sdn1):
        candidates = propose_references(
            sdn1.bad_execution.graph, sdn1.bad_event
        )
        assert candidates
        assert all(c.event.table == "delivered" for c in candidates)
        assert all(c.event != sdn1.bad_event for c in candidates)

    def test_candidates_ranked_by_similarity(self, sdn1):
        candidates = propose_references(
            sdn1.bad_execution.graph, sdn1.bad_event
        )
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_auto_diagnose_finds_the_broken_entry(self, sdn1):
        result = auto_diagnose(
            sdn1.program,
            sdn1.good_execution,
            sdn1.bad_execution,
            sdn1.bad_event,
            limit=15,
        )
        assert result.found
        # The discovered reference behaves differently (it reached the
        # DPI-protected server), and the diagnosis matches the operator
        # supplied one: the widened untrusted-subnet entry.
        assert result.reference.args[0] in ("web1", "dpi")
        assert result.report.num_changes == 1
        assert result.report.changes[0].insert.table == "flowEntry"

    def test_consistent_references_align_with_zero_changes(self, sdn1):
        # Background deliveries at web2 are events the network treats
        # the same way as the bad one: DiffProv aligns them with zero
        # changes, which is why auto_diagnose skips them.
        background = [
            c.event
            for c in propose_references(sdn1.bad_execution.graph, sdn1.bad_event)
            if c.event.args[0] == "web2"
        ]
        assert background
        report = DiffProv(sdn1.program).diagnose(
            sdn1.good_execution,
            sdn1.bad_execution,
            background[0],
            sdn1.bad_event,
        )
        assert report.success
        assert report.num_changes == 0


class TestDistributedQueries:
    def test_partitions_by_node(self, sdn1):
        partitioned = PartitionedProvenance(sdn1.good_execution.graph)
        assert "s1" in partitioned.nodes()
        assert sum(partitioned.partition_sizes().values()) == len(
            sdn1.good_execution.graph
        )

    def test_query_returns_same_tree_as_monolithic(self, sdn1):
        graph = sdn1.good_execution.graph
        partitioned = PartitionedProvenance(graph)
        tree, stats = partitioned.query(sdn1.good_event)
        monolithic = provenance_query(graph, sdn1.good_event)
        assert tree.size() == monolithic.size()
        assert tree.tuple_root.render() == monolithic.tuple_root.render()

    def test_query_touches_only_on_path_fraction(self, sdn1):
        partitioned = PartitionedProvenance(sdn1.good_execution.graph)
        tree, stats = partitioned.query(sdn1.good_event)
        # No global materialization: the query touches a strict subset
        # of the graph (background traffic stays untouched).
        assert 0 < stats.fetched_fraction < 0.5
        assert stats.vertices_fetched <= tree.size()

    def test_only_on_path_nodes_contacted(self, sdn1):
        partitioned = PartitionedProvenance(sdn1.good_execution.graph)
        _, stats = partitioned.query(sdn1.good_event)
        # The good packet takes s1-s2-s6-web1(+dpi mirror): switches on
        # the general path (s3, s4, s5) are never contacted.
        assert "s3" not in stats.nodes_contacted
        assert "s4" not in stats.nodes_contacted
        assert {"s1", "s2", "s6"} <= stats.nodes_contacted

    def test_cross_node_fetches_bounded_by_hops(self, sdn1):
        partitioned = PartitionedProvenance(sdn1.good_execution.graph)
        _, stats = partitioned.query(sdn1.good_event)
        assert 0 < stats.cross_node_fetches < stats.vertices_fetched
