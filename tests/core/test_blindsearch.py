"""Tests for the blind-search baseline (the §4.7 complexity comparison)."""

import pytest

from repro.core.blindsearch import blind_search, candidate_changes
from repro.datalog import parse_program, parse_tuple
from repro.replay import Execution

PROGRAM = """
table stim(Id, Y) event immutable.
table cfg(K, V) mutable.
table out(Id).
table fallback(Id).

r1 out(Id) :- stim(Id, Y), cfg('scale', Y).
r2 fallback(Id) :- stim(Id, Y).
"""


def build(bad_value):
    program = parse_program(PROGRAM)
    good = Execution(program, name="good")
    good.insert(parse_tuple("cfg('scale', 5)"))
    good.insert(parse_tuple("stim(1, 5)"))
    bad = Execution(program, name="bad")
    bad.insert(parse_tuple(f"cfg('scale', {bad_value})"))
    bad.insert(parse_tuple("stim(2, 5)"))
    return program, good, bad


class TestCandidates:
    def test_only_mutable_differences(self):
        _, good, bad = build(9)
        candidates = candidate_changes(good, bad)
        # cfg differs (one insert + one removal); the immutable stim
        # events must not appear.
        described = {c.describe() for c in candidates}
        assert described == {
            "insert cfg('scale', 5)",
            "remove cfg('scale', 9)",
        }

    def test_identical_runs_have_no_candidates(self):
        _, good, _ = build(9)
        assert candidate_changes(good, good) == []


class TestBlindSearch:
    def test_finds_single_fix(self):
        _, good, bad = build(9)
        result = blind_search(good, bad, parse_tuple("out(2)"))
        assert result.found
        assert result.attempts >= 1
        assert any(
            c.insert == parse_tuple("cfg('scale', 5)") for c in result.changes
        )

    def test_replay_count_tracks_attempts(self):
        _, good, bad = build(9)
        result = blind_search(good, bad, parse_tuple("out(2)"))
        assert result.replays == result.attempts

    def test_gives_up_when_no_solution(self):
        _, good, bad = build(9)
        result = blind_search(good, bad, parse_tuple("out(777)"))
        assert not result.found
        assert result.changes == []

    def test_attempt_budget_respected(self):
        _, good, bad = build(9)
        result = blind_search(
            good, bad, parse_tuple("out(777)"), max_attempts=3
        )
        assert not result.found
        assert result.attempts <= 3
