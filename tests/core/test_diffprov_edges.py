"""Edge-case tests for diagnose(): trivial inputs, options, timing."""

import pytest

from repro.core import DiffProv, DiffProvOptions
from repro.datalog import parse_program, parse_tuple
from repro.errors import ReproError
from repro.replay import Execution

PROGRAM = """
table stim(Id, Y) event immutable.
table cfg(K, V) mutable.
table out(Id, V).
table fallback(Id).

r1 out(Id, V) :- stim(Id, Y), cfg('a', V).
r2 fallback(Id) :- stim(Id, Y).
"""


@pytest.fixture
def network():
    program = parse_program(PROGRAM)
    execution = Execution(program)
    execution.insert(parse_tuple("cfg('a', 5)"))
    execution.insert(parse_tuple("stim(1, 7)"))
    execution.insert(parse_tuple("stim(2, 7)"))
    return program, execution


class TestTrivialInputs:
    def test_same_event_as_both_sides(self, network):
        program, execution = network
        event = parse_tuple("out(1, 5)")
        report = DiffProv(program).diagnose(execution, execution, event, event)
        assert report.success
        assert report.num_changes == 0

    def test_equivalent_events_zero_changes(self, network):
        program, execution = network
        report = DiffProv(program).diagnose(
            execution,
            execution,
            parse_tuple("out(1, 5)"),
            parse_tuple("out(2, 5)"),
        )
        assert report.success
        assert report.num_changes == 0

    def test_nonexistent_bad_event_raises(self, network):
        # A provenance system can only explain observed events; asking
        # about a fabricated one is operator error, not a diagnosis.
        program, execution = network
        with pytest.raises(ReproError):
            DiffProv(program).diagnose(
                execution,
                execution,
                parse_tuple("out(1, 5)"),
                parse_tuple("out(99, 5)"),
            )

    def test_nonexistent_good_event_raises(self, network):
        program, execution = network
        with pytest.raises(ReproError):
            DiffProv(program).diagnose(
                execution,
                execution,
                parse_tuple("out(99, 5)"),
                parse_tuple("fallback(2)"),
            )


class TestOptions:
    def build_faulty(self):
        program = parse_program(PROGRAM)
        good = Execution(program, name="good")
        good.insert(parse_tuple("cfg('a', 5)"))
        good.insert(parse_tuple("stim(1, 7)"))
        bad = Execution(program, name="bad")
        bad.insert(parse_tuple("cfg('a', 9)"))
        bad.insert(parse_tuple("stim(2, 7)"))
        return program, good, bad

    def test_verify_false_still_succeeds(self):
        program, good, bad = self.build_faulty()
        options = DiffProvOptions(verify=False)
        report = DiffProv(program, options).diagnose(
            good, bad, parse_tuple("out(1, 5)"), parse_tuple("fallback(2)")
        )
        assert report.success
        assert not report.verified

    def test_max_competitors_zero_gives_insert_only(self):
        program, good, bad = self.build_faulty()
        options = DiffProvOptions(max_competitors=0)
        report = DiffProv(program, options).diagnose(
            good, bad, parse_tuple("out(1, 5)"), parse_tuple("fallback(2)")
        )
        assert report.success
        change = report.changes[0]
        assert change.insert == parse_tuple("cfg('a', 5)")
        assert change.remove == ()

    def test_default_includes_competitor_removal(self):
        program, good, bad = self.build_faulty()
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 5)"), parse_tuple("fallback(2)")
        )
        assert report.changes[0].remove == (parse_tuple("cfg('a', 9)"),)

    def test_replays_counted(self):
        program, good, bad = self.build_faulty()
        report = DiffProv(program).diagnose(
            good, bad, parse_tuple("out(1, 5)"), parse_tuple("fallback(2)")
        )
        assert report.replays >= 1
        assert bad.replay_count >= report.replays


class TestHistoricalQueries:
    def test_good_event_from_the_past(self):
        """A reference that was later deleted is still queryable at its
        own time (SDN3's 'good example observed in the past')."""
        program = parse_program(PROGRAM)
        execution = Execution(program)
        execution.insert(parse_tuple("cfg('a', 5)"))
        execution.insert(parse_tuple("stim(1, 7)"))
        # The config changes afterwards; new stimuli behave differently.
        execution.delete(parse_tuple("cfg('a', 5)"))
        execution.insert(parse_tuple("cfg('a', 9)"))
        execution.insert(parse_tuple("stim(2, 7)"))
        report = DiffProv(program).diagnose(
            execution,
            execution,
            parse_tuple("out(1, 5)"),
            parse_tuple("out(2, 9)"),
        )
        assert report.success
        assert report.num_changes == 1
        assert report.changes[0].insert == parse_tuple("cfg('a', 5)")

    def test_tree_sizes_helper(self, network):
        program, execution = network
        sizes = DiffProv(program).tree_sizes(
            execution,
            execution,
            parse_tuple("out(1, 5)"),
            parse_tuple("out(2, 5)"),
        )
        assert sizes == (sizes[0], sizes[0])
        assert sizes[0] > 0
