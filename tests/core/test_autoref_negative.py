"""Negative paths of the automatic reference search."""

from repro.core.autoref import auto_diagnose, propose_references
from repro.datalog import parse_program, parse_tuple
from repro.replay import Execution

PROGRAM = """
table stim(Id, Y) event immutable.
table cfg(K, V) mutable.
table out(Id, V).
r1 out(Id, V) :- stim(Id, Y), cfg('a', V).
"""


def build_consistent():
    """A healthy system: every event behaves like every other."""
    program = parse_program(PROGRAM)
    execution = Execution(program)
    execution.insert(parse_tuple("cfg('a', 5)"))
    for index in range(1, 5):
        execution.insert(parse_tuple(f"stim({index}, 7)"))
    return program, execution


class TestNoReferenceFound:
    def test_healthy_system_yields_no_diagnosis(self):
        program, execution = build_consistent()
        result = auto_diagnose(
            program, execution, execution, parse_tuple("out(1, 5)")
        )
        # Every candidate aligns with zero changes: there is nothing to
        # diagnose, and the search says so instead of inventing a cause.
        assert not result.found
        assert result.reference is None
        assert len(result.tried) == 3

    def test_no_candidates_at_all(self):
        program = parse_program(PROGRAM)
        execution = Execution(program)
        execution.insert(parse_tuple("cfg('a', 5)"))
        execution.insert(parse_tuple("stim(1, 7)"))
        result = auto_diagnose(
            program, execution, execution, parse_tuple("out(1, 5)")
        )
        assert not result.found
        assert result.tried == []

    def test_limit_bounds_the_search(self):
        program, execution = build_consistent()
        result = auto_diagnose(
            program, execution, execution, parse_tuple("out(1, 5)"), limit=2
        )
        assert len(result.tried) == 2

    def test_propose_respects_limit_and_excludes_self(self):
        program, execution = build_consistent()
        bad_event = parse_tuple("out(1, 5)")
        candidates = propose_references(execution.graph, bad_event, limit=2)
        assert len(candidates) == 2
        assert all(c.event != bad_event for c in candidates)
