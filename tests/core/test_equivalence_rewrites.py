"""Unit tests for the equivalence relation's repair machinery:
per-tuple overrides and field-level rewrites."""

import pytest

from repro.addresses import Prefix
from repro.core.equivalence import EquivalenceRelation
from repro.core.taint import TaintAnnotation
from repro.datalog import Engine, parse_program, parse_tuple
from repro.provenance import ProvenanceRecorder, provenance_query

PROGRAM = """
table stim(Id) event immutable.
table entry(Sw, Pfx, Port) mutable.
table used(Sw, Id, Pfx) event.
table out(Sw, Id).

r1 used(Sw, Id, Pfx) :- stim(Id), entry(Sw, Pfx, Port).
r2 out(Sw, Id) :- used(Sw, Id, Pfx).
"""


@pytest.fixture
def annotated():
    program = parse_program(PROGRAM)
    recorder = ProvenanceRecorder()
    engine = Engine(program, recorder=recorder)
    engine.insert(parse_tuple("entry('s1', 4.3.2.0/24, 1)"))
    engine.insert(parse_tuple("entry('s2', 4.3.2.0/24, 2)"))
    engine.run()
    engine.insert_and_run(parse_tuple("stim(1)"))
    tree = provenance_query(recorder.graph, parse_tuple("out('s1', 1)"))
    from repro.core.seeds import find_seed

    seed = find_seed(tree.tuple_root)
    annotation = TaintAnnotation(program, tree.tuple_root, seed)
    equiv = EquivalenceRelation(annotation, parse_tuple("stim(2)"))
    return tree, equiv


def _entry_node(tree, switch):
    for node in tree.tuple_root.walk():
        if node.tuple.table == "entry" and node.tuple.args[0] == switch:
            return node
    raise AssertionError("entry node not found")


class TestFieldRewrites:
    def test_rewrite_applies_to_matching_slot(self, annotated):
        tree, equiv = annotated
        equiv.add_field_rewrite(
            "entry", 1, Prefix("4.3.2.0/24"), Prefix("4.3.2.0/23")
        )
        node = _entry_node(tree, "s1")
        assert equiv.expected_tuple(node) == parse_tuple(
            "entry('s1', 4.3.2.0/23, 1)"
        )

    def test_rewrite_applies_across_all_occurrences(self, annotated):
        # The point of field rewrites: the SAME value in the SAME slot is
        # rewritten wherever it occurs in the tree (every entry compiled
        # from one policy), not just on the tuple the repair touched.
        tree, equiv = annotated
        equiv.add_field_rewrite(
            "entry", 1, Prefix("4.3.2.0/24"), Prefix("4.3.2.0/23")
        )
        entry_nodes = [
            n for n in tree.tuple_root.walk() if n.tuple.table == "entry"
        ]
        assert entry_nodes
        for node in entry_nodes:
            assert equiv.expected_tuple(node).args[1] == Prefix("4.3.2.0/23")

    def test_rewrites_are_per_slot_not_per_value(self, annotated):
        # A rewrite names (table, slot, value): the same value projected
        # into another table's slot needs its own rewrite.
        tree, equiv = annotated
        equiv.add_field_rewrite(
            "entry", 1, Prefix("4.3.2.0/24"), Prefix("4.3.2.0/23")
        )
        used = next(
            n for n in tree.tuple_root.walk() if n.tuple.table == "used"
        )
        assert equiv.expected_tuple(used).args[2] == Prefix("4.3.2.0/24")
        equiv.add_field_rewrite(
            "used", 2, Prefix("4.3.2.0/24"), Prefix("4.3.2.0/23")
        )
        assert equiv.expected_tuple(used).args[2] == Prefix("4.3.2.0/23")

    def test_rewrite_is_slot_specific(self, annotated):
        tree, equiv = annotated
        # Same value, different table/slot: untouched.
        equiv.add_field_rewrite(
            "other_table", 1, Prefix("4.3.2.0/24"), Prefix("4.3.2.0/23")
        )
        node = _entry_node(tree, "s1")
        assert equiv.expected_tuple(node).args[1] == Prefix("4.3.2.0/24")

    def test_identity_rewrite_ignored(self, annotated):
        tree, equiv = annotated
        equiv.add_field_rewrite(
            "entry", 1, Prefix("4.3.2.0/24"), Prefix("4.3.2.0/24")
        )
        assert not equiv.field_rewrites

    def test_per_tuple_override_wins_over_rewrite(self, annotated):
        tree, equiv = annotated
        node = _entry_node(tree, "s1")
        equiv.add_field_rewrite(
            "entry", 1, Prefix("4.3.2.0/24"), Prefix("4.3.2.0/23")
        )
        equiv.add_override(node.tuple, parse_tuple("entry('s1', 9.9.9.0/24, 1)"))
        assert equiv.expected_tuple(node) == parse_tuple(
            "entry('s1', 9.9.9.0/24, 1)"
        )

    def test_rewrite_affects_equivalence_checks(self, annotated):
        tree, equiv = annotated
        node = _entry_node(tree, "s1")
        widened = parse_tuple("entry('s1', 4.3.2.0/23, 1)")
        assert not equiv.tuples_equivalent(node, widened)
        equiv.add_field_rewrite(
            "entry", 1, Prefix("4.3.2.0/24"), Prefix("4.3.2.0/23")
        )
        assert equiv.tuples_equivalent(node, widened)
