"""Tests for condition repair (prefix widening, inversion repairs)."""

import pytest

from repro.addresses import IPv4Address, Prefix
from repro.core.repair import repair_condition, widen_prefix
from repro.datalog.parser import parse_expr
from repro.datalog.rules import Condition
from repro.errors import NonInvertibleError


class TestWidenPrefix:
    def test_paper_example(self):
        # The SDN1 root cause: 4.3.2.0/24 must widen to /23 to cover 4.3.3.1.
        widened = widen_prefix(Prefix("4.3.2.0/24"), IPv4Address("4.3.3.1"))
        assert widened == Prefix("4.3.2.0/23")

    def test_already_covered_unchanged(self):
        pfx = Prefix("4.3.2.0/24")
        assert widen_prefix(pfx, IPv4Address("4.3.2.200")) is pfx

    def test_distant_address_widens_far(self):
        widened = widen_prefix(Prefix("4.3.2.0/24"), IPv4Address("132.3.2.1"))
        assert widened.length == 0

    def test_result_always_contains_both(self):
        pfx = Prefix("10.1.2.0/24")
        for addr in ("10.1.3.7", "10.200.0.1", "11.0.0.1"):
            widened = widen_prefix(pfx, IPv4Address(addr))
            assert widened.contains(IPv4Address(addr))
            assert widened.contains(pfx.network)

    def test_widening_is_minimal(self):
        widened = widen_prefix(Prefix("10.0.0.0/24"), IPv4Address("10.0.1.1"))
        assert widened.length == 23  # one bit shorter is enough


def _cond(text_left, op=None, text_right=None):
    if op is None:
        return Condition("call", parse_expr(text_left))
    return Condition(op, parse_expr(text_left), parse_expr(text_right))


class TestRepairCondition:
    def test_prefix_condition_repair(self):
        condition = _cond("ip_in_prefix(Dst, Pfx)", "==", "true")
        env = {"Dst": IPv4Address("4.3.3.1"), "Pfx": Prefix("4.3.2.0/24")}
        var, value = repair_condition(condition, env, {"Pfx"})
        assert var == "Pfx"
        assert value == Prefix("4.3.2.0/23")

    def test_bare_call_form(self):
        condition = _cond("ip_in_prefix(Dst, Pfx)")
        env = {"Dst": IPv4Address("4.3.3.1"), "Pfx": Prefix("4.3.2.0/24")}
        var, value = repair_condition(condition, env, {"Pfx"})
        assert (var, value) == ("Pfx", Prefix("4.3.2.0/23"))

    def test_no_repairable_var_returns_none(self):
        condition = _cond("ip_in_prefix(Dst, Pfx)", "==", "true")
        env = {"Dst": IPv4Address("4.3.3.1"), "Pfx": Prefix("4.3.2.0/24")}
        assert repair_condition(condition, env, set()) is None

    def test_unrepairable_builtin_raises(self):
        condition = _cond("mapper_emits(Ver, Pos)", "==", "true")
        env = {"Ver": "v2", "Pos": 0}
        with pytest.raises(NonInvertibleError):
            repair_condition(condition, env, {"Ver"})

    def test_comparison_repair_by_inversion(self):
        # Q == X + 2 failing with Q = 9 must propose X = 7.
        condition = _cond("Q", "==", "X + 2")
        env = {"Q": 9, "X": 3}
        var, value = repair_condition(condition, env, {"X"})
        assert (var, value) == ("X", 7)

    def test_comparison_repair_left_side(self):
        condition = _cond("X * 2", "==", "Q")
        env = {"Q": 10, "X": 3}
        assert repair_condition(condition, env, {"X"}) == ("X", 5)

    def test_inversion_disabled_raises(self):
        condition = _cond("Q", "==", "X + 2")
        env = {"Q": 9, "X": 3}
        with pytest.raises(NonInvertibleError):
            repair_condition(condition, env, {"X"}, enable_inversion=False)

    def test_multi_preimage_repair_picks_valid_candidate(self):
        condition = _cond("sq(X)", "==", "Q")
        env = {"Q": 16, "X": 3}
        var, value = repair_condition(condition, env, {"X"})
        assert var == "X"
        assert value in (4, -4)

    def test_tainted_value_side_must_be_evaluable(self):
        # The non-repairable side references an unbound variable: no repair.
        condition = _cond("X + 2", "==", "Unknowable")
        assert repair_condition(condition, {"X": 1}, {"X"}) is None
