"""Tests for graph persistence and DOT rendering."""

import pytest

from repro.addresses import IPv4Address, Prefix
from repro.datalog import Engine, parse_tuple
from repro.errors import ReproError
from repro.provenance import ProvenanceRecorder, provenance_query
from repro.provenance.serialize import (
    decode_value,
    dump_graph,
    encode_value,
    load_graph,
)
from repro.provenance.viz import diff_to_dot, tree_to_dot


@pytest.fixture
def recorded(forwarding_program):
    recorder = ProvenanceRecorder()
    engine = Engine(forwarding_program, recorder=recorder)
    for text in (
        "link('s1', 2, 's2')",
        "flowEntry('s1', 5, 4.3.2.0/24, 2)",
        "flowEntry('s2', 1, 0.0.0.0/0, 3)",
        "hostAt('s2', 3, 'h1')",
        "packet('s1', 9.9.9.9, 4.3.2.1)",
        "packet('s1', 8.8.8.8, 4.3.2.7)",
    ):
        engine.insert(parse_tuple(text))
    engine.run()
    engine.delete(parse_tuple("flowEntry('s2', 1, 0.0.0.0/0, 3)"))
    engine.run()
    return recorder.graph


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [42, -3, "text", True, False, IPv4Address("1.2.3.4"), Prefix("10.0.0.0/8")],
    )
    def test_roundtrip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_unserializable_rejected(self):
        with pytest.raises(ReproError):
            encode_value(object())


class TestGraphPersistence:
    def test_roundtrip_preserves_stats(self, recorded, tmp_path):
        path = str(tmp_path / "graph.jsonl")
        dump_graph(recorded, path)
        loaded = load_graph(path)
        assert loaded.stats() == recorded.stats()
        assert len(loaded) == len(recorded)

    def test_roundtrip_preserves_queries(self, recorded, tmp_path):
        path = str(tmp_path / "graph.jsonl")
        dump_graph(recorded, path)
        loaded = load_graph(path)
        event = parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        original = provenance_query(recorded, event)
        reloaded = provenance_query(loaded, event)
        assert reloaded.size() == original.size()
        assert reloaded.tuple_root.render() == original.tuple_root.render()

    def test_roundtrip_preserves_intervals(self, recorded, tmp_path):
        path = str(tmp_path / "graph.jsonl")
        dump_graph(recorded, path)
        loaded = load_graph(path)
        deleted = parse_tuple("flowEntry('s2', 1, 0.0.0.0/0, 3)")
        (original_exist,) = recorded.exists_of(deleted)
        (loaded_exist,) = loaded.exists_of(deleted)
        assert loaded_exist.end_time == original_exist.end_time

    def test_roundtrip_preserves_derivations(self, recorded, tmp_path):
        path = str(tmp_path / "graph.jsonl")
        dump_graph(recorded, path)
        loaded = load_graph(path)
        assert len(loaded.derivations) == len(recorded.derivations)
        for did, info in recorded.derivations.items():
            other = loaded.derivations[did]
            assert other.rule_name == info.rule_name
            assert other.head == info.head
            assert other.body == info.body
            assert other.env == info.env


class TestDotRendering:
    def test_tree_to_dot_structure(self, recorded):
        tree = provenance_query(
            recorded, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        dot = tree_to_dot(tree, title="t")
        assert dot.startswith('digraph "t" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == tree.size() - 1
        assert "EXIST(" in dot and "DERIVE(" in dot

    def test_diff_to_dot_colors(self, recorded):
        good = provenance_query(
            recorded, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        bad = provenance_query(
            recorded, parse_tuple("delivered('h1', 8.8.8.8, 4.3.2.7)")
        )
        dot = diff_to_dot(good, bad)
        # Shared config is green; per-packet vertexes are red.
        assert "palegreen" in dot
        assert "lightcoral" in dot
        assert "cluster_good" in dot and "cluster_bad" in dot

    def test_identical_trees_all_green(self, recorded):
        tree = provenance_query(
            recorded, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        dot = diff_to_dot(tree, tree)
        assert "lightcoral" not in dot

    def test_labels_escaped(self, recorded):
        tree = provenance_query(
            recorded, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        dot = tree_to_dot(tree)
        # Tuple quotes must be escaped for DOT.
        assert '\\"' not in dot or dot.count('"') % 2 == 0
