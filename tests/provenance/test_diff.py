"""Tests for the naive tree-diff strawman (Section 2.5)."""

import pytest

from repro.datalog import Engine, parse_tuple
from repro.provenance import (
    ProvenanceRecorder,
    naive_diff,
    provenance_query,
    tree_edit_distance,
)


def build(forwarding_program, packets):
    recorder = ProvenanceRecorder()
    engine = Engine(forwarding_program, recorder=recorder)
    for text in (
        "link('s1', 2, 's2')",
        "flowEntry('s1', 5, 4.3.2.0/24, 2)",
        "flowEntry('s2', 1, 0.0.0.0/0, 3)",
        "hostAt('s2', 3, 'h1')",
    ):
        engine.insert(parse_tuple(text))
    engine.run()
    for text in packets:
        engine.insert(parse_tuple(text))
    engine.run()
    return recorder.graph


class TestNaiveDiff:
    def test_identical_trees_diff_empty(self, forwarding_program):
        graph = build(forwarding_program, ["packet('s1', 9.9.9.9, 4.3.2.1)"])
        tree = provenance_query(
            graph, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        assert naive_diff(tree, tree) == []

    def test_different_packets_diff_nonzero(self, forwarding_program):
        graph = build(
            forwarding_program,
            ["packet('s1', 9.9.9.9, 4.3.2.1)", "packet('s1', 8.8.8.8, 4.3.2.7)"],
        )
        first = provenance_query(
            graph, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        second = provenance_query(
            graph, parse_tuple("delivered('h1', 8.8.8.8, 4.3.2.7)")
        )
        diff = naive_diff(first, second)
        # The butterfly effect: headers differ at every hop, so the diff
        # is larger than either tree even though the trees are isomorphic.
        assert len(diff) > first.size()
        assert len(diff) > second.size()

    def test_shared_config_not_in_diff(self, forwarding_program):
        graph = build(
            forwarding_program,
            ["packet('s1', 9.9.9.9, 4.3.2.1)", "packet('s1', 8.8.8.8, 4.3.2.7)"],
        )
        first = provenance_query(
            graph, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        second = provenance_query(
            graph, parse_tuple("delivered('h1', 8.8.8.8, 4.3.2.7)")
        )
        labels = set(naive_diff(first, second))
        # Flow entries and links are common to both trees and cancel out.
        assert not any(label[2] == "flowEntry" for label in labels)
        assert not any(label[2] == "link" for label in labels)


class TestTreeEditDistance:
    def test_identical_trees_distance_zero(self, forwarding_program):
        graph = build(forwarding_program, ["packet('s1', 9.9.9.9, 4.3.2.1)"])
        tree = provenance_query(
            graph, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        assert tree_edit_distance(tree, tree) == 0

    def test_distance_counts_relabels(self, forwarding_program):
        graph = build(
            forwarding_program,
            ["packet('s1', 9.9.9.9, 4.3.2.1)", "packet('s1', 8.8.8.8, 4.3.2.7)"],
        )
        first = provenance_query(
            graph, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        second = provenance_query(
            graph, parse_tuple("delivered('h1', 8.8.8.8, 4.3.2.7)")
        )
        distance = tree_edit_distance(first, second)
        # Isomorphic trees with different headers: pure relabels, so the
        # distance is positive but bounded by the smaller tree's size.
        assert 0 < distance <= min(first.size(), second.size())

    def test_distance_is_symmetric(self, forwarding_program):
        graph = build(
            forwarding_program,
            ["packet('s1', 9.9.9.9, 4.3.2.1)", "packet('s1', 8.8.8.8, 4.3.2.7)"],
        )
        first = provenance_query(
            graph, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        )
        second = provenance_query(
            graph, parse_tuple("delivered('h1', 8.8.8.8, 4.3.2.7)")
        )
        assert tree_edit_distance(first, second) == tree_edit_distance(
            second, first
        )
