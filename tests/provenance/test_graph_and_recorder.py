"""Tests for the temporal provenance graph and the recorder."""

import pytest

from repro.datalog import Engine, parse_program, parse_tuple
from repro.datalog.tuples import Tuple
from repro.errors import ReproError
from repro.provenance import ProvenanceRecorder
from repro.provenance.vertices import VertexKind


@pytest.fixture
def recorded(forwarding_program):
    recorder = ProvenanceRecorder()
    engine = Engine(forwarding_program, recorder=recorder)
    for text in (
        "link('s1', 2, 's2')",
        "flowEntry('s1', 5, 4.3.2.0/24, 2)",
        "flowEntry('s2', 1, 0.0.0.0/0, 3)",
        "hostAt('s2', 3, 'h1')",
        "packet('s1', 9.9.9.9, 4.3.2.1)",
    ):
        engine.insert(parse_tuple(text))
    engine.run()
    return engine, recorder.graph


class TestInferredRecording:
    def test_insert_appear_exist_chain(self, recorded):
        _, graph = recorded
        entry = parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 2)")
        assert len(graph.inserts_of(entry)) == 1
        assert len(graph.appears_of(entry)) == 1
        exists = graph.exists_of(entry)
        assert len(exists) == 1 and exists[0].is_open

    def test_exist_points_to_appear_points_to_insert(self, recorded):
        _, graph = recorded
        entry = parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 2)")
        exist = graph.exists_of(entry)[0]
        (appear,) = graph.children(exist)
        assert appear.kind == VertexKind.APPEAR
        (insert,) = graph.children(appear)
        assert insert.kind == VertexKind.INSERT

    def test_derive_children_are_body_exists(self, recorded):
        _, graph = recorded
        out = parse_tuple("packetOut('s1', 9.9.9.9, 4.3.2.1, 2)")
        (appear,) = graph.appears_of(out)
        (derive,) = graph.children(appear)
        assert derive.kind == VertexKind.DERIVE
        child_tuples = {child.tuple for child in graph.children(derive)}
        assert parse_tuple("packet('s1', 9.9.9.9, 4.3.2.1)") in child_tuples
        assert parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 2)") in child_tuples

    def test_mutability_recorded(self, recorded):
        _, graph = recorded
        link = parse_tuple("link('s1', 2, 's2')")
        assert graph.inserts_of(link)[0].mutable is False
        entry = parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 2)")
        assert graph.inserts_of(entry)[0].mutable is True

    def test_deletion_closes_exist(self, recorded):
        engine, graph = recorded
        entry = parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 2)")
        engine.delete(entry)
        engine.run()
        exist = graph.exists_of(entry)[0]
        assert exist.end_time is not None
        assert not graph.alive_during(entry, exist.end_time + 1)
        assert graph.alive_during(entry, exist.end_time - 1)

    def test_stats_counts_kinds(self, recorded):
        _, graph = recorded
        stats = graph.stats()
        assert stats["INSERT"] == 5
        assert stats["DERIVE"] >= 2


class TestTemporalLookups:
    def test_exist_at_picks_covering_interval(self, recorded):
        engine, graph = recorded
        entry = parse_tuple("flowEntry('s1', 5, 4.3.2.0/24, 2)")
        first = graph.exists_of(entry)[0]
        engine.delete(entry)
        engine.run()
        engine.insert(entry)
        engine.run()
        # Two intervals now; a time inside the first must resolve to it.
        assert graph.exist_at(entry, first.time) is first
        latest = graph.exist_at(entry)
        assert latest is not first and latest.is_open

    def test_live_tuples(self, recorded):
        engine, graph = recorded
        live = graph.live_tuples("flowEntry")
        assert len(live) == 2
        engine.delete(parse_tuple("flowEntry('s2', 1, 0.0.0.0/0, 3)"))
        engine.run()
        assert len(graph.live_tuples("flowEntry")) == 1


class TestReportedMode:
    def test_report_chain(self):
        recorder = ProvenanceRecorder()
        base = Tuple("cfg", ["k", 1])
        recorder.report_insert("n1", base, mutable=True)
        head = Tuple("derived", [2])
        recorder.report_derive("n1", head, "r1", [base], env={"X": 1})
        graph = recorder.graph
        (appear,) = graph.appears_of(head)
        (derive,) = graph.children(appear)
        assert derive.rule == "r1"
        assert [c.tuple for c in graph.children(derive)] == [base]

    def test_report_requires_known_body(self):
        recorder = ProvenanceRecorder()
        with pytest.raises(ReproError):
            recorder.report_derive(
                "n1", Tuple("d", [1]), "r1", [Tuple("missing", [0])]
            )

    def test_trigger_defaults_to_latest_appearing(self):
        recorder = ProvenanceRecorder()
        first = Tuple("a", [1])
        second = Tuple("b", [2])
        recorder.report_insert("n", first)
        recorder.report_insert("n", second)
        info = recorder.report_derive("n", Tuple("c", [3]), "r", [first, second])
        assert info.trigger == second

    def test_report_delete_closes_interval(self):
        recorder = ProvenanceRecorder()
        base = Tuple("cfg", ["k", 1])
        recorder.report_insert("n1", base)
        recorder.report_delete("n1", base)
        assert recorder.graph.latest_open_exist(base) is None
