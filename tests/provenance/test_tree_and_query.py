"""Tests for provenance tree projection and classic queries."""

import pytest

from repro.datalog import Engine, parse_program, parse_tuple
from repro.errors import ReproError
from repro.provenance import ProvenanceRecorder, provenance_query
from repro.provenance.vertices import VertexKind


@pytest.fixture
def delivered_tree(forwarding_program):
    recorder = ProvenanceRecorder()
    engine = Engine(forwarding_program, recorder=recorder)
    for text in (
        "link('s1', 2, 's2')",
        "flowEntry('s1', 5, 4.3.2.0/24, 2)",
        "flowEntry('s2', 1, 0.0.0.0/0, 3)",
        "hostAt('s2', 3, 'h1')",
        "packet('s1', 9.9.9.9, 4.3.2.1)",
    ):
        engine.insert(parse_tuple(text))
    engine.run()
    tree = provenance_query(
        recorder.graph, parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
    )
    return tree


class TestTreeProjection:
    def test_root_is_queried_event(self, delivered_tree):
        assert delivered_tree.root.vertex.tuple == parse_tuple(
            "delivered('h1', 9.9.9.9, 4.3.2.1)"
        )
        assert delivered_tree.root.vertex.kind == VertexKind.EXIST

    def test_vertex_structure_follows_figure2(self, delivered_tree):
        # EXIST -> APPEAR -> DERIVE -> body EXISTs, recursively.
        exist = delivered_tree.root
        (appear,) = exist.children
        assert appear.vertex.kind == VertexKind.APPEAR
        (derive,) = appear.children
        assert derive.vertex.kind == VertexKind.DERIVE
        kinds = {child.vertex.kind for child in derive.children}
        assert kinds == {VertexKind.EXIST}

    def test_leaves_are_base_events(self, delivered_tree):
        leaves = [
            node for node in delivered_tree.root.walk() if not node.children
        ]
        assert leaves
        assert all(n.vertex.kind == VertexKind.INSERT for n in leaves)

    def test_size_counts_expanded_tree(self, delivered_tree):
        assert delivered_tree.size() == sum(1 for _ in delivered_tree.root.walk())

    def test_render_contains_rule_names(self, delivered_tree):
        rendered = delivered_tree.render()
        assert "fwd" in rendered and "recv" in rendered


class TestTupleView:
    def test_collapsed_chain(self, delivered_tree):
        root = delivered_tree.tuple_root
        assert root.tuple == parse_tuple("delivered('h1', 9.9.9.9, 4.3.2.1)")
        assert root.rule == "recv"
        assert not root.is_base

    def test_children_follow_rule_body_order(self, delivered_tree):
        root = delivered_tree.tuple_root
        assert [child.tuple.table for child in root.children] == [
            "packetOut",
            "hostAt",
        ]

    def test_base_nodes_carry_mutability(self, delivered_tree):
        host = delivered_tree.tuple_root.children[1]
        assert host.is_base
        assert host.mutable is False

    def test_parent_links(self, delivered_tree):
        root = delivered_tree.tuple_root
        for child in root.children:
            assert child.parent is root

    def test_trigger_child(self, delivered_tree):
        root = delivered_tree.tuple_root
        trigger = root.trigger_child()
        assert trigger is not None
        assert trigger.tuple.table == "packetOut"

    def test_path_to_root(self, delivered_tree):
        leaf = next(delivered_tree.tuple_root.leaves())
        path = leaf.path_to_root()
        assert path[0] is leaf
        assert path[-1] is delivered_tree.tuple_root


class TestQueryErrors:
    def test_unknown_event_rejected(self, delivered_tree):
        with pytest.raises(ReproError):
            provenance_query(
                delivered_tree.graph, parse_tuple("delivered('h9', 1.1.1.1, 2.2.2.2)")
            )
