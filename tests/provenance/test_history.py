"""Tests for the per-tuple history view of the temporal graph."""

import pytest

from repro.provenance.vertices import VertexKind
from repro.scenarios.flap import FlappingRoute


@pytest.fixture(scope="module")
def flap():
    return FlappingRoute(flaps=2, probes_per_phase=1).setup()


class TestHistory:
    def test_timeline_is_time_ordered(self, flap):
        graph = flap.good_execution.graph
        timeline = graph.history(flap.primary_route)
        times = [v.time for v in timeline]
        assert times == sorted(times)

    def test_flap_cycle_structure(self, flap):
        graph = flap.good_execution.graph
        kinds = [
            v.kind for v in graph.history(flap.primary_route)
            if v.kind in (VertexKind.INSERT, VertexKind.DELETE)
        ]
        # install, (withdraw, re-announce) x flaps, final withdraw.
        assert kinds == [
            VertexKind.INSERT,
            VertexKind.DELETE,
            VertexKind.INSERT,
            VertexKind.DELETE,
            VertexKind.INSERT,
            VertexKind.DELETE,
        ]

    def test_intervals_match_cycles(self, flap):
        graph = flap.good_execution.graph
        exists = [
            v for v in graph.history(flap.primary_route)
            if v.kind == VertexKind.EXIST
        ]
        assert len(exists) == 3
        assert all(v.end_time is not None for v in exists)

    def test_unknown_tuple_empty_history(self, flap):
        from repro.datalog import parse_tuple

        assert flap.good_execution.graph.history(parse_tuple("x(1)")) == []
