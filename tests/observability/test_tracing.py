"""Span trees: nesting, exception safety, deterministic export."""

import pytest

from repro.observability import ManualClock, Telemetry, Tracer


def manual_tracer():
    return Tracer(clock=ManualClock())


class TestNesting:
    def test_spans_nest_under_the_open_span(self):
        tracer = manual_tracer()
        with tracer.span("diffprov.diagnose"):
            with tracer.span("diffprov.query"):
                with tracer.span("engine.run"):
                    pass
            with tracer.span("diffprov.replay"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert [c.name for c in root.children] == [
            "diffprov.query",
            "diffprov.replay",
        ]
        assert root.children[0].children[0].name == "engine.run"
        assert root.children[0].children[0].parent is root.children[0]
        assert tracer.span_count == 4

    def test_sequential_roots(self):
        tracer = manual_tracer()
        with tracer.span("a.one"):
            pass
        with tracer.span("b.two"):
            pass
        assert [r.name for r in tracer.roots] == ["a.one", "b.two"]
        assert tracer.current is None

    def test_manual_clock_gives_deterministic_durations(self):
        tracer = manual_tracer()
        with tracer.span("a.one"):  # start=0
            with tracer.span("a.two"):  # start=1, end=2
                pass
        # ManualClock advances one tick per read: ends at 2 and 3.
        inner = tracer.roots[0].children[0]
        assert tracer.roots[0].start == 0.0 and tracer.roots[0].end == 3.0
        assert inner.duration == 1.0

    def test_iter_spans_is_depth_first_preorder(self):
        tracer = manual_tracer()
        with tracer.span("r.a"):
            with tracer.span("r.b"):
                pass
            with tracer.span("r.c"):
                pass
        assert [s.name for s in tracer.iter_spans()] == ["r.a", "r.b", "r.c"]


class TestExceptionSafety:
    def test_span_closes_and_marks_error(self):
        tracer = manual_tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("diffprov.replay"):
                raise ValueError("boom")
        span = tracer.roots[0]
        assert span.end is not None
        assert span.status == "error"
        assert span.error == "ValueError: boom"
        # The stack unwound: new spans open as roots, not as children.
        with tracer.span("a.after"):
            pass
        assert [r.name for r in tracer.roots] == ["diffprov.replay", "a.after"]

    def test_outer_span_survives_inner_error_when_caught(self):
        tracer = manual_tracer()
        with tracer.span("outer.run") as outer:
            try:
                with tracer.span("inner.step"):
                    raise RuntimeError("nope")
            except RuntimeError:
                pass
        assert outer.status == "ok"
        assert outer.children[0].status == "error"


class TestAggregationAndExport:
    def test_phase_totals_sum_by_name_in_first_appearance_order(self):
        tracer = manual_tracer()
        with tracer.span("d.loop"):
            with tracer.span("d.replay"):
                pass
            with tracer.span("d.replay"):
                pass
        phases = tracer.phase_totals()
        assert [p["name"] for p in phases] == ["d.loop", "d.replay"]
        replay = phases[1]
        assert replay["count"] == 2
        assert replay["seconds"] == 2.0  # two spans, one tick each

    def test_span_attrs_and_set(self):
        tracer = manual_tracer()
        with tracer.span("e.run", entries=5) as span:
            span.set("steps", 17)
        assert tracer.roots[0].attrs == {"entries": 5, "steps": 17}

    def test_chrome_trace_shape(self):
        tracer = manual_tracer()
        with tracer.span("diffprov.diagnose", scenario="SDN1"):
            with pytest.raises(KeyError):
                with tracer.span("engine.run"):
                    raise KeyError("x")
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == [
            "diffprov.diagnose",
            "engine.run",
        ]
        outer, inner = events
        assert outer["ph"] == "X" and outer["cat"] == "diffprov"
        assert outer["args"]["scenario"] == "SDN1"
        assert inner["args"]["status"] == "error"
        assert inner["ts"] >= outer["ts"]
        assert outer["dur"] > 0

    def test_chrome_trace_stringifies_non_primitive_attrs(self):
        tracer = manual_tracer()
        with tracer.span("a.b", obj=object(), n=3, flag=True):
            pass
        args = tracer.to_chrome_trace()["traceEvents"][0]["args"]
        assert isinstance(args["obj"], str)
        assert args["n"] == 3 and args["flag"] is True

    def test_to_dict_round_trips_the_tree(self):
        tracer = manual_tracer()
        with tracer.span("a.root"):
            with tracer.span("a.leaf"):
                pass
        data = tracer.to_dict()
        assert data["spans"][0]["name"] == "a.root"
        assert data["spans"][0]["children"][0]["name"] == "a.leaf"


class TestDetachedSpans:
    def test_start_span_takes_an_explicit_parent(self):
        tracer = manual_tracer()
        root = tracer.start_span("service.request", tenant="acme")
        child = tracer.start_span("service.dispatch", parent=root, shard=0)
        tracer.finish(child)
        tracer.finish(root)
        assert tracer.roots == [root]
        assert root.children == [child]
        assert child.parent is root
        assert root.end is not None and child.end is not None
        assert root.attrs["tenant"] == "acme"
        assert tracer.span_count == 2
        # Detached spans never touch the ambient contextmanager stack.
        assert tracer.current is None

    def test_finish_records_errors_and_is_end_idempotent(self):
        tracer = manual_tracer()
        span = tracer.start_span("service.dispatch")
        tracer.finish(span, "error", error="shed: quota")
        first_end = span.end
        tracer.finish(span, "error", error="shed: quota")
        assert span.end == first_end
        assert span.status == "error"
        assert span.error == "shed: quota"

    def test_graft_attaches_a_serialized_subtree(self):
        worker = manual_tracer()
        with worker.span("diffprov.diagnose", scenario="DNS"):
            with worker.span("engine.run"):
                pass
        shipped = worker.roots[0].to_dict()

        server = manual_tracer()
        dispatch = server.start_span("service.dispatch")
        grafted = server.graft(shipped, dispatch)
        tracer_names = [s.name for s in server.iter_spans()]
        assert tracer_names == [
            "service.dispatch", "diffprov.diagnose", "engine.run",
        ]
        assert grafted.parent is dispatch
        assert grafted.children[0].name == "engine.run"
        assert grafted.attrs == {"scenario": "DNS"}
        assert server.span_count == 3  # dispatch + two grafted

    def test_span_from_dict_round_trips_status_and_error(self):
        tracer = manual_tracer()
        with pytest.raises(ValueError):
            with tracer.span("a.b", n=1):
                raise ValueError("boom")
        from repro.observability import Span

        rebuilt = Span.from_dict(tracer.roots[0].to_dict())
        assert rebuilt.status == "error"
        assert rebuilt.error == "ValueError: boom"
        assert rebuilt.attrs == {"n": 1}
        assert rebuilt.to_dict() == tracer.roots[0].to_dict()


class TestTraceContextStamping:
    def test_root_spans_inherit_the_tracer_context(self):
        from repro.observability import TraceContext

        tracer = manual_tracer()
        ctx = TraceContext.root({"id": "r1"}).child("service.dispatch")
        tracer.context = ctx
        with tracer.span("diffprov.diagnose"):
            with tracer.span("engine.run"):
                pass
        root = tracer.roots[0]
        expected = ctx.child("diffprov.diagnose")
        assert root.attrs["trace_id"] == ctx.trace_id
        assert root.attrs["span_id"] == expected.span_id
        assert root.attrs["parent_span_id"] == ctx.span_id
        # Children carry no stamp; the parent chain positions them.
        assert "trace_id" not in root.children[0].attrs

    def test_explicit_attrs_beat_the_context_stamp(self):
        from repro.observability import TraceContext

        tracer = manual_tracer()
        tracer.context = TraceContext("cafecafecafecafe")
        with tracer.span("a.b", trace_id="override"):
            pass
        assert tracer.roots[0].attrs["trace_id"] == "override"


class TestTelemetryFacade:
    def test_report_section_combines_metrics_and_phases(self):
        telemetry = Telemetry(clock=ManualClock())
        with telemetry.span("x.y"):
            telemetry.inc("hits")
        section = telemetry.report_section()
        assert section["spans"] == 1
        assert section["metrics"]["counters"] == {"hits": 1}
        assert section["phases"][0]["name"] == "x.y"

    def test_fold_counters_skips_zero_entries(self):
        telemetry = Telemetry(clock=ManualClock())
        telemetry.fold_counters("f.engine", {"dropped": 2, "delayed": 0})
        counters = telemetry.snapshot()["counters"]
        assert counters == {"f.engine.dropped": 2}
