"""Metrics registry: counters, gauges, histogram percentile math."""

import json

import pytest

from repro.errors import ReproError
from repro.observability import MetricsRegistry
from repro.observability.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        counter = Counter("x")
        with pytest.raises(ReproError):
            counter.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1

    def test_set_max_keeps_running_maximum(self):
        gauge = Gauge("g")
        gauge.set_max(2)
        gauge.set_max(7)
        gauge.set_max(4)
        assert gauge.value == 7


class TestHistogramPercentiles:
    def test_linear_interpolation_over_1_to_100(self):
        h = Histogram("h")
        for value in range(1, 101):
            h.observe(value)
        # numpy-style linear interpolation: rank = (n-1) * p/100.
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)
        assert h.percentile(99) == pytest.approx(99.01)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100

    def test_single_value(self):
        h = Histogram("h")
        h.observe(42)
        for p in (0, 50, 90, 99, 100):
            assert h.percentile(p) == 42

    def test_two_values_interpolate(self):
        h = Histogram("h")
        h.observe(10)
        h.observe(20)
        assert h.percentile(50) == pytest.approx(15.0)
        assert h.percentile(90) == pytest.approx(19.0)

    def test_unsorted_observations_are_ordered_lazily(self):
        h = Histogram("h")
        for value in (5, 1, 9, 3):
            h.observe(value)
        snap = h.snapshot()
        assert snap["min"] == 1 and snap["max"] == 9
        assert snap["count"] == 4 and snap["sum"] == 18

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.percentile(50) is None
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["min"] is None

    def test_out_of_range_percentile_rejected(self):
        h = Histogram("h")
        h.observe(1)
        with pytest.raises(ReproError):
            h.percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.inc("a", 2)
        registry.inc("a")
        assert registry.counter("a").value == 3

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ReproError):
            registry.observe("x", 1.0)
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.inc("b.two")
        registry.inc("a.one", 5)
        registry.set_gauge("depth", 3)
        registry.observe("lat", 1)
        registry.observe("lat", 3)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.one", "b.two"]
        assert snap["gauges"] == {"depth": 3}
        assert snap["histograms"]["lat"]["sum"] == 4

    def test_snapshot_json_byte_identical_across_equal_runs(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("z.last")
            registry.inc("a.first", 7)
            registry.set_max("peak", 9)
            for value in (4, 2, 8):
                registry.observe("h", value)
            return registry

        assert build().snapshot_json() == build().snapshot_json()
        # Canonical form round-trips.
        assert json.loads(build().snapshot_json())["counters"]["a.first"] == 7
