"""Fleet-wide ops: trace contexts, exposition, SLO books, flight box."""

import pytest

from repro.errors import ReproError
from repro.observability import (
    FlightRecorder,
    ManualClock,
    MetricsRegistry,
    OpsCenter,
    RollingHistogram,
    SLOBook,
    TraceContext,
    derive_trace_id,
    prometheus_text,
    render_top,
)


# -- trace contexts -----------------------------------------------------------


def test_trace_ids_are_deterministic_hashes():
    fingerprint = {"id": "r1", "kind": "diagnose", "scenario": "DNS"}
    first = derive_trace_id(fingerprint)
    second = derive_trace_id(dict(fingerprint))
    assert first == second
    assert len(first) == 16
    assert int(first, 16) >= 0  # hex
    assert derive_trace_id({"id": "r2"}) != first


def test_child_contexts_reproduce_the_hop_sequence():
    root = TraceContext.root({"id": "r1"})
    assert root.span_id is None
    a1 = root.child("service.request").child("service.dispatch")
    a2 = TraceContext.root({"id": "r1"}).child(
        "service.request"
    ).child("service.dispatch")
    assert a1.trace_id == a2.trace_id
    assert a1.span_id == a2.span_id
    assert a1.parent_span_id == a2.parent_span_id
    # Different hop names diverge.
    assert root.child("a").span_id != root.child("b").span_id


def test_context_round_trips_and_tags_attempts():
    ctx = TraceContext.root({"id": "x"}).child("service.request")
    again = TraceContext.from_dict(ctx.to_dict())
    assert again.trace_id == ctx.trace_id
    assert again.span_id == ctx.span_id
    assert again.attempt == 1
    retry = ctx.with_attempt(2)
    assert retry.attempt == 2
    assert retry.span_id == ctx.span_id  # same position, new attempt
    attrs = retry.span_attrs()
    assert attrs["trace_id"] == ctx.trace_id
    assert attrs["attempt"] == 2


# -- Prometheus exposition ----------------------------------------------------


def test_prometheus_text_renders_all_three_kinds():
    registry = MetricsRegistry()
    registry.inc("service.admitted", 3)
    registry.set_gauge("service.queue.depth", 2)
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.observe("service.queue.wait_s", value)
    text = prometheus_text(registry.snapshot())
    assert "# TYPE diffprov_service_admitted counter" in text
    assert "diffprov_service_admitted 3" in text
    assert "# TYPE diffprov_service_queue_depth gauge" in text
    assert "diffprov_service_queue_depth 2" in text
    assert "# TYPE diffprov_service_queue_wait_s summary" in text
    assert 'diffprov_service_queue_wait_s{quantile="0.5"} 2.5' in text
    assert "diffprov_service_queue_wait_s_sum 10.0" in text
    assert "diffprov_service_queue_wait_s_count 4" in text
    assert text.endswith("\n")


def test_prometheus_text_mangles_names_and_skips_unset_gauges():
    registry = MetricsRegistry()
    registry.inc("service.shed.queue-full")
    registry.gauge("service.unset")  # created but never set
    text = prometheus_text(registry.snapshot())
    assert "diffprov_service_shed_queue_full 1" in text
    assert "unset" not in text


def test_prometheus_text_is_deterministic():
    registry = MetricsRegistry()
    registry.inc("b.second")
    registry.inc("a.first")
    snapshot = registry.snapshot()
    assert prometheus_text(snapshot) == prometheus_text(snapshot)
    assert prometheus_text(snapshot).index("a_first") < prometheus_text(
        snapshot
    ).index("b_second")


# -- rolling histograms -------------------------------------------------------


def test_rolling_histogram_is_bounded():
    rolling = RollingHistogram("latency", capacity=4)
    for value in range(10):
        rolling.observe(float(value))
    assert rolling.count == 4
    assert rolling.observed_total == 10
    snapshot = rolling.snapshot()
    assert snapshot["min"] == 6.0  # only the last four survive
    assert snapshot["max"] == 9.0
    assert snapshot["count"] == 4


# -- SLO books ----------------------------------------------------------------


def test_slo_books_stay_honest_by_construction():
    book = SLOBook(clock=ManualClock())
    for _ in range(5):
        book.offered("acme")
    for _ in range(3):
        book.admitted("acme")
    book.shed("acme", "queue-full")
    book.shed("acme", "quota")
    book.finished("acme", ok=True, queue_wait_s=0.1, latency_s=0.5)
    book.finished("acme", ok=True, queue_wait_s=0.2, latency_s=0.6)
    book.finished("acme", ok=False, latency_s=1.0)
    snap = book.snapshot()["acme"]
    assert snap["offered"] == 5
    assert snap["admitted"] + sum(snap["shed"].values()) == snap["offered"]
    assert snap["ok"] + snap["errored"] == snap["admitted"]
    assert snap["queue_wait_s"]["count"] == 2
    assert snap["latency_s"]["count"] == 3


def test_error_budget_burn_rate_math():
    clock = ManualClock(tick=1.0)
    book = SLOBook(objective=0.9, window_s=1000.0, clock=clock)
    # 1 error in 10 requests = 10% errors; budget is 10% -> burn 1.0.
    for i in range(10):
        book.finished("t", ok=(i != 0))
    budget = book.error_budget("t")
    assert budget["requests"] == 10
    assert budget["errors"] == 1
    assert budget["burn"] == pytest.approx(1.0)
    # An empty window burns nothing.
    assert book.error_budget("idle")["burn"] == 0.0


def test_error_budget_window_prunes_old_outcomes():
    clock = ManualClock(tick=0.0)  # time moves only via advance()
    book = SLOBook(objective=0.99, window_s=100.0, clock=clock)
    book.finished("t", ok=False)
    clock.advance(200.0)  # the error ages out of the window
    book.finished("t", ok=True)
    budget = book.error_budget("t")
    assert budget["requests"] == 1
    assert budget["errors"] == 0
    assert budget["burn"] == 0.0


def test_slo_objective_is_validated():
    with pytest.raises(ValueError):
        SLOBook(objective=1.0)
    with pytest.raises(ValueError):
        SLOBook(objective=0.0)


def test_slo_prometheus_text_labels_tenants():
    book = SLOBook(clock=ManualClock())
    book.offered("acme")
    book.admitted("acme")
    book.shed("other", "quota")
    book.finished("acme", ok=True, latency_s=0.25)
    text = book.prometheus_text()
    assert 'diffprov_tenant_offered{tenant="acme"} 1' in text
    assert 'diffprov_tenant_shed{tenant="other",reason="quota"} 1' in text
    assert 'diffprov_tenant_error_budget_burn{tenant="acme"} 0.0' in text
    assert 'tenant="acme",quantile="0.5"' in text


# -- flight recorder ----------------------------------------------------------


def test_flight_recorder_is_a_ring_buffer():
    recorder = FlightRecorder(capacity=3, clock=ManualClock())
    for i in range(5):
        recorder.record(request=f"r{i}", status="ok")
    assert len(recorder) == 3
    assert recorder.recorded_total == 5
    entries = recorder.entries()
    assert [e["request"] for e in entries] == ["r2", "r3", "r4"]
    assert [e["seq"] for e in entries] == [2, 3, 4]
    snapshot = recorder.snapshot()
    assert snapshot["capacity"] == 3
    assert snapshot["recorded_total"] == 5


def test_flight_recorder_capacity_zero_disables_recording():
    recorder = FlightRecorder(capacity=0, clock=ManualClock())
    assert recorder.record(request="r", status="ok") is None
    assert len(recorder) == 0
    assert recorder.recorded_total == 0


def test_flight_recorder_text_dump_names_the_essentials():
    recorder = FlightRecorder(capacity=8, clock=ManualClock())
    recorder.record(
        request="r1", tenant="acme", kind="diagnose", scenario="DNS",
        status="ok", verdict="success", trace_id="cafe0123",
        latency_s=0.5, attempts=2, journal="/tmp/j.ndjson",
    )
    text = recorder.to_text()
    assert "acme/r1" in text
    assert "verdict=success" in text
    assert "trace=cafe0123" in text
    assert "attempts=2" in text
    assert "journal=/tmp/j.ndjson" in text


# -- the ops bundle -----------------------------------------------------------


def test_ops_center_folds_worker_deltas_under_fleet_prefix():
    ops = OpsCenter(clock=ManualClock())
    ops.fold_worker_delta({"worker.requests": 2, "worker.busy_s": 0.5})
    ops.fold_worker_delta({"worker.requests": 1, "ignored": 0, "bad": "x"})
    snapshot = ops.metrics.snapshot()
    assert snapshot["counters"]["fleet.worker.requests"] == 3
    assert snapshot["counters"]["fleet.worker.busy_s"] == 0.5
    assert "fleet.ignored" not in snapshot["counters"]
    assert "fleet.bad" not in snapshot["counters"]


def test_ops_center_prometheus_merges_extra_snapshots():
    ops = OpsCenter(clock=ManualClock())
    ops.metrics.inc("fleet.worker.requests", 2)
    ops.slo.offered("acme")
    extra = MetricsRegistry()
    extra.inc("diffprov.rounds", 4)
    text = ops.prometheus(extra.snapshot())
    assert "diffprov_fleet_worker_requests 2" in text
    assert "diffprov_diffprov_rounds 4" in text
    assert 'diffprov_tenant_offered{tenant="acme"} 1' in text


def test_metric_kind_collision_names_both_kinds():
    """Regression: the error used to say only 'a different kind'."""
    registry = MetricsRegistry()
    registry.inc("service.admitted")
    with pytest.raises(ReproError) as excinfo:
        registry.set_gauge("service.admitted", 1)
    message = str(excinfo.value)
    assert "registered as a counter" in message
    assert "re-register as a gauge" in message
    # And the registry is not left half-claimed.
    assert registry.counter("service.admitted").value == 1


# -- the top frame ------------------------------------------------------------


def _sample_stats():
    return {
        "admission": {
            "queued": 1, "in_flight": 2, "admitted_total": 9,
            "shed": {"queue-full": 3}, "draining": False,
            "tenants": {"acme": {"in_flight": 2}},
        },
        "fleet": {
            "size": 2, "restarts": 1,
            "shards": [
                {"breaker_open": False}, {"breaker_open": True},
            ],
        },
        "responses_total": 7,
        "slo": {
            "acme": {
                "offered": 9, "admitted": 6, "shed": {"queue-full": 3},
                "ok": 5, "errored": 1,
                "queue_wait_s": {"p50": 0.01, "p99": 0.02},
                "latency_s": {"p50": 0.5, "p99": 0.9},
                "error_budget": {"burn": 1.5},
            },
        },
        "flight": {"capacity": 128, "recorded_total": 6},
    }


def test_render_top_is_a_pure_text_frame():
    frame = render_top(_sample_stats(), target="127.0.0.1:8732")
    assert "diffprov top — 127.0.0.1:8732" in frame
    assert "queued 1" in frame
    assert "workers 2 (1 fenced, 1 restart(s))" in frame
    assert "acme" in frame
    assert "0.5000" in frame  # p50 latency column
    assert "1.5" in frame  # burn column
    assert "flight recorder: 6 recorded" in frame


def test_render_top_handles_empty_stats():
    frame = render_top({})
    assert frame.startswith("diffprov top")
    assert "queued 0" in frame
