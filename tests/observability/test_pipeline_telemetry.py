"""End-to-end telemetry through a real diagnosis (SDN1)."""

import json

from repro.core import DiffProvOptions
from repro.observability import ManualClock, NullTelemetry, Telemetry
from repro.scenarios import ALL_SCENARIOS
from repro.cli import main as cli_main

EXPECTED_SPANS = {
    "diffprov.diagnose",
    "diffprov.query",
    "provenance.query",
    "engine.run",
    "diffprov.find_seed",
    "diffprov.divergence",
    "diffprov.make_appear",
    "diffprov.replay",
}


def diagnose_sdn1(telemetry):
    scenario = ALL_SCENARIOS["SDN1"]()
    return scenario.diagnose(DiffProvOptions(telemetry=telemetry))


class TestPipelineSpans:
    def test_span_tree_covers_every_phase(self):
        telemetry = Telemetry(clock=ManualClock())
        report = diagnose_sdn1(telemetry)
        assert report.success
        names = {span.name for span in telemetry.tracer.iter_spans()}
        assert EXPECTED_SPANS <= names
        # The root spans everything else.
        assert [r.name for r in telemetry.tracer.roots] == ["diffprov.diagnose"]
        root = telemetry.tracer.roots[0]
        assert root.attrs["success"] is True
        # Every candidate replay nests an engine.run under diffprov.replay.
        replays = [
            s for s in telemetry.tracer.iter_spans()
            if s.name == "diffprov.replay"
        ]
        assert replays
        for replay in replays:
            assert any(c.name == "engine.run" for c in replay.children)

    def test_report_telemetry_section_attached(self):
        telemetry = Telemetry(clock=ManualClock())
        report = diagnose_sdn1(telemetry)
        assert set(report.telemetry) == {"metrics", "phases", "spans"}
        counters = report.telemetry["metrics"]["counters"]
        assert counters["diffprov.replays"] == report.replays
        assert counters["diffprov.changes"] == len(report.changes)
        assert counters["engine.steps"] > 0
        gauges = report.telemetry["metrics"]["gauges"]
        assert gauges["diffprov.good_tree_size"] == report.good_tree_size
        assert gauges["diffprov.bad_tree_size"] == report.bad_tree_size
        # The summary grows a phase-breakdown table.
        assert "phase breakdown:" in report.summary()

    def test_healthy_run_attaches_distributed_stats(self):
        # Satellite fix: stats are attached on healthy runs too, not
        # only degraded ones.
        report = diagnose_sdn1(None)
        assert set(report.distributed_stats) == {"good", "bad"}
        for stats in report.distributed_stats.values():
            assert stats.vertices_fetched > 0
            assert not stats.degraded
        assert "distributed[good]" in report.summary()

    def test_metric_snapshots_identical_across_runs(self):
        # Counts are deterministic; wall time lives only in spans, and
        # the ManualClock pins those too — so both exports are
        # byte-identical across two runs of the same scenario.
        def run():
            telemetry = Telemetry(clock=ManualClock())
            diagnose_sdn1(telemetry)
            return telemetry

        first, second = run(), run()
        assert first.snapshot_json() == second.snapshot_json()
        assert json.dumps(first.chrome_trace(), sort_keys=True) == json.dumps(
            second.chrome_trace(), sort_keys=True
        )

    def test_error_inside_diagnosis_closes_root_span(self):
        telemetry = Telemetry(clock=ManualClock())
        scenario = ALL_SCENARIOS["SDN1"]()
        scenario.setup()
        options = DiffProvOptions(telemetry=telemetry, enable_taint=False)
        report = scenario.diagnose(options)
        assert not report.success
        root = telemetry.tracer.roots[0]
        assert root.end is not None
        assert root.status == "error"
        # The failure still produced a telemetry section.
        assert report.telemetry["spans"] >= 1


class TestDisabledTelemetry:
    def test_none_and_null_telemetry_add_nothing(self):
        for disabled in (None, NullTelemetry()):
            report = diagnose_sdn1(disabled)
            assert report.success
            assert report.telemetry is None
            assert "phase breakdown" not in report.summary()

    def test_disabled_keeps_executions_unscathed(self):
        scenario = ALL_SCENARIOS["SDN1"]()
        scenario.setup()
        scenario.diagnose(DiffProvOptions(telemetry=None))
        assert scenario.good_execution.engine.telemetry is None
        assert scenario.good_execution.telemetry is None


class TestCli:
    def test_json_has_no_telemetry_key_when_disabled(self, capsys):
        assert cli_main(["--json", "diagnose", "SDN1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "telemetry" not in data
        assert set(data["distributed"]) == {"good", "bad"}

    def test_metrics_flag_emits_snapshot_and_telemetry_json(self, capsys):
        assert cli_main(["--json", "diagnose", "SDN1", "--metrics"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["success"] is True
        counters = data["telemetry"]["metrics"]["counters"]
        assert counters["diffprov.changes"] == 1
        phase_names = {p["name"] for p in data["telemetry"]["phases"]}
        assert "diffprov.diagnose" in phase_names

    def test_scenario_names_are_case_insensitive(self, capsys):
        assert cli_main(["--json", "diagnose", "sdn1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "SDN1"

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            cli_main(["diagnose", "sdn1", "--metrics", "--trace-out", str(out)])
            == 0
        )
        text = capsys.readouterr().out
        assert "phase breakdown:" in text
        assert "metrics:" in text
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        names = {e["name"] for e in trace["traceEvents"]}
        assert EXPECTED_SPANS <= names
        assert all(e["ph"] == "X" for e in trace["traceEvents"])
