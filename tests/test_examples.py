"""Every shipped example must run end to end.

The examples are part of the public API surface; breaking one is a
regression even if the library tests stay green.
"""

import pathlib
import runpy
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent.parent

EXAMPLES = [
    str(_ROOT / "examples" / name)
    for name in (
        "quickstart.py",
        "sdn_debugging.py",
        "mapreduce_debugging.py",
        "dns_debugging.py",
        "controller_debugging.py",
    )
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "root-cause change" in out


def test_campus_network_example(capsys, monkeypatch):
    path = str(_ROOT / "examples" / "campus_network.py")
    monkeypatch.setattr(sys, "argv", [path, "--background", "40"])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "correct root cause despite 20 decoy faults: YES" in out
