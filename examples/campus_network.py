#!/usr/bin/env python3
"""Complex-network diagnostics on the black-box emulator (Section 6.7).

A Stanford-like campus network — 14 operational-zone routers, two
backbones, generated forwarding tables and ACLs — runs on the packet
emulator.  The network is *not* instrumented: provenance is
reconstructed from the captured packet traces plus an external
specification of OpenFlow's match-action behaviour.

On top of the one fault being diagnosed (an entry on oz2 that drops
H2's subnet), twenty additional faulty rules and a mix of background
traffic (HTTP, bulk download, NFS crawl, a replayed backbone trace) try
to confuse the debugger.  Because provenance captures true causality,
none of that noise shows up in the diagnosis.

Run::

    python examples/campus_network.py [--full-scale]
"""

import argparse

from repro.scenarios.stanford import StanfordForwardingError


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--full-scale",
        action="store_true",
        help="use the paper's 757k-entry configuration (slow)",
    )
    parser.add_argument("--background", type=int, default=200)
    args = parser.parse_args()

    scenario = StanfordForwardingError(
        full_scale=args.full_scale, background_packets=args.background
    )
    scenario.setup()
    print(
        f"network: {len(scenario.topology.switches())} routers, "
        f"{scenario.config.total_entries()} forwarding/ACL entries, "
        f"{len(scenario.faults)} injected faults, "
        f"{args.background} background packets"
    )
    print(f"bad event:  {scenario.bad_event}")
    print(f"reference:  {scenario.good_event}")

    good, bad = scenario.trees()
    print(
        f"\ntrees: good={good.size()} vertexes, bad={bad.size()} vertexes, "
        f"plain diff={scenario.plain_diff_size()}"
    )

    report = scenario.diagnose()
    print()
    print(report.summary())
    if report.success:
        found = report.changes[0].remove[0]
        expected = scenario.expected_fault
        print(
            "\ncorrect root cause despite "
            f"{len(scenario.faults) - 1} decoy faults: "
            f"{'YES' if found == expected else 'NO'}"
        )


if __name__ == "__main__":
    main()
