#!/usr/bin/env python3
"""Beyond networks: diagnosing a DNS partial failure.

The paper's Outages survey (Section 2.4) found partial failures to be
the most common diagnosable problem, with stale DNS replicas as the
canonical example: "a batch of DNS servers contained expired entries,
while records on other servers were up to date".

Nothing in DiffProv is SDN-specific — any system modelled as tuples and
derivation rules can be diagnosed.  Here a DNS zone is served by three
replicas that load records from zone transfers; two replicas are stuck
on an old zone serial.  The reference event is an answer from the
healthy replica (the "sibling system" strategy), and the diagnosis is
the stale replica's missing zone transfer.

Run::

    python examples/dns_debugging.py
"""

from repro.core import DiffProv
from repro.core.autoref import auto_diagnose
from repro.scenarios.dns import DNSStaleReplica


def main():
    scenario = DNSStaleReplica()
    scenario.setup()
    print(f"bad answer:  {scenario.bad_event}")
    print(f"reference:   {scenario.good_event}")

    good, bad = scenario.trees()
    print("\n--- provenance of the stale answer ---")
    print(bad.tuple_root.render())

    report = scenario.diagnose()
    print("\n--- diagnosis (operator-supplied reference) ---")
    print(report.summary())

    # The reference can also be discovered automatically (Section 4.9):
    # candidates are ranked by similarity to the bad answer and tried
    # until one aligns with a non-empty root cause.
    result = auto_diagnose(
        scenario.program,
        scenario.good_execution,
        scenario.bad_execution,
        scenario.bad_event,
    )
    print("\n--- diagnosis (automatically discovered reference) ---")
    if result.found:
        print(f"discovered reference: {result.reference}")
        print(f"root cause: {result.report.changes[0].describe()}")
        print(f"candidates tried: {len(result.tried)}")
    else:
        print("no suitable reference found")


if __name__ == "__main__":
    main()
