#!/usr/bin/env python3
"""Debugging MapReduce jobs with differential provenance.

Reproduces the paper's two WordCount bugs on the instrumented
(imperative) runtime:

- **MR1**: the user accidentally changed ``mapreduce.job.reduces``, so
  words land on different reducers than in the reference job;
- **MR2**: a newly deployed mapper drops the first word of each line,
  so counts differ.

In both cases the reference is a *separate earlier job* over the same
input file — DiffProv replays both jobs plus one update replay, which
is why the paper's MapReduce queries cost ~3 replays (Figure 7).

Run::

    python examples/mapreduce_debugging.py
"""

from repro.core import DiffProv
from repro.mapreduce import declarative
from repro.mapreduce.config import REDUCES_KEY, JobConfig
from repro.mapreduce.corpus import generate_corpus, word_counts
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import ImperativeMapReduceExecution
from repro.mapreduce.wordcount import BUGGY_MAPPER, CORRECT_MAPPER


def run_job(hdfs, path, job_id, reduces, mapper_version):
    execution = ImperativeMapReduceExecution(
        job_id, hdfs, path, JobConfig({REDUCES_KEY: reduces}), mapper_version
    )
    execution.materialize()  # run the job, reporting provenance
    return execution


def diagnose(title, reference, buggy, word, good_event, bad_event):
    print(f"\n=== {title} ===")
    program = declarative.mapreduce_program()
    report = DiffProv(program).diagnose(reference, buggy, good_event, bad_event)
    print(f"query word: {word!r}")
    print(report.summary())


def main():
    hdfs = HDFS()
    text = generate_corpus(lines=30)
    stored = hdfs.write("/data/corpus.txt", text)
    counts = word_counts(text)

    # The reference job the user runs regularly: 2 reducers, mapper v1.
    reference = run_job(hdfs, stored.path, "job-0042", 2, CORRECT_MAPPER)

    # -- MR1: an accidental configuration change ------------------------
    buggy_config = run_job(hdfs, stored.path, "job-0043", 4, CORRECT_MAPPER)
    word = next(
        w
        for w, c in sorted(counts.items(), key=lambda kv: -kv[1])
        if _reducer(w, 2) != _reducer(w, 4)
    )
    diagnose(
        "MR1: output files look completely different",
        reference,
        buggy_config,
        word,
        declarative.wordcount_output(_reducer(word, 2), "job-0042", word, counts[word]),
        declarative.wordcount_output(_reducer(word, 4), "job-0043", word, counts[word]),
    )

    # -- MR2: a buggy mapper deployment ----------------------------------
    buggy_code = run_job(hdfs, stored.path, "job-0044", 2, BUGGY_MAPPER)
    buggy_code.materialize()
    outputs = buggy_code.last_outputs
    word, bad_count = next(
        ((w, c) for (r, w), c in sorted(outputs.items()) if c < counts[w])
    )
    diagnose(
        "MR2: word counts dropped after a code deployment",
        reference,
        buggy_code,
        word,
        declarative.wordcount_output(_reducer(word, 2), "job-0042", word, counts[word]),
        declarative.wordcount_output(_reducer(word, 2), "job-0044", word, bad_count),
    )


def _reducer(word, n):
    from repro.datalog.builtins import call

    return call("hash_mod", [word, n])


if __name__ == "__main__":
    main()
