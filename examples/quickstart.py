#!/usr/bin/env python3
"""Quickstart: diagnose a misrouted packet with differential provenance.

A two-switch network forwards packets by longest-prefix/priority match.
The operator meant to route the whole 4.3.2.0/23 subnet to host h1 but
typed /24, so 4.3.2.1 arrives correctly (the *good* event) while
4.3.3.1 falls through to a default route (the *bad* event).

Run::

    python examples/quickstart.py
"""

from repro import Execution, Session, parse_program, parse_tuple

PROGRAM = """
// State and events of a tiny OpenFlow-style network.
table packet(Sw, Src, Dst) event immutable.
table flowEntry(Sw, Prio, Pfx, Port) mutable.
table packetOut(Sw, Src, Dst, Port) event.
table link(Sw, Port, Next) immutable.
table hostAt(Sw, Port, Host) immutable.
table delivered(Host, Src, Dst).

// Forwarding: the best matching entry (priority, then specificity).
fwd packetOut(@S, Src, Dst, Port) :- packet(@S, Src, Dst),
    flowEntry(@S, Prio, Pfx, Port) argmax<Prio, prefix_len(Pfx)>,
    ip_in_prefix(Dst, Pfx) == true.
move packet(@N, Src, Dst) :- packetOut(@S, Src, Dst, Port), link(@S, Port, N).
recv delivered(@H, Src, Dst) :- packetOut(@S, Src, Dst, Port), hostAt(@S, Port, H).
"""


def main():
    program = parse_program(PROGRAM)
    network = Execution(program, name="quickstart")

    # Wiring (immutable) and flow entries (mutable, i.e. fixable).
    for text in (
        "link('s1', 2, 's2')",
        "hostAt('s2', 3, 'h1')",
        "hostAt('s1', 9, 'h9')",
    ):
        network.insert(parse_tuple(text), mutable=False)
    for text in (
        "flowEntry('s1', 5, 4.3.2.0/24, 2)",  # the typo: should be /23
        "flowEntry('s1', 1, 0.0.0.0/0, 9)",   # default route
        "flowEntry('s2', 1, 0.0.0.0/0, 3)",
    ):
        network.insert(parse_tuple(text), mutable=True)

    # Two similar packets; only the first reaches h1.
    network.insert(parse_tuple("packet('s1', 7.7.7.7, 4.3.2.1)"), mutable=False)
    network.insert(parse_tuple("packet('s1', 7.7.7.7, 4.3.3.1)"), mutable=False)

    good_event = parse_tuple("delivered('h1', 7.7.7.7, 4.3.2.1)")
    bad_event = parse_tuple("delivered('h9', 7.7.7.7, 4.3.3.1)")

    # One Session wraps both views of the problem: classic provenance
    # queries and the differential diagnosis.
    session = Session(
        program=program,
        good=network, bad=network,
        good_event=good_event, bad_event=bad_event,
    )

    # A classic provenance query explains the bad event exhaustively ...
    bad_tree = session.tree(side="bad")
    print("--- classic provenance of the bad event "
          f"({bad_tree.size()} vertexes) ---")
    print(bad_tree.tuple_root.render())

    # ... while DiffProv, given the good event as a reference, returns
    # the root cause: the overly specific prefix, already widened.
    report = session.diagnose()
    print("\n--- differential provenance ---")
    print(report.summary())


if __name__ == "__main__":
    main()
