#!/usr/bin/env python3
"""SDN debugging end-to-end: the paper's Figure 1 scenario.

Builds the six-switch network with the NetCore-style policy front-end,
replays background traffic plus the two packets of interest, and then
compares the three diagnostic techniques of Table 1 on the resulting
executions: classic per-event provenance (the Y! baseline), the plain
tree diff strawman, and DiffProv.

Run::

    python examples/sdn_debugging.py
"""

from repro import Session
from repro.provenance.diff import naive_diff
from repro.replay import Execution
from repro.scenarios.sdn1 import figure1_topology, MIRROR_GROUP
from repro.sdn import model
from repro.sdn.netcore import compile_policy, fwd, group, match
from repro.sdn.traces import TraceConfig, synthetic_trace


def build_network():
    """Figure 1, with flow tables written as NetCore-style policies."""
    topo = figure1_topology()
    program = model.sdn_program()
    network = Execution(program, name="figure1")
    for tup in topo.wiring_tuples():
        network.insert(tup, mutable=False)

    # The operator's policies, one per switch.  The s2 policy contains
    # the bug: the untrusted subnet should be 4.3.2.0/23.
    policies = {
        "s1": match() >> fwd(topo.port("s1", "s2")),
        "s2": (match(src="4.3.2.0/24") >> fwd(topo.port("s2", "s6")))
        + (match() >> fwd(topo.port("s2", "s3"))),
        "s3": match() >> fwd(topo.port("s3", "s4")),
        "s4": match() >> fwd(topo.port("s4", "s5")),
        "s5": match() >> fwd(topo.port("s5", "web2")),
        "s6": match() >> group(MIRROR_GROUP),
    }
    for switch, policy in policies.items():
        for entry in compile_policy(policy, switch, base_priority=1):
            network.insert(entry, mutable=True)
    network.insert(
        model.group_entry("s6", MIRROR_GROUP, topo.port("s6", "web1")),
        mutable=True,
    )
    network.insert(
        model.group_entry("s6", MIRROR_GROUP, topo.port("s6", "dpi")),
        mutable=True,
    )
    return program, network


def main():
    program, network = build_network()

    # Background traffic (the replayed trace), then the two packets the
    # operator is comparing.
    pkt = 0
    for packet in synthetic_trace(
        TraceConfig(count=40, src_prefixes=("10.0.0.0/8",), seed=17)
    ):
        pkt += 1
        network.insert(
            model.packet("s1", pkt, packet.src, packet.dst), mutable=False
        )
    good_pkt, bad_pkt = pkt + 1, pkt + 2
    network.insert(model.packet("s1", good_pkt, "4.3.2.1", "172.16.0.80"),
                   mutable=False)
    network.insert(model.packet("s1", bad_pkt, "4.3.3.1", "172.16.0.80"),
                   mutable=False)

    good_event = model.delivered("web1", good_pkt, "4.3.2.1", "172.16.0.80")
    bad_event = model.delivered("web2", bad_pkt, "4.3.3.1", "172.16.0.80")

    session = Session(
        program=program,
        good=network, bad=network,
        good_event=good_event, bad_event=bad_event,
    )

    # Technique 1: classic provenance queries (Y!).
    good_tree = session.tree(side="good")
    bad_tree = session.tree(side="bad")
    print(f"good tree: {good_tree.size()} vertexes")
    print(f"bad tree:  {bad_tree.size()} vertexes")

    # Technique 2: the plain tree diff strawman (Section 2.5).
    diff = naive_diff(good_tree, bad_tree)
    print(f"plain diff: {len(diff)} vertexes — larger than either tree!")

    # Technique 3: DiffProv.
    report = session.diagnose()
    print()
    print(report.summary())
    print("\nper-phase timings (seconds):")
    for phase, seconds in sorted(report.timings.items()):
        print(f"  {phase:12s} {seconds:.4f}")


if __name__ == "__main__":
    main()
