#!/usr/bin/env python3
"""Root causes inside the controller program.

The paper's opening example of network provenance "associate[s] each
flow entry with the parts of the controller program that were used to
compute it".  This example puts that layer in the loop: flow entries
are *derived* from operator policies by the declarative controller
(``inst flowEntry :- policy, nextHop``), so the provenance of a
misrouted packet reaches through the entries into the policy — and so
does the diagnosis.

Two bugs are debugged:

1. the SDN1 typo, now inside a policy: the fix is the corrected
   *policy*, and it repairs every entry compiled from it at once;
2. the SDN2 conflict, now between two controller apps: the hijacking
   *flow entry* is derived state, so DiffProv traces its derivation and
   removes the second app's policy.

Run::

    python examples/controller_debugging.py
"""

from repro.provenance import provenance_query
from repro.scenarios.controller import SDN1WithController, SDN2WithController


def show(scenario):
    scenario.setup()
    print(f"=== {scenario.name}: {scenario.description} ===")
    bad_tree = provenance_query(scenario.bad_execution.graph, scenario.bad_event)
    policies = sorted(
        {
            str(node.tuple)
            for node in bad_tree.tuple_root.walk()
            if node.tuple.table == "policy"
        }
    )
    print("policies in the bad event's provenance:")
    for text in policies:
        print(f"  {text}")
    report = scenario.diagnose()
    print(report.summary())
    print()


def main():
    show(SDN1WithController())
    show(SDN2WithController())


if __name__ == "__main__":
    main()
