"""Legacy setup shim: enables `python setup.py develop` on offline
machines that lack the `wheel` package (PEP 660 editable installs need
it; `develop` does not)."""

from setuptools import setup

setup()
