"""Deterministic text corpora for the WordCount scenarios.

The paper runs WordCount over Wikipedia dumps and a 1 GB text corpus;
the content itself is irrelevant to the diagnosis, so we generate
deterministic Zipf-flavoured text with a fixed vocabulary.  The corpus
is built so that common words also appear at line starts — which is
what makes the MR2 bug (first word of each line dropped) observable in
the counts.
"""

from __future__ import annotations

import random
from typing import Dict, List

__all__ = ["VOCABULARY", "generate_corpus", "word_counts", "first_word_counts"]

VOCABULARY = [
    "the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
    "network", "packet", "switch", "route", "flow", "entry", "controller",
    "provenance", "query", "replay", "table", "rule", "config", "debug",
    "trace", "link", "port", "host", "server", "cluster", "job", "task",
    "mapper", "reducer", "shuffle", "count", "word", "line", "input",
    "output", "data", "system", "event", "state", "graph", "tree", "seed",
    "diff", "cause", "root",
]


def generate_corpus(lines: int = 40, words_per_line: int = 8, seed: int = 5) -> str:
    """Deterministic text with Zipf-distributed word frequencies."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(VOCABULARY))]
    total = sum(weights)
    weights = [w / total for w in weights]
    rows: List[str] = []
    for line_number in range(lines):
        # Rotate common words through the line-start position so the
        # MR2 bug (dropping the first word) visibly changes counts.
        first = VOCABULARY[line_number % 10]
        rest = rng.choices(VOCABULARY, weights=weights, k=words_per_line - 1)
        rows.append(" ".join([first] + rest))
    return "\n".join(rows)


def word_counts(text: str) -> Dict[str, int]:
    """Ground-truth word counts of a corpus (correct mapper)."""
    from .wordcount import split_words

    counts: Dict[str, int] = {}
    for line in text.splitlines():
        for word in split_words(line):
            counts[word] = counts.get(word, 0) + 1
    return counts


def first_word_counts(text: str) -> Dict[str, int]:
    """How often each word appears at the start of a line."""
    from .wordcount import split_words

    counts: Dict[str, int] = {}
    for line in text.splitlines():
        words = split_words(line)
        if words:
            counts[words[0]] = counts.get(words[0], 0) + 1
    return counts
