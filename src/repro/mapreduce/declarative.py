"""The declarative (NDlog) model of the WordCount pipeline.

Used directly by the MR1-D / MR2-D scenarios (provenance *inferred*
from the rules, as in RapidNet) and as the dependency vocabulary that
the instrumented imperative runtime *reports* against (MR1-I / MR2-I) —
the reported derivations reference these rule names, so DiffProv
reasons identically over both.

Pipeline::

    jobRun(Job, File)                            -- job submission (the seed)
    wordOcc(File, Line, Pos, Word)               -- input data (immutable)
    mapperCode(Ver, Cksum)                       -- deployed mapper (mutable)
    jobConfig(Key, Val)                          -- 235 entries (mutable)
      map    -> emit(Job, File, Line, Pos, Word)
      shuffle-> wordAt(R, Job, Word, File, Line, Pos)  R = hash(Word) % reduces
      reduce -> wordcount(R, Job, Word, count<*>)
      outp   -> output(R, Job, Word, Count)
"""

from __future__ import annotations

from typing import List

from ..datalog.parser import parse_program
from ..datalog.rules import Program
from ..datalog.tuples import Tuple
from .hdfs import HDFSFile
from .wordcount import split_words

__all__ = [
    "MAPREDUCE_PROGRAM_TEXT",
    "mapreduce_program",
    "job_run",
    "word_occurrence",
    "mapper_code",
    "job_config_tuple",
    "wordcount_output",
    "load_words",
]

MAPREDUCE_PROGRAM_TEXT = """
table jobRun(Job, File) event immutable.
table wordOcc(File, Line, Pos, Word) immutable.
table mapperCode(Ver, Cksum) mutable.
table jobConfig(Key, Val) mutable.
table emit(Job, File, Line, Pos, Word) event.
table wordAt(R, Job, Word, File, Line, Pos).
table wordcount(R, Job, Word, Count).
table output(R, Job, Word, Count).

map emit(Job, File, Line, Pos, Word) :- jobRun(Job, File),
    wordOcc(File, Line, Pos, Word),
    mapperCode(Ver, Cksum),
    mapper_emits(Ver, Pos) == true.

shuffle wordAt(R, Job, Word, File, Line, Pos) :-
    emit(Job, File, Line, Pos, Word),
    jobConfig('mapreduce.job.reduces', N),
    R := hash_mod(Word, N).

reduce wordcount(R, Job, Word, count<*>) :- wordAt(R, Job, Word, File, Line, Pos).

outp output(R, Job, Word, Count) :- wordcount(R, Job, Word, Count).
"""


def mapreduce_program() -> Program:
    """A fresh copy of the MapReduce program."""
    return parse_program(MAPREDUCE_PROGRAM_TEXT)


# -- tuple constructors ----------------------------------------------------


def job_run(job: str, file: str) -> Tuple:
    """The job-submission event — the seed of every MapReduce tree."""
    return Tuple("jobRun", [job, file])


def word_occurrence(file: str, line: int, pos: int, word: str) -> Tuple:
    return Tuple("wordOcc", [file, line, pos, word])


def mapper_code(version: str, checksum: str) -> Tuple:
    """The deployed mapper, identified by its bytecode signature.

    Deployment state is cluster-wide (not keyed by job), which is what
    lets a reference job from the past explain the current one."""
    return Tuple("mapperCode", [version, checksum])


def job_config_tuple(key: str, value) -> Tuple:
    """One of the 235 cluster configuration entries."""
    return Tuple("jobConfig", [key, value])


def wordcount_output(reducer: int, job: str, word: str, count: int) -> Tuple:
    return Tuple("output", [reducer, job, word, count])


def load_words(stored: HDFSFile) -> List[Tuple]:
    """The input file as immutable ``wordOcc`` base tuples."""
    tuples: List[Tuple] = []
    for line_number, line in enumerate(stored.lines):
        for position, word in enumerate(split_words(line)):
            tuples.append(
                word_occurrence(stored.path, line_number, position, word)
            )
    return tuples
