"""The imperative WordCount runtime, instrumented for provenance.

This is the Hadoop stand-in of MR1-I / MR2-I: a conventional
map-shuffle-reduce job written in plain Python, with reporting hooks
(the paper's "< 200 lines of code" instrumentation) that describe its
data flow to the provenance recorder at the level of individual
key-value pairs, input file checksums, the mapper's bytecode signature,
and all 235 configuration entries.  The reported derivations reference
the rule names of the declarative model, so DiffProv reasons about both
implementations identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as PyTuple

from ..datalog.builtins import call as builtin_call
from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..provenance.recorder import ProvenanceRecorder
from ..replay.log import EventLog
from ..replay.replayer import Change
from ..replay.reported import ReportedExecution
from . import declarative
from .config import REDUCES_KEY, JobConfig
from .hdfs import HDFS
from .wordcount import MAPPERS, mapper_checksum, split_words

__all__ = ["WordCountJob", "ImperativeMapReduceExecution"]

_MAPPER_NODE = "mapper-0"


class WordCountJob:
    """One WordCount job run over the imperative runtime."""

    def __init__(
        self,
        job_id: str,
        hdfs: HDFS,
        input_path: str,
        config: JobConfig,
        mapper_version: str,
    ):
        if mapper_version not in MAPPERS:
            raise ReproError(f"unknown mapper version {mapper_version!r}")
        self.job_id = job_id
        self.hdfs = hdfs
        self.input_path = input_path
        self.config = config
        self.mapper_version = mapper_version
        self.outputs: Dict[PyTuple[int, str], int] = {}

    # -- the primary system ----------------------------------------------------

    def run(self, recorder: Optional[ProvenanceRecorder] = None) -> Dict:
        """Execute the job; report provenance when a recorder is given."""
        stored = self.hdfs.read(self.input_path)
        reducers = self.config.reduces
        mapper = MAPPERS[self.mapper_version]
        reporter = _Reporter(self, recorder) if recorder is not None else None
        if reporter is not None:
            reporter.job_started(stored)

        # Map phase: one mapper call per line; the instrumentation
        # attributes each emission to its word position in the line.
        emissions: List[PyTuple[int, int, str]] = []
        for line_number, line in enumerate(stored.lines):
            emitted = [word for word, _ in mapper(line)]
            positions = _attribute_positions(line, emitted)
            for position, word in positions:
                emissions.append((line_number, position, word))
                if reporter is not None:
                    reporter.emitted(line_number, position, word)

        # Shuffle phase: partition by a deterministic hash of the word.
        partitions: Dict[PyTuple[int, str], List[PyTuple[int, int]]] = {}
        for line_number, position, word in emissions:
            reducer = builtin_call("hash_mod", [word, reducers])
            partitions.setdefault((reducer, word), []).append(
                (line_number, position)
            )
            if reporter is not None:
                reporter.shuffled(line_number, position, word, reducer, reducers)

        # Reduce phase: count per word, then write the output records.
        self.outputs = {}
        for (reducer, word) in sorted(partitions):
            occurrences = partitions[(reducer, word)]
            count = len(occurrences)
            self.outputs[(reducer, word)] = count
            if reporter is not None:
                reporter.reduced(reducer, word, occurrences, count)
        return self.outputs


def _attribute_positions(line: str, emitted: List[str]) -> List[PyTuple[int, str]]:
    """Match the mapper's emissions back to word positions in the line.

    Emissions are matched greedily left-to-right against the tokenized
    line, so dropped words (the v2 bug) simply leave gaps.
    """
    words = split_words(line)
    positions: List[PyTuple[int, str]] = []
    cursor = 0
    for word in emitted:
        while cursor < len(words) and words[cursor] != word:
            cursor += 1
        if cursor >= len(words):
            raise ReproError(
                f"mapper emitted {word!r}, which is not in the line tail"
            )
        positions.append((cursor, word))
        cursor += 1
    return positions


class _Reporter:
    """The instrumentation hooks (reported-provenance mode)."""

    def __init__(self, job: WordCountJob, recorder: ProvenanceRecorder):
        self.job = job
        self.recorder = recorder
        self.job_tuple: Optional[Tuple] = None
        self.code_tuple: Optional[Tuple] = None
        self.config_tuples: Dict[str, Tuple] = {}
        self.word_tuples: Dict[PyTuple[int, int], Tuple] = {}
        self.emit_tuples: Dict[PyTuple[int, int], Tuple] = {}
        self.word_at: Dict[PyTuple[int, int], Tuple] = {}

    def job_started(self, stored) -> None:
        job_id = self.job.job_id
        for key, value in self.job.config.items():
            tup = declarative.job_config_tuple(key, value)
            self.config_tuples[key] = tup
            self.recorder.report_insert(_MAPPER_NODE, tup, mutable=True)
        checksum = mapper_checksum(self.job.mapper_version)
        self.code_tuple = declarative.mapper_code(
            self.job.mapper_version, checksum
        )
        self.recorder.report_insert(_MAPPER_NODE, self.code_tuple, mutable=True)
        for line_number, line in enumerate(stored.lines):
            for position, word in enumerate(split_words(line)):
                tup = declarative.word_occurrence(
                    stored.path, line_number, position, word
                )
                self.word_tuples[(line_number, position)] = tup
                self.recorder.report_insert(_MAPPER_NODE, tup, mutable=False)
        # Reported last, so it is the latest-appearing precondition of
        # every map derivation — i.e. the seed (Section 4.2).
        self.job_tuple = declarative.job_run(job_id, stored.path)
        self.recorder.report_insert(_MAPPER_NODE, self.job_tuple, mutable=False)

    def emitted(self, line: int, position: int, word: str) -> None:
        head = Tuple(
            "emit", [self.job.job_id, self.job.input_path, line, position, word]
        )
        self.emit_tuples[(line, position)] = head
        self.recorder.report_derive(
            _MAPPER_NODE,
            head,
            "map",
            # Body order matches the declarative rule's atoms.
            [self.job_tuple, self.word_tuples[(line, position)], self.code_tuple],
            env={
                "Job": self.job.job_id,
                "File": self.job.input_path,
                "Line": line,
                "Pos": position,
                "Word": word,
                "Ver": self.job.mapper_version,
                "Cksum": mapper_checksum(self.job.mapper_version),
            },
        )

    def shuffled(
        self, line: int, position: int, word: str, reducer: int, reducers: int
    ) -> None:
        head = Tuple(
            "wordAt",
            [reducer, self.job.job_id, word, self.job.input_path, line, position],
        )
        self.word_at[(line, position)] = head
        self.recorder.report_derive(
            f"reducer-{reducer}",
            head,
            "shuffle",
            [self.emit_tuples[(line, position)], self.config_tuples[REDUCES_KEY]],
            env={
                "Job": self.job.job_id,
                "File": self.job.input_path,
                "Line": line,
                "Pos": position,
                "Word": word,
                "N": reducers,
                "R": reducer,
            },
        )

    def reduced(self, reducer: int, word: str, occurrences, count: int) -> None:
        node = f"reducer-{reducer}"
        contributions = [self.word_at[occ] for occ in occurrences]
        count_tuple = Tuple("wordcount", [reducer, self.job.job_id, word, count])
        self.recorder.report_derive(node, count_tuple, "reduce", contributions)
        output_tuple = Tuple("output", [reducer, self.job.job_id, word, count])
        self.recorder.report_derive(node, output_tuple, "outp", [count_tuple])


class ImperativeMapReduceExecution(ReportedExecution):
    """A replayable, instrumented WordCount job.

    The event log holds only metadata — config entries, the mapper
    signature, and the input file's path + checksum — which is why the
    paper's MapReduce logs are a few kilobytes for gigabytes of input
    (Section 6.5).  Replay re-identifies the input in HDFS by checksum
    and re-runs the job with any base-tuple changes applied.
    """

    def __init__(
        self,
        job_id: str,
        hdfs: HDFS,
        input_path: str,
        config: JobConfig,
        mapper_version: str,
    ):
        self.job_id = job_id
        self.hdfs = hdfs
        self.input_path = input_path
        self.base_config = config
        self.base_mapper_version = mapper_version
        log = self._build_log()
        super().__init__(
            name=f"mapreduce:{job_id}",
            runner=self._run_with_changes,
            log=log,
            program=declarative.mapreduce_program(),
        )

    def _build_log(self) -> EventLog:
        log = EventLog()
        for key, value in self.base_config.items():
            log.append(
                "insert",
                declarative.job_config_tuple(key, value),
                mutable=True,
            )
        log.append(
            "insert",
            declarative.mapper_code(
                self.base_mapper_version,
                mapper_checksum(self.base_mapper_version),
            ),
            mutable=True,
        )
        checksum = self.hdfs.checksum_of(self.input_path)
        log.append(
            "insert", Tuple("fileMeta", [self.input_path, checksum]), mutable=False
        )
        log.append(
            "insert",
            declarative.job_run(self.job_id, self.input_path),
            mutable=False,
        )
        return log

    def _run_with_changes(self, changes: List[Change]) -> ProvenanceRecorder:
        config = self.base_config.copy()
        mapper_version = self.base_mapper_version
        for change in changes:
            for removed in change.remove:
                if removed.table == "jobConfig":
                    # Removal alone resets nothing; the paired insert
                    # below supplies the replacement value.
                    continue
            if change.insert is None:
                continue
            tup = change.insert
            if tup.table == "jobConfig":
                key, value = tup.args
                config.set(key, value)
            elif tup.table == "mapperCode":
                mapper_version = tup.args[0]
            else:
                raise ReproError(
                    f"imperative runtime cannot apply change to {tup.table!r}"
                )
        recorder = ProvenanceRecorder()
        job = WordCountJob(
            self.job_id, self.hdfs, self.input_path, config, mapper_version
        )
        job.run(recorder)
        self.last_outputs = job.outputs
        return recorder
