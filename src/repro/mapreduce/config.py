"""A Hadoop-like job configuration with 235 entries.

The paper's instrumentation reports all 235 configuration entries as
base tuples, which is what lets DiffProv pinpoint
``mapreduce.job.reduces`` among them when a config change is the root
cause (MR1).  The default entries below mirror the real Hadoop 2.7
namespace in shape; only a handful influence the WordCount pipeline,
the rest are realistic noise.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple as PyTuple

from ..errors import ReproError

__all__ = ["JobConfig", "REDUCES_KEY", "DEFAULT_ENTRY_COUNT"]

REDUCES_KEY = "mapreduce.job.reduces"
DEFAULT_ENTRY_COUNT = 235

_PREFIXES = (
    "mapreduce.map",
    "mapreduce.reduce",
    "mapreduce.task",
    "mapreduce.job",
    "mapreduce.jobhistory",
    "yarn.app.mapreduce.am",
    "mapreduce.shuffle",
    "mapreduce.input.fileinputformat",
    "mapreduce.output.fileoutputformat",
    "mapreduce.client",
)

_SUFFIXES = (
    "memory.mb", "java.opts", "cpu.vcores", "speculative", "maxattempts",
    "sort.mb", "sort.factor", "timeout", "log.level", "skip.maxrecords",
    "combine.minspills", "merge.percent", "buffer.percent", "parallelcopies",
    "connect.timeout", "read.timeout", "input.limit", "output.compress",
    "counters.limit", "ubertask.enable", "queue.name", "priority",
    "classpath", "env",
)


def _default_entries() -> Dict[str, object]:
    entries: Dict[str, object] = {REDUCES_KEY: 2}
    index = 0
    while len(entries) < DEFAULT_ENTRY_COUNT:
        prefix = _PREFIXES[index % len(_PREFIXES)]
        suffix = _SUFFIXES[(index // len(_PREFIXES)) % len(_SUFFIXES)]
        serial = index // (len(_PREFIXES) * len(_SUFFIXES))
        key = f"{prefix}.{suffix}" + (f".{serial}" if serial else "")
        if key not in entries:
            entries[key] = _default_value(index)
        index += 1
    return entries


def _default_value(index: int):
    cycle = index % 4
    if cycle == 0:
        return 1024 + (index % 7) * 256
    if cycle == 1:
        return index % 2 == 0
    if cycle == 2:
        return f"default-{index}"
    return index % 60 + 1


class JobConfig:
    """The configuration of one job: a realistic 235-entry map."""

    def __init__(self, overrides: Dict[str, object] = None):
        self._entries = _default_entries()
        for key, value in (overrides or {}).items():
            self._entries[key] = value

    def get(self, key: str):
        try:
            return self._entries[key]
        except KeyError:
            raise ReproError(f"unknown configuration key {key!r}") from None

    def set(self, key: str, value) -> None:
        self._entries[key] = value

    @property
    def reduces(self) -> int:
        return int(self.get(REDUCES_KEY))

    def items(self) -> Iterator[PyTuple[str, object]]:
        return iter(sorted(self._entries.items()))

    def copy(self) -> "JobConfig":
        clone = JobConfig()
        clone._entries = dict(self._entries)
        return clone

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self):
        return f"JobConfig({len(self)} entries, reduces={self.reduces})"
