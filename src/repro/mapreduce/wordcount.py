"""WordCount mappers, including the buggy deployment of MR2.

Mapper versions are identified by the checksum of their source (the
stand-in for Hadoop's Java bytecode signature).  Version ``v1`` is the
correct mapper; ``v2`` is the MR2 bug: it drops the first word of every
line.  The ``mapper_emits`` builtin exposes the versions' emission
behaviour to the declarative model so both implementations stay in
lockstep.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, List, Tuple as PyTuple

from ..datalog import builtins as _builtins
from ..errors import ReproError

__all__ = [
    "split_words",
    "MAPPERS",
    "MAPPER_SOURCES",
    "mapper_checksum",
    "CORRECT_MAPPER",
    "BUGGY_MAPPER",
]

CORRECT_MAPPER = "v1"
BUGGY_MAPPER = "v2"

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


def split_words(line: str) -> List[str]:
    """Tokenize one line into lowercase words."""
    return [w.lower() for w in _WORD_RE.findall(line)]


def mapper_v1(line: str) -> Iterator[PyTuple[str, int]]:
    """The correct mapper: every word of the line counts once."""
    for word in split_words(line):
        yield word, 1


def mapper_v2(line: str) -> Iterator[PyTuple[str, int]]:
    """The buggy mapper (MR2): skips the first word of each line.

    The bug mimics an off-by-one over the token index in the rewritten
    user code the paper's industrial collaborator deployed.
    """
    for position, word in enumerate(split_words(line)):
        if position == 0:
            continue
        yield word, 1


MAPPERS: Dict[str, Callable] = {
    CORRECT_MAPPER: mapper_v1,
    BUGGY_MAPPER: mapper_v2,
}

# The source strings stand in for Java bytecode: their checksum is the
# "bytecode signature" the instrumentation reports.
MAPPER_SOURCES: Dict[str, str] = {
    CORRECT_MAPPER: (
        "for (String word : tokenize(line)) { context.write(word, ONE); }"
    ),
    BUGGY_MAPPER: (
        "String[] words = tokenize(line); "
        "for (int i = 1; i < words.length; i++) "
        "{ context.write(words[i], ONE); }"
    ),
}


def mapper_checksum(version: str) -> str:
    """The bytecode-signature stand-in for a mapper version."""
    try:
        source = MAPPER_SOURCES[version]
    except KeyError:
        raise ReproError(f"unknown mapper version {version!r}") from None
    return _builtins.call("checksum", [source])


def _mapper_emits(version: str, position: int) -> bool:
    """Whether a mapper version emits the word at ``position`` in a line."""
    if version == CORRECT_MAPPER:
        return True
    if version == BUGGY_MAPPER:
        return position > 0
    raise ReproError(f"unknown mapper version {version!r}")


_builtins.register(
    "mapper_emits",
    _mapper_emits,
    2,
    doc="True iff the given mapper version emits the word at a position.",
)
