"""A checksummed file store (the HDFS stand-in).

The paper's logging engine records only the *metadata* of input files —
path and checksum — and the replay engine re-identifies the files by
checksum at query time, which is why MapReduce logs stay tiny
(Section 6.5).  Checksums are cached at write time; the latency
ablation of Section 6.4 compares this against recomputing them on every
read.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..datalog.builtins import call as builtin_call
from ..errors import ReproError

__all__ = ["HDFSFile", "HDFS"]


class HDFSFile:
    """One stored file: lines of text plus a content checksum."""

    __slots__ = ("path", "lines", "checksum")

    def __init__(self, path: str, lines: List[str], checksum: str):
        self.path = path
        self.lines = list(lines)
        self.checksum = checksum

    @property
    def size_bytes(self) -> int:
        return sum(len(line) + 1 for line in self.lines)

    def __repr__(self):
        return f"HDFSFile({self.path!r}, {len(self.lines)} lines, {self.checksum})"


class HDFS:
    """An in-process file store with write-time checksum caching."""

    def __init__(self, cache_checksums: bool = True):
        self.cache_checksums = cache_checksums
        self._files: Dict[str, HDFSFile] = {}
        self.checksum_computations = 0

    def write(self, path: str, text: str) -> HDFSFile:
        lines = text.splitlines()
        checksum = self._compute_checksum(lines)
        stored = HDFSFile(path, lines, checksum)
        self._files[path] = stored
        return stored

    def read(self, path: str) -> HDFSFile:
        stored = self._files.get(path)
        if stored is None:
            raise ReproError(f"no such HDFS file: {path!r}")
        if not self.cache_checksums:
            # The unoptimized prototype recomputes the checksum on every
            # read; Section 6.4 measures the cost of exactly this.
            stored = HDFSFile(
                stored.path, stored.lines, self._compute_checksum(stored.lines)
            )
            self._files[path] = stored
        return stored

    def checksum_of(self, path: str) -> str:
        return self.read(path).checksum

    def exists(self, path: str) -> bool:
        return path in self._files

    def paths(self) -> List[str]:
        return sorted(self._files)

    def find_by_checksum(self, checksum: str) -> Optional[HDFSFile]:
        """Replay-time lookup: identify an input file by its checksum."""
        for stored in self._files.values():
            if stored.checksum == checksum:
                return stored
        return None

    def _compute_checksum(self, lines: List[str]) -> str:
        self.checksum_computations += 1
        return builtin_call("checksum", ["\n".join(lines)])
