"""MapReduce substrate (the Hadoop 2.7.1 stand-in).

Two implementations of the classical WordCount job:

- a **declarative** NDlog model (:mod:`repro.mapreduce.declarative`),
  evaluated on the engine with inferred provenance — the paper's
  MR1-D / MR2-D setup;
- an **imperative** runtime (:mod:`repro.mapreduce.job`) instrumented
  to *report* its dependencies (input file checksums, the mapper's
  bytecode signature, 235 configuration entries, and per-key-value
  data flow) to the provenance recorder — the MR1-I / MR2-I setup.
"""

from .hdfs import HDFS, HDFSFile
from .config import JobConfig, REDUCES_KEY
from .wordcount import MAPPERS, mapper_checksum, MAPPER_SOURCES
from .declarative import (
    mapreduce_program,
    job_run,
    word_occurrence,
    mapper_code,
    job_config_tuple,
    load_words,
)
from .job import WordCountJob, ImperativeMapReduceExecution

__all__ = [
    "HDFS",
    "HDFSFile",
    "JobConfig",
    "REDUCES_KEY",
    "MAPPERS",
    "MAPPER_SOURCES",
    "mapper_checksum",
    "mapreduce_program",
    "job_run",
    "word_occurrence",
    "mapper_code",
    "job_config_tuple",
    "load_words",
    "WordCountJob",
    "ImperativeMapReduceExecution",
]
