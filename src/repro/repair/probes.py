"""Good-behaviour probe suites for rollback verification.

A rollback plan must clear the bad symptom *without breaking anything
that worked*.  The regression evidence used here is the engine's state
tables: every **derived** state tuple (a delivered packet, a computed
forwarding decision, a reduce output) that is alive both in the
unmodified bad replay and in the *reference* replay (the bad log with
the full diagnosis Δ applied) demonstrably (a) held before the
rollback and (b) is compatible with the intended fix.  A candidate
plan that makes one of them disappear breaks good behaviour and is
vetoed.

Event tables are excluded on purpose: events are instants, not state,
and their terminal effects (e.g. ``delivered``) are state tuples
anyway.  Base tuples are excluded from the *probe* suite — they are
the plan's inputs, not its observable behaviour — but they do count
toward the blast radius (:func:`alive_state` includes them), so a plan
that leaves stale configuration behind ranks below one that doesn't.
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..datalog.tuples import TableKind, Tuple

__all__ = [
    "state_tables",
    "alive_state",
    "derived_alive_state",
    "probe_suite",
]


def state_tables(program) -> List[str]:
    """Names of the program's non-event tables, sorted (deterministic)."""
    return sorted(
        name
        for name, schema in program.schemas.items()
        if schema.kind != TableKind.EVENT
    )


def alive_state(result, program) -> FrozenSet[Tuple]:
    """Every live state tuple of a replayed engine, base and derived.

    This is the final-state footprint used for the blast radius: the
    symmetric difference of two footprints counts how far apart two
    post-fix worlds ended up.
    """
    store = result.engine.store
    alive = set()
    for table in state_tables(program):
        alive.update(store.tuples(table))
    return frozenset(alive)


def derived_alive_state(result, program) -> FrozenSet[Tuple]:
    """Live *derived* state tuples only — the observable behaviour."""
    store = result.engine.store
    derived = set()
    for table in state_tables(program):
        for tup in store.tuples(table):
            record = store.record(tup)
            if record is not None and not record.is_base:
                derived.add(tup)
    return frozenset(derived)


def probe_suite(pristine, reference, program) -> FrozenSet[Tuple]:
    """The good probes: derived state alive in both worlds.

    ``pristine`` is the unmodified bad replay, ``reference`` the replay
    with the full diagnosis Δ applied.  Intersecting the two excludes
    the symptom (gone in the reference) and anything the fix itself
    newly derives (absent pristine) — what remains is behaviour that
    held before the incident *and* survives the intended fix, i.e.
    exactly what no rollback plan may break.
    """
    return derived_alive_state(pristine, program) & derived_alive_state(
        reference, program
    )
