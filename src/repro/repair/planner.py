"""Rollback plans: enumeration, counterfactual verification, ranking.

A :class:`RollbackPlan` is an ordered list of base-tuple
:class:`~repro.replay.replayer.Change` steps derived from a finished
diagnosis.  The planner enumerates a small deterministic candidate set
(revert-to-reference, per-change singletons, insert-only and
delete-only narrowings of each modification), verifies each candidate
by replaying the bad execution with the plan applied — through the
shared :class:`~repro.replay.cache.ReplayCache` prefix forks, and over
:class:`~repro.replay.parallel.CandidateEvaluator` waves when
``workers > 1`` — and keeps only plans where the bad symptom is gone
**and** every good probe still holds (:mod:`repro.repair.probes`).

Survivors are ranked ascending by ``(edit size, blast radius, touched
tuples, plan key)``; the winner is the smallest fix that lands the
system closest to the verified reference world.  Verdicts are recorded
in the write-ahead journal (kind ``"repair"``), so a SIGKILL'd run
resumes without re-replaying, and the returned section is pure JSON —
it goes into ``report.repair`` and is part of the canonical report.

This module decides *which* tuples to revert; the changed values
themselves were synthesized during the diagnosis by
:mod:`repro.core.repair` (condition repair).  See the package
docstring and docs/repair.md for the split.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..datalog.tuples import TableKind
from ..errors import ReproError, StepLimitExceeded
from ..faults import FaultInjector
from ..replay.cache import ReplayCache
from ..replay.parallel import CandidateEvaluator
from ..replay.replayer import Change
from .probes import alive_state, probe_suite

__all__ = [
    "RollbackPlan",
    "RollbackPlanner",
    "MAX_PLANS",
    "MAX_LISTED_PROBES",
    "REJECT_SYMPTOM",
    "REJECT_PROBES",
    "REJECT_REPLAY",
]

# Enumeration cap: the candidate set is quadratic-free by construction
# (at most 1 + n + 2n plans for n changes), but a pathological
# diagnosis with dozens of changes should not replay dozens of plans.
MAX_PLANS = 16

# Failed probes listed per rejected plan (the full count is reported).
MAX_LISTED_PROBES = 5

# Rejection reasons (machine-readable, part of the canonical section).
REJECT_SYMPTOM = "symptom-persists"
REJECT_PROBES = "breaks-good-probes"
REJECT_REPLAY = "replay-failed"


class RollbackPlan:
    """One candidate fix: ordered base-tuple changes plus provenance.

    ``origin`` records how the plan was enumerated
    (``revert-to-reference``, ``single-change``, ``insert-missing``,
    ``delete-spurious``) — it is display metadata; plan identity (and
    journal keying) rests on the steps alone.
    """

    __slots__ = ("steps", "origin")

    def __init__(self, steps: Sequence[Change], origin: str):
        self.steps = list(steps)
        if not self.steps:
            raise ReproError("a RollbackPlan needs at least one step")
        self.origin = origin

    @property
    def edit_size(self) -> int:
        """Number of change steps — the primary ranking key."""
        return len(self.steps)

    @property
    def touched(self) -> int:
        """Base tuples the plan inserts or removes (tie-breaker)."""
        count = 0
        for step in self.steps:
            if step.insert is not None:
                count += 1
            count += len(step.remove)
        return count

    def describe_steps(self) -> List[str]:
        return [step.describe() for step in self.steps]

    def key(self) -> str:
        """Deterministic identity: the canonical step descriptions."""
        return "|".join(self.describe_steps())

    def __repr__(self):
        return f"RollbackPlan({self.origin}, {self.key()})"


def _probe_plan(shared, index):
    """Worker-side verification of one rollback plan.

    Runs in a forked process (or on a pickled clone inline — see
    :class:`repro.replay.parallel.CandidateEvaluator`); nothing it
    touches leaks back to the planning process.  Plan verdicts are
    independent of each other, so unlike the minimality pass no wave
    invalidation is needed — every plan in the wave is consumed.
    """
    planner, plans = shared
    if planner.bad.replay_cache is None:
        # Worker-local snapshot cache: plans landing on the same worker
        # fork from shared prefixes instead of re-deriving.
        planner.bad.replay_cache = ReplayCache()
    return planner.verify(plans[index])


class RollbackPlanner:
    """Turn one successful diagnosis into ranked, replay-verified plans."""

    def __init__(
        self,
        program,
        bad,
        *,
        good_event,
        bad_event,
        changes: Sequence[Change],
        anchor_index: Optional[int],
        workers: int = 1,
        fault_plan=None,
        journal=None,
        deadline=None,
        telemetry=None,
        resilience=None,
    ):
        self.program = program
        self.bad = bad
        self.good_event = good_event
        self.bad_event = bad_event
        self.changes = list(changes)
        self.anchor_index = anchor_index
        self.workers = workers
        self.fault_plan = fault_plan
        self.journal = journal
        self.deadline = deadline
        self.telemetry = telemetry
        self.resilience = resilience
        # Logical replay accounting: +1 per verdict consumed whether it
        # came from a live replay, a snapshot restore, or a journal hit
        # — the count is part of the canonical section, so it must be
        # identical across workers × cache × resume.
        self.replays = 0
        self.evaluator_counters: Dict[str, int] = {}
        self.probes = frozenset()
        self.reference_alive = frozenset()
        self.mutable_base: List = []
        self._prepared = False

    def __getstate__(self):
        # Shipped to candidate-evaluator workers: telemetry, the
        # journal (open file handle), and the deadline (live clock)
        # stay behind, exactly like _DiagnosisState.
        state = self.__dict__.copy()
        state["telemetry"] = None
        state["journal"] = None
        state["deadline"] = None
        return state

    # -- the pipeline ---------------------------------------------------------

    def plan(self) -> Dict[str, object]:
        """Enumerate, verify, and rank; returns the ``repair`` section.

        Raises :class:`~repro.errors.DeadlineExceeded` when the shared
        diagnosis budget runs out — the caller degrades the section to
        "diagnosis only" (docs/repair.md).
        """
        if not self.changes:
            return {
                "status": "no-changes",
                "probes": 0,
                "replays": 0,
                "plans": [],
                "rejected": [],
            }
        self._check_deadline()
        self.prepare()
        plans = self.enumerate()
        verdicts = self._verify_all(plans)
        return self._section(plans, verdicts)

    def prepare(self) -> None:
        """Build the probe suite and the reference footprint (2 replays).

        ``pristine`` is the bad log replayed unchanged; ``reference``
        is the bad log with the full diagnosis Δ applied — the world
        the diagnosis already verified.  Both replays hit the shared
        snapshot cache when one is attached.
        """
        if self._prepared:
            return
        pristine = self.bad.replay()
        self.replays += 1
        self._check_deadline()
        reference = self.bad.replay(self.changes, self.anchor_index)
        self.replays += 1
        self.probes = probe_suite(pristine, reference, self.program)
        self.reference_alive = alive_state(reference, self.program)
        self.mutable_base = self._mutable_base(pristine)
        self._prepared = True

    def _mutable_base(self, pristine):
        """The pristine config surface: live mutable base tuples.

        The enumeration mines it for *stale counterparts* — config
        entries one field away from a tuple the diagnosis inserts (in
        SDN1: the original 4.3.2.0/24 flow entry next to the inserted
        /23 one).  Sorted by rendering for deterministic plan order.
        """
        store = pristine.engine.store
        base = []
        for name in sorted(self.program.schemas):
            schema = self.program.schemas[name]
            if schema.kind == TableKind.EVENT or not schema.mutable:
                continue
            for tup in store.tuples(name):
                record = store.record(tup)
                if record is not None and record.is_base:
                    base.append(tup)
        return sorted(base, key=str)

    def _counterparts(self, insert) -> List:
        """Live mutable base tuples exactly one field away from ``insert``.

        These are the entries the inserted tuple was synthesized *from*
        (condition repair changes one field at a time), i.e. the stale
        config the fix supersedes.
        """
        out = []
        for tup in self.mutable_base:
            if (
                tup.table != insert.table
                or tup.arity != insert.arity
                or tup == insert
            ):
                continue
            if sum(1 for a, b in zip(tup.args, insert.args) if a != b) == 1:
                out.append(tup)
        return out

    def enumerate(self) -> List[RollbackPlan]:
        """The deterministic candidate set, deduplicated by step key.

        1. Revert-to-reference: the full diagnosis Δ in discovery
           order (always verifies; blast radius 0 by construction).
        2. Single-change plans, when the diagnosis found several
           changes — maybe one alone already clears the symptom.
        3. Per modification, the insert-only narrowing (add the fixed
           entry, keep the old one) and the delete-only narrowing
           (remove the spurious entry, add nothing).
        4. Per inserted tuple, one *replace-stale* widening per stale
           counterpart (insert the fix AND retire the one-field-away
           config entry it supersedes) and the corresponding
           delete-only plan — which usually fails verification, and
           documents *why* in the rejected list.
        """
        self.prepare()
        plans: List[RollbackPlan] = []
        seen = set()

        def add(steps, origin) -> None:
            if len(plans) >= MAX_PLANS:
                return
            plan = RollbackPlan(steps, origin)
            if plan.key() in seen:
                return
            seen.add(plan.key())
            plans.append(plan)

        add(self.changes, "revert-to-reference")
        if len(self.changes) > 1:
            for change in self.changes:
                add([change], "single-change")
        for change in self.changes:
            if change.is_modification:
                add(
                    [Change(insert=change.insert, reason=change.reason)],
                    "insert-missing",
                )
                add(
                    [Change(remove=change.remove, reason=change.reason)],
                    "delete-spurious",
                )
        for change in self.changes:
            if change.insert is None:
                continue
            for stale in self._counterparts(change.insert):
                reason = f"{stale} is superseded by {change.insert}"
                add(
                    [
                        Change(
                            insert=change.insert,
                            remove=(stale,),
                            reason=reason,
                        )
                    ],
                    "replace-stale",
                )
                add([Change(remove=(stale,), reason=reason)],
                    "delete-spurious")
        return plans

    def verify(self, plan: RollbackPlan) -> Dict[str, object]:
        """Counterfactually verify one plan; returns a JSON verdict.

        One replay of the bad log with the plan applied at the anchor;
        the verdict records whether the symptom ever appeared, which
        good probes failed, and the blast radius — the size of the
        symmetric difference between the plan's final state footprint
        and the reference's (0 = the plan lands exactly on the world
        the diagnosis verified).
        """
        if not self._prepared:
            self.prepare()
        try:
            replayed = self.bad.replay(plan.steps, self.anchor_index)
        except StepLimitExceeded:
            # A partial rollback can in principle loop the replayed
            # system (e.g. a forwarding cycle); that rejects the plan,
            # it never kills the planner.
            return {
                "symptom_gone": False,
                "probes_failed": 0,
                "failed_probes": [],
                "blast_radius": -1,
                "error": "step-limit",
            }
        symptom_gone = not replayed.graph.ever_existed(self.bad_event)
        alive = alive_state(replayed, self.program)
        failed = sorted(str(p) for p in self.probes if p not in alive)
        return {
            "symptom_gone": bool(symptom_gone),
            "probes_failed": len(failed),
            "failed_probes": failed[:MAX_LISTED_PROBES],
            "blast_radius": len(alive ^ self.reference_alive),
        }

    # -- verification fan-out -------------------------------------------------

    def _verify_all(self, plans) -> List[Dict[str, object]]:
        verdicts: List[Optional[Dict[str, object]]] = [None] * len(plans)
        pending: List[int] = []
        for index, plan in enumerate(plans):
            cached = self._journal_lookup(plan)
            if cached is not None:
                # Resume fast path: the verdict replaces exactly one
                # replay — mirror the accounting.
                self.replays += 1
                verdicts[index] = cached
            else:
                pending.append(index)
        if (
            len(pending) > 1
            and self.workers > 1
            and (self.fault_plan is None or self.fault_plan.host_only())
        ):
            # Verdicts are independent, so (unlike minimize) a resumed
            # journal does not force the serial path — journal hits were
            # consumed above and only the misses fan out.  Results are
            # consumed in plan order either way: byte-identical.
            done = self._verify_parallel(plans, pending, verdicts)
            pending = pending[done:]
        for index in pending:
            self._check_deadline()
            verdict = self.verify(plans[index])
            self.replays += 1
            self._journal_record(plans[index], verdict)
            verdicts[index] = verdict
        return verdicts

    def _verify_parallel(self, plans, pending, verdicts) -> int:
        """One speculative wave over every unverified plan.

        Returns how many of ``pending`` were consumed; the serial loop
        finishes the rest (non-zero only when the planning context
        cannot be pickled, e.g. an execution stand-in).
        """
        faults = (
            FaultInjector(self.fault_plan, "evaluator")
            if self.fault_plan is not None
            else None
        )
        evaluator = CandidateEvaluator(
            self.workers,
            self.telemetry,
            policy=self.resilience,
            faults=faults,
        )
        try:
            self._check_deadline()
            shared = (self, [plans[i] for i in pending])
            results = evaluator.evaluate(_probe_plan, shared, len(pending))
            if results is None:
                return 0
            for position, index in enumerate(pending):
                status, value = results[position]
                if status == "err":
                    raise value
                self.replays += 1
                self._journal_record(plans[index], value)
                verdicts[index] = value
            return len(pending)
        finally:
            for name, value in evaluator.counters().items():
                if value:
                    self.evaluator_counters[name] = (
                        self.evaluator_counters.get(name, 0) + value
                    )

    # -- journal + deadline plumbing ------------------------------------------

    def _plan_key(self, plan: RollbackPlan) -> str:
        """Journal key: the exact inputs of the verification replay.

        Namespaced by the queried events (an autoref sweep shares one
        journal across candidate diagnoses) and the anchor, like the
        minimality pass's trial keys.
        """
        return (
            f"{self.good_event}~{self.bad_event}"
            f"@{self.anchor_index}|{plan.key()}"
        )

    def _journal_lookup(self, plan) -> Optional[Dict[str, object]]:
        if self.journal is None:
            return None
        cached = self.journal.lookup("repair", self._plan_key(plan))
        return dict(cached) if isinstance(cached, dict) else None

    def _journal_record(self, plan, verdict) -> None:
        if self.journal is not None:
            self.journal.record("repair", self._plan_key(plan), verdict)

    def _check_deadline(self) -> None:
        if self.deadline is not None:
            self.deadline.check("repair")

    # -- ranking and the canonical section ------------------------------------

    def _section(self, plans, verdicts) -> Dict[str, object]:
        verified = []
        rejected = []
        for plan, verdict in zip(plans, verdicts):
            if verdict.get("error"):
                reason = REJECT_REPLAY
            elif not verdict["symptom_gone"]:
                reason = REJECT_SYMPTOM
            elif verdict["probes_failed"]:
                reason = REJECT_PROBES
            else:
                verified.append((plan, verdict))
                continue
            rejected.append(
                {
                    "origin": plan.origin,
                    "steps": plan.describe_steps(),
                    "reason": reason,
                    "probes_failed": verdict["probes_failed"],
                    "failed_probes": list(verdict["failed_probes"]),
                }
            )
        verified.sort(
            key=lambda pair: (
                pair[0].edit_size,
                pair[1]["blast_radius"],
                pair[0].touched,
                pair[0].key(),
            )
        )
        return {
            "status": "ok",
            "probes": len(self.probes),
            "replays": self.replays,
            "plans": [
                {
                    "rank": rank,
                    "origin": plan.origin,
                    "steps": plan.describe_steps(),
                    "edit_size": plan.edit_size,
                    "touched": plan.touched,
                    "blast_radius": verdict["blast_radius"],
                    "symptom_gone": True,
                    "good_probes_ok": True,
                }
                for rank, (plan, verdict) in enumerate(verified, 1)
            ],
            "rejected": rejected,
        }
