"""Provenance-guided rollback planning (docs/repair.md).

This package closes the loop from *diagnosis* to *repair*.  It sits on
top of — and is deliberately distinct from — the condition-repair
machinery in :mod:`repro.core.repair`:

- **Condition repair** (``core/repair.py``) is *value synthesis*: given
  a rule condition that fails under the bad-side binding, compute a
  changed field value that makes it hold (widen a prefix, invert an
  arithmetic computation).  It answers "what should this tuple say
  instead?" and runs *inside* the DiffProv loop, producing the change
  set Δ(B→G).

- **Rollback planning** (this package) is *plan selection and
  verification*: given the finished diagnosis — its root-cause tuples
  and the synthesized values — decide *which* base tuples/config
  entries to revert, to what, and verify each candidate plan
  counterfactually by replaying the bad execution with the plan
  applied.  A plan survives only if the bad symptom disappears **and**
  a regression suite of good probes still holds; survivors are ranked
  by edit size and blast radius.

The entry points an operator actually uses live one layer up:
``Session.repair()`` / ``Session.diagnose(repair=True)``, the CLI's
``diffprov repair`` / ``diffprov diagnose --repair``, the service
protocol's ``repair`` option, and the streaming monitor's ``repair``
flag.  All of them attach the planner's deterministic section as
``report.repair`` (part of ``canonical_dict()``: byte-identical across
workers × replay-cache × crash-resume).
"""

from .planner import (
    MAX_LISTED_PROBES,
    MAX_PLANS,
    REJECT_PROBES,
    REJECT_REPLAY,
    REJECT_SYMPTOM,
    RollbackPlan,
    RollbackPlanner,
)
from .probes import alive_state, derived_alive_state, probe_suite

__all__ = [
    "RollbackPlan",
    "RollbackPlanner",
    "MAX_PLANS",
    "MAX_LISTED_PROBES",
    "REJECT_SYMPTOM",
    "REJECT_PROBES",
    "REJECT_REPLAY",
    "alive_state",
    "derived_alive_state",
    "probe_suite",
]
