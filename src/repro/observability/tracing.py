"""Hierarchical tracing: span trees over the diagnosis pipeline.

A span names one phase of work (``component.phase``, e.g.
``diffprov.diff_trees`` or ``engine.run``), measures its wall time with
an injectable clock, and nests under whatever span was open when it
started.  The resulting forest exports as a plain JSON tree or as
Chrome ``trace_event`` format (load in ``chrome://tracing`` or
https://ui.perfetto.dev).

Exception safety: a span that exits through an exception still closes
(its end time is recorded) and is marked ``status="error"`` with the
exception text; the exception propagates unchanged.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed phase of work, with attributes and child spans."""

    __slots__ = (
        "name",
        "attrs",
        "start",
        "end",
        "status",
        "error",
        "parent",
        "children",
    )

    def __init__(self, name: str, attrs: Dict[str, object], start: float):
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.parent: Optional["Span"] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value) -> None:
        """Attach (or update) an attribute after the span opened."""
        self.attrs[key] = value

    def to_dict(self) -> Dict:
        data: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
        }
        if self.error is not None:
            data["error"] = self.error
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Span":
        """Rebuild a span subtree serialized by :meth:`to_dict`.

        The inverse the service uses to graft a worker process's span
        tree into the server's trace (:meth:`Tracer.graft`).
        """
        span = cls(
            str(data.get("name", "?")),
            dict(data.get("attrs") or {}),
            float(data.get("start") or 0.0),
        )
        end = data.get("end")
        span.end = None if end is None else float(end)
        span.status = str(data.get("status", "ok"))
        error = data.get("error")
        span.error = None if error is None else str(error)
        for child_data in data.get("children") or ():
            child = cls.from_dict(child_data)
            child.parent = span
            span.children.append(child)
        return span

    def __repr__(self):
        return (
            f"Span({self.name}, {self.duration:.6f}s, {self.status}, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Builds a span forest; one instance per telemetry session."""

    def __init__(self, clock: Callable[[], float] = _time.perf_counter):
        self.clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.span_count = 0
        # Cross-process trace position (repro.observability.ops
        # TraceContext) — when set, root spans are stamped with
        # trace_id / span lineage attributes so traces from different
        # processes stitch into one.
        self.context = None

    def _stamp(self, name: str, attrs: Dict[str, object]) -> None:
        if self.context is not None:
            for key, value in self.context.child(name).span_attrs().items():
                attrs.setdefault(key, value)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a span nested under the currently open one (if any)."""
        if not self._stack:
            self._stamp(name, attrs)
        span = Span(name, attrs, self.clock())
        if self._stack:
            span.parent = self._stack[-1]
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        self.span_count += 1
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end = self.clock()
            self._stack.pop()

    # -- detached spans (async-safe) -----------------------------------------

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attrs) -> Span:
        """Open a span with an *explicit* parent, off the ambient stack.

        The contextmanager :meth:`span` nests under "whatever is open",
        which is wrong for a server interleaving many asyncio requests;
        detached spans carry their lineage explicitly and are closed
        with :meth:`finish`.
        """
        if parent is None:
            self._stamp(name, attrs)
        span = Span(name, attrs, self.clock())
        if parent is not None:
            span.parent = parent
            parent.children.append(span)
        else:
            self.roots.append(span)
        self.span_count += 1
        return span

    def finish(self, span: Span, status: str = "ok",
               error: Optional[str] = None) -> Span:
        """Close a detached span (idempotent on the end timestamp)."""
        if span.end is None:
            span.end = self.clock()
        span.status = status
        if error is not None:
            span.error = error
        return span

    def graft(self, data: Dict, parent: Optional[Span] = None) -> Span:
        """Attach a serialized span subtree (another process's trace).

        ``data`` is a :meth:`Span.to_dict` payload — e.g. the span tree
        a fleet worker shipped back in its response — rebuilt and hung
        under ``parent`` (or as a new root).
        """
        span = Span.from_dict(data)
        if parent is not None:
            span.parent = parent
            parent.children.append(span)
        else:
            self.roots.append(span)
        grafted = 0
        stack = [span]
        while stack:
            node = stack.pop()
            grafted += 1
            stack.extend(node.children)
        self.span_count += grafted
        return span

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def iter_spans(self) -> Iterator[Span]:
        """All spans, depth-first in creation order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    # -- aggregation ---------------------------------------------------------

    def phase_totals(self) -> List[Dict]:
        """Wall time and invocation count per span name.

        Ordered by first appearance (depth-first), so the list reads as
        the pipeline's phase order.
        """
        totals: Dict[str, Dict] = {}
        order: List[str] = []
        for span in self.iter_spans():
            entry = totals.get(span.name)
            if entry is None:
                entry = totals[span.name] = {
                    "name": span.name,
                    "seconds": 0.0,
                    "count": 0,
                }
                order.append(span.name)
            entry["seconds"] += span.duration
            entry["count"] += 1
        return [totals[name] for name in order]

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {"spans": [root.to_dict() for root in self.roots]}

    def to_chrome_trace(self) -> Dict:
        """The forest as Chrome ``trace_event`` complete events.

        Timestamps are microseconds on the tracer's clock (origin is
        arbitrary, as ``trace_event`` allows).  Open ``chrome://tracing``
        or https://ui.perfetto.dev and load the file.
        """
        events = []
        for span in self.iter_spans():
            args: Dict[str, object] = {
                key: _jsonable(value) for key, value in span.attrs.items()
            }
            args["status"] = span.status
            if span.error is not None:
                args["error"] = span.error
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
