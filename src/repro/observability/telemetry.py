"""The telemetry facade: one object bundling metrics and tracing.

Components across the pipeline accept an optional ``telemetry``
argument.  ``None`` (the default) means *disabled*: instrumented code
guards every recording with an ``is not None`` check, so the disabled
cost is a single attribute test — no allocation, no lookup.
:class:`NullTelemetry` exists for callers that prefer passing an object
unconditionally; components normalize it to the disabled path via
:func:`active`.

Wall time comes from an injectable clock.  The default is
:func:`time.perf_counter`; tests and determinism checks inject a
:class:`ManualClock`, whose reads advance a logical tick, making span
durations (and therefore whole trace files) reproducible.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, Mapping, Optional

from .metrics import MetricsRegistry, Number
from .tracing import Tracer

__all__ = [
    "ManualClock",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "active",
    "format_metrics",
]


class ManualClock:
    """A deterministic clock: every read advances one logical tick."""

    __slots__ = ("_now", "tick")

    def __init__(self, start: float = 0.0, tick: float = 1.0):
        self._now = start
        self.tick = tick

    def __call__(self) -> float:
        now = self._now
        self._now += self.tick
        return now

    def advance(self, amount: float) -> None:
        self._now += amount


class Telemetry:
    """A metrics registry plus a tracer sharing one clock."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock if clock is not None else _time.perf_counter
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock)

    # -- tracing -------------------------------------------------------------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    # -- metrics -------------------------------------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        self.metrics.inc(name, amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.metrics.set_gauge(name, value)

    def set_max(self, name: str, value: Number) -> None:
        self.metrics.set_max(name, value)

    def observe(self, name: str, value: Number) -> None:
        self.metrics.observe(name, value)

    def fold_counters(self, prefix: str, counters: Mapping[str, Number]) -> None:
        """Fold a plain counter dict (e.g. injector stats) into metrics.

        Zero entries are skipped so that an idle component leaves no
        trace in the snapshot (keeps disabled features key-free).
        """
        for key in sorted(counters):
            value = counters[key]
            if value:
                self.inc(f"{prefix}.{key}", value)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict:
        return self.metrics.snapshot()

    def snapshot_json(self) -> str:
        return self.metrics.snapshot_json()

    def phases(self):
        return self.tracer.phase_totals()

    def chrome_trace(self) -> Dict:
        return self.tracer.to_chrome_trace()

    def report_section(self) -> Dict:
        """The ``report.telemetry`` payload: metrics + phase breakdown."""
        return {
            "metrics": self.snapshot(),
            "phases": self.phases(),
            "spans": self.tracer.span_count,
        }


class NullTelemetry:
    """Disabled telemetry; components treat it exactly like ``None``."""

    enabled = False

    def span(self, name: str, **attrs):  # pragma: no cover - never active
        return _NULL_SPAN

    def __repr__(self):
        return "NullTelemetry()"


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, key, value):
        pass


_NULL_SPAN = _NullSpan()

NULL_TELEMETRY = NullTelemetry()


def active(telemetry) -> Optional[Telemetry]:
    """Normalize a telemetry argument: enabled instance or ``None``."""
    if telemetry is None or not getattr(telemetry, "enabled", False):
        return None
    return telemetry


def format_metrics(snapshot: Mapping) -> str:
    """A human-readable rendering of a metrics snapshot."""
    lines = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    width = max(
        (len(name) for name in (*counters, *gauges, *histograms)), default=0
    )
    for name in sorted(counters):
        lines.append(f"  {name:<{width}s}  {counters[name]}")
    for name in sorted(gauges):
        lines.append(f"  {name:<{width}s}  {gauges[name]}")
    for name in sorted(histograms):
        h = histograms[name]
        lines.append(
            f"  {name:<{width}s}  n={h['count']} sum={h['sum']} "
            f"min={h['min']} p50={h['p50']} p90={h['p90']} "
            f"p99={h['p99']} max={h['max']}"
        )
    return "\n".join(lines)
