"""Runtime telemetry for the DiffProv pipeline.

Two halves (see ``docs/observability.md``):

- :mod:`repro.observability.metrics` — counters, gauges, histograms
  with a deterministic snapshot (no wall-clock values, so seeded runs
  snapshot byte-identically);
- :mod:`repro.observability.tracing` — hierarchical spans
  (``component.phase``) measuring wall time on an injectable clock,
  exportable as a JSON tree or Chrome ``trace_event`` format;
- :mod:`repro.observability.ops` — fleet-wide operations for the
  diagnosis *service*: cross-process :class:`TraceContext` propagation,
  Prometheus-style exposition, per-tenant :class:`SLOBook` accounting,
  and the :class:`FlightRecorder` black box.

:class:`Telemetry` bundles both; pass it to
:class:`~repro.core.diffprov.DiffProvOptions`, an
:class:`~repro.replay.execution.Execution`, or directly to an
:class:`~repro.datalog.engine.Engine` / recorder.  Everything is
off-by-default: components receive ``telemetry=None`` and skip
instrumentation behind a single ``is not None`` test.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .ops import (
    FlightRecorder,
    OpsCenter,
    RollingHistogram,
    SLOBook,
    TraceContext,
    derive_trace_id,
    prometheus_text,
    render_top,
)
from .telemetry import (
    NULL_TELEMETRY,
    ManualClock,
    NullTelemetry,
    Telemetry,
    active,
    format_metrics,
)
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "ManualClock",
    "active",
    "format_metrics",
    "TraceContext",
    "derive_trace_id",
    "prometheus_text",
    "RollingHistogram",
    "SLOBook",
    "FlightRecorder",
    "OpsCenter",
    "render_top",
]
