"""Fleet-wide operations: traces across processes, live SLOs, black boxes.

:mod:`repro.observability` gave a *single* diagnosis metrics and a span
tree.  This module makes the multi-process **service** operable
(docs/observability.md, "Operating the service"):

- :class:`TraceContext` — a trace id plus span lineage that crosses
  process boundaries.  Ids are *derived deterministically* from request
  fingerprints (SHA-256, no randomness), so the same request always
  produces the same trace id — across runs, across worker crashes, and
  across journal resumes.  The server stamps its admission and dispatch
  spans with the context, ships it to the worker inside the fleet job,
  and the worker stamps its root ``diffprov.diagnose`` span — one
  stitched trace per request.
- :func:`prometheus_text` — a :class:`~repro.observability.metrics.
  MetricsRegistry` snapshot rendered in the Prometheus plaintext
  exposition format (counters, gauges, and summary-style histograms),
  served live by ``diffprov serve --metrics-port``.
- :class:`SLOBook` — per-tenant service-level accounting: offered /
  admitted / shed / ok / errored counts, queue-wait and end-to-end
  latency distributions, and a rolling error-budget burn rate over an
  injectable-clock window.
- :class:`FlightRecorder` — a bounded ring buffer of the last N
  completed or failed requests (request line, timings, verdict,
  journal path, trace id), dumpable on SIGUSR1 or via the ``flight``
  protocol verb: the post-hoc "what just happened" black box.
- :class:`OpsCenter` — the bundle a :class:`~repro.service.server.
  DiagnosisServer` owns: one always-on metrics registry (separate from
  the optional diagnosis telemetry), the SLO book, and the recorder.

Everything here is zero-dependency, cheap enough to stay always-on in
the serving path, and deterministic under
:class:`~repro.observability.telemetry.ManualClock` so the test suite
can assert byte-identical traces and honest books.
"""

from __future__ import annotations

import hashlib
import json
import re
import time as _time
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "TraceContext",
    "derive_trace_id",
    "prometheus_text",
    "RollingHistogram",
    "SLOBook",
    "FlightRecorder",
    "OpsCenter",
    "render_top",
]


# -- trace propagation --------------------------------------------------------


def _short_hash(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def derive_trace_id(fingerprint) -> str:
    """A 16-hex-char trace id derived from a request fingerprint.

    ``fingerprint`` is any JSON-representable value (the service uses
    the validated request fields).  Identical fingerprints yield
    identical ids — the property that lets a crash-resumed attempt and
    a re-run of the same request land in the same trace.
    """
    if not isinstance(fingerprint, str):
        fingerprint = json.dumps(
            fingerprint, sort_keys=True, separators=(",", ":"), default=str
        )
    return _short_hash("trace:" + fingerprint)


class TraceContext:
    """One position in a cross-process trace.

    ``trace_id`` names the whole request's trace; ``span_id`` the span
    this context represents (``None`` for a freshly rooted context);
    ``parent_span_id`` its parent; ``attempt`` counts fleet retries
    (1-based — a crash-resumed diagnosis carries ``attempt=2`` in the
    *same* trace).  Contexts are immutable; :meth:`child` derives the
    next hop deterministically, so two runs of the same request produce
    identical span ids at every hop.
    """

    __slots__ = ("trace_id", "span_id", "parent_span_id", "attempt")

    def __init__(
        self,
        trace_id: str,
        span_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
        attempt: int = 1,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id
        self.attempt = int(attempt)

    @classmethod
    def root(cls, fingerprint) -> "TraceContext":
        """A fresh trace rooted at ``fingerprint`` (see
        :func:`derive_trace_id`)."""
        return cls(derive_trace_id(fingerprint))

    def child(self, name: str) -> "TraceContext":
        """The context for a child span called ``name``.

        The child's span id hashes (trace, parent span, name), so the
        hop sequence server→dispatch→worker reproduces exactly.
        """
        span_id = _short_hash(
            f"span:{self.trace_id}:{self.span_id or ''}:{name}"
        )
        return TraceContext(
            self.trace_id, span_id,
            parent_span_id=self.span_id, attempt=self.attempt,
        )

    def with_attempt(self, attempt: int) -> "TraceContext":
        """The same position, tagged with a fleet retry number."""
        return TraceContext(
            self.trace_id, self.span_id, self.parent_span_id, attempt
        )

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"trace_id": self.trace_id}
        if self.span_id is not None:
            data["span_id"] = self.span_id
        if self.parent_span_id is not None:
            data["parent_span_id"] = self.parent_span_id
        data["attempt"] = self.attempt
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=data.get("span_id"),
            parent_span_id=data.get("parent_span_id"),
            attempt=int(data.get("attempt", 1)),
        )

    def span_attrs(self) -> Dict[str, object]:
        """The attributes a span stamped with this context carries."""
        attrs: Dict[str, object] = {"trace_id": self.trace_id}
        if self.span_id is not None:
            attrs["span_id"] = self.span_id
        if self.parent_span_id is not None:
            attrs["parent_span_id"] = self.parent_span_id
        attrs["attempt"] = self.attempt
        return attrs

    def __repr__(self):
        return (
            f"TraceContext({self.trace_id}, span={self.span_id}, "
            f"parent={self.parent_span_id}, attempt={self.attempt})"
        )


# -- Prometheus exposition ----------------------------------------------------

_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str = "diffprov") -> str:
    mangled = _PROM_BAD_CHARS.sub("_", name)
    return f"{prefix}_{mangled}" if prefix else mangled


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _prom_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def prometheus_text(snapshot: Mapping, prefix: str = "diffprov") -> str:
    """Render a metrics snapshot in the Prometheus text format.

    ``snapshot`` is what :meth:`MetricsRegistry.snapshot` returns
    (``counters`` / ``gauges`` / ``histograms``).  Dotted metric names
    become underscored (``service.queue.depth`` →
    ``diffprov_service_queue_depth``); histograms render as summaries
    with ``quantile`` labels plus ``_sum`` and ``_count`` series.
    Deterministic: series are sorted by name.
    """
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counters[name])}")
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        value = gauges[name]
        if value is None:
            continue
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        stats = histograms[name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in _QUANTILES:
            value = stats.get(key)
            if value is not None:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} {_prom_value(value)}'
                )
        lines.append(f"{metric}_sum {_prom_value(stats.get('sum', 0))}")
        lines.append(f"{metric}_count {_prom_value(stats.get('count', 0))}")
    return "\n".join(lines) + "\n" if lines else ""


# -- per-tenant SLO accounting ------------------------------------------------


class RollingHistogram:
    """A bounded distribution: the last ``capacity`` observations.

    The unbounded :class:`~repro.observability.metrics.Histogram` is
    right for one diagnosis; a server that lives for weeks needs a cap.
    Snapshots carry the same keys so both render identically.
    """

    __slots__ = ("name", "capacity", "_values", "observed_total")

    def __init__(self, name: str, capacity: int = 2048):
        self.name = name
        self.capacity = int(capacity)
        self._values = deque(maxlen=self.capacity)
        self.observed_total = 0

    def observe(self, value) -> None:
        self._values.append(value)
        self.observed_total += 1

    @property
    def count(self) -> int:
        return len(self._values)

    def snapshot(self) -> Dict[str, Optional[float]]:
        # Reuse the exact percentile math of the unbounded histogram.
        window = Histogram(self.name)
        for value in self._values:
            window.observe(value)
        return window.snapshot()

    def __repr__(self):
        return f"RollingHistogram({self.name}, n={self.count})"


class _TenantBook:
    __slots__ = (
        "offered", "admitted", "shed", "ok", "errored",
        "queue_wait", "latency", "window",
    )

    def __init__(self, window_capacity: int):
        self.offered = 0
        self.admitted = 0
        self.shed: Dict[str, int] = {}
        self.ok = 0
        self.errored = 0
        self.queue_wait = RollingHistogram("queue_wait_s")
        self.latency = RollingHistogram("latency_s")
        # (timestamp, succeeded) pairs for the error-budget window.
        self.window = deque(maxlen=window_capacity)


class SLOBook:
    """Per-tenant SLO accounting for the diagnosis service.

    The books are **honest by construction**: every request that
    reaches admission is counted ``offered`` exactly once, and ends up
    either ``admitted`` or ``shed`` — so ``offered == admitted +
    sum(shed)`` holds at all times, and once all admitted work has
    resolved, ``ok + errored == admitted`` (the chaos suite asserts
    both under flood and worker SIGKILL).

    ``objective`` is the availability target (default 99%); the
    error-budget burn rate over the rolling ``window_s`` window is the
    classic ratio ``(errors/requests) / (1 - objective)`` — burn 1.0
    means errors are arriving exactly as fast as the budget allows,
    above 1.0 the tenant's budget is shrinking.
    """

    def __init__(
        self,
        objective: float = 0.99,
        window_s: float = 300.0,
        clock: Callable[[], float] = _time.monotonic,
        window_capacity: int = 4096,
    ):
        if not 0.0 < objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {objective}"
            )
        self.objective = float(objective)
        self.window_s = float(window_s)
        self.clock = clock
        self.window_capacity = int(window_capacity)
        self._tenants: Dict[str, _TenantBook] = {}

    def _book(self, tenant: str) -> _TenantBook:
        book = self._tenants.get(tenant)
        if book is None:
            book = self._tenants[tenant] = _TenantBook(self.window_capacity)
        return book

    # -- recording -----------------------------------------------------------

    def offered(self, tenant: str) -> None:
        """One request reached admission (counted before the verdict)."""
        self._book(tenant).offered += 1

    def admitted(self, tenant: str) -> None:
        self._book(tenant).admitted += 1

    def shed(self, tenant: str, reason: str) -> None:
        book = self._book(tenant)
        book.shed[reason] = book.shed.get(reason, 0) + 1

    def finished(
        self,
        tenant: str,
        ok: bool,
        queue_wait_s: Optional[float] = None,
        latency_s: Optional[float] = None,
    ) -> None:
        """One admitted request resolved (ok or typed error)."""
        book = self._book(tenant)
        if ok:
            book.ok += 1
        else:
            book.errored += 1
        if queue_wait_s is not None:
            book.queue_wait.observe(round(queue_wait_s, 6))
        if latency_s is not None:
            book.latency.observe(round(latency_s, 6))
        book.window.append((self.clock(), bool(ok)))

    # -- derived views -------------------------------------------------------

    def _prune(self, book: _TenantBook) -> None:
        horizon = self.clock() - self.window_s
        while book.window and book.window[0][0] < horizon:
            book.window.popleft()

    def error_budget(self, tenant: str) -> Dict[str, object]:
        """The tenant's rolling error-budget state.

        ``burn`` is the burn *rate*: the window's error fraction over
        the budgeted error fraction ``1 - objective``.  0.0 with an
        empty window.
        """
        book = self._book(tenant)
        self._prune(book)
        requests = len(book.window)
        errors = sum(1 for _, succeeded in book.window if not succeeded)
        burn = 0.0
        if requests:
            burn = (errors / requests) / (1.0 - self.objective)
        return {
            "window_s": self.window_s,
            "objective": self.objective,
            "requests": requests,
            "errors": errors,
            "burn": round(burn, 4),
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All tenants' books (the ``stats`` verb's ``slo`` section)."""
        result = {}
        for tenant in sorted(self._tenants):
            book = self._tenants[tenant]
            result[tenant] = {
                "offered": book.offered,
                "admitted": book.admitted,
                "shed": dict(sorted(book.shed.items())),
                "ok": book.ok,
                "errored": book.errored,
                "queue_wait_s": book.queue_wait.snapshot(),
                "latency_s": book.latency.snapshot(),
                "error_budget": self.error_budget(tenant),
            }
        return result

    def prometheus_text(self, prefix: str = "diffprov") -> str:
        """Per-tenant series with ``tenant`` labels."""
        if not self._tenants:
            return ""
        lines: List[str] = []

        def family(name: str, kind: str, series: List[str]) -> None:
            if series:
                lines.append(f"# TYPE {_prom_name(name, prefix)} {kind}")
                lines.extend(series)

        counters = (
            ("tenant.offered", "offered"),
            ("tenant.admitted", "admitted"),
            ("tenant.ok", "ok"),
            ("tenant.errored", "errored"),
        )
        snapshot = self.snapshot()
        for name, key in counters:
            metric = _prom_name(name, prefix)
            family(name, "counter", [
                f'{metric}{{tenant="{_prom_label(tenant)}"}} '
                f"{_prom_value(book[key])}"
                for tenant, book in snapshot.items()
            ])
        shed_metric = _prom_name("tenant.shed", prefix)
        shed_series = [
            f'{shed_metric}{{tenant="{_prom_label(tenant)}",'
            f'reason="{_prom_label(reason)}"}} {_prom_value(count)}'
            for tenant, book in snapshot.items()
            for reason, count in book["shed"].items()
        ]
        family("tenant.shed", "counter", shed_series)
        for name, key in (
            ("tenant.queue_wait_seconds", "queue_wait_s"),
            ("tenant.latency_seconds", "latency_s"),
        ):
            metric = _prom_name(name, prefix)
            series: List[str] = []
            for tenant, book in snapshot.items():
                stats = book[key]
                label = f'tenant="{_prom_label(tenant)}"'
                for quantile, pkey in _QUANTILES:
                    value = stats.get(pkey)
                    if value is not None:
                        series.append(
                            f'{metric}{{{label},quantile="{quantile}"}} '
                            f"{_prom_value(value)}"
                        )
                series.append(
                    f"{metric}_sum{{{label}}} "
                    f"{_prom_value(stats.get('sum') or 0)}"
                )
                series.append(
                    f"{metric}_count{{{label}}} "
                    f"{_prom_value(stats.get('count') or 0)}"
                )
            family(name, "summary", series)
        burn_metric = _prom_name("tenant.error_budget_burn", prefix)
        family("tenant.error_budget_burn", "gauge", [
            f'{burn_metric}{{tenant="{_prom_label(tenant)}"}} '
            f"{_prom_value(book['error_budget']['burn'])}"
            for tenant, book in snapshot.items()
        ])
        return "\n".join(lines) + "\n" if lines else ""


# -- flight recorder ----------------------------------------------------------


class FlightRecorder:
    """A bounded ring buffer of the last N finished requests.

    Each entry is a plain dict (request line, timings, verdict, journal
    path, trace id) stamped with a monotonically increasing ``seq``.
    ``capacity=0`` disables recording entirely (the benchmark's
    off-switch); the buffer otherwise overwrites oldest-first, so the
    recorder's memory is bounded no matter how long the server lives.
    """

    def __init__(self, capacity: int = 128,
                 clock: Callable[[], float] = _time.monotonic):
        self.capacity = max(0, int(capacity))
        self.clock = clock
        self._entries = deque(maxlen=self.capacity)
        self.recorded_total = 0

    def record(self, **fields) -> Optional[Dict[str, object]]:
        if self.capacity == 0:
            return None
        entry = {"seq": self.recorded_total, "at": round(self.clock(), 6)}
        entry.update(fields)
        self._entries.append(entry)
        self.recorded_total += 1
        return entry

    def entries(self) -> List[Dict[str, object]]:
        """Oldest-first copies of the recorded entries."""
        return [dict(entry) for entry in self._entries]

    def snapshot(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "entries": self.entries(),
        }

    def to_text(self) -> str:
        """The human-readable dump (SIGUSR1 / post-mortems)."""
        entries = self.entries()
        lines = [
            f"flight recorder: {len(entries)} of last {self.capacity} "
            f"request(s), {self.recorded_total} recorded total"
        ]
        for entry in entries:
            status = entry.get("status", "?")
            verdict = entry.get("verdict")
            detail = f" verdict={verdict}" if verdict is not None else ""
            latency = entry.get("latency_s")
            timing = f" latency={latency}s" if latency is not None else ""
            journal = entry.get("journal")
            kept = f" journal={journal}" if journal else ""
            lines.append(
                f"  #{entry.get('seq')} {entry.get('tenant', '-')}/"
                f"{entry.get('request', '-')} {entry.get('kind', '-')} "
                f"{entry.get('scenario') or '-'} -> {status}{detail}"
                f"{timing} trace={entry.get('trace_id', '-')}"
                f" attempts={entry.get('attempts', 1)}{kept}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self):
        return (
            f"FlightRecorder({len(self._entries)}/{self.capacity}, "
            f"total={self.recorded_total})"
        )


# -- the ops bundle -----------------------------------------------------------


class OpsCenter:
    """The always-on operations surface a DiagnosisServer owns.

    Separate from the optional diagnosis ``telemetry``: that one traces
    *a* diagnosis when asked; this one watches *the service*, always.
    ``metrics`` also accumulates worker-side counter deltas piggybacked
    on fleet responses (prefixed ``fleet.``), so the exposition covers
    the whole fleet, not just the server process.
    """

    def __init__(
        self,
        clock: Callable[[], float] = _time.monotonic,
        flight_capacity: int = 128,
        slo_objective: float = 0.99,
        slo_window_s: float = 300.0,
    ):
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.slo = SLOBook(
            objective=slo_objective, window_s=slo_window_s, clock=clock
        )
        self.flight = FlightRecorder(capacity=flight_capacity, clock=clock)

    def fold_worker_delta(self, delta: Mapping) -> None:
        """Fold one worker's piggybacked counter deltas into metrics."""
        for name in sorted(delta):
            amount = delta[name]
            if isinstance(amount, (int, float)) and amount > 0:
                self.metrics.inc(f"fleet.{name}", amount)

    def prometheus(self, *extra_snapshots: Mapping,
                   prefix: str = "diffprov") -> str:
        """The full exposition: ops metrics (+ extras) + tenant SLOs.

        ``extra_snapshots`` are merged under the ops registry (the ops
        value wins on a name collision), letting the server fold its
        diagnosis-telemetry snapshot into the same page.
        """
        merged: Dict[str, Dict] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for snapshot in (*extra_snapshots, self.metrics.snapshot()):
            for section in merged:
                merged[section].update(snapshot.get(section, {}))
        return prometheus_text(merged, prefix) + self.slo.prometheus_text(
            prefix
        )


# -- the `diffprov top` frame -------------------------------------------------


def render_top(stats: Mapping, target: str = "") -> str:
    """One plain-text dashboard frame from a ``stats`` verb response.

    Pure function of the stats dict (testable without a server): a
    header with queue/fleet state and one row per tenant with in-flight,
    outcome counts, latency percentiles, and error-budget burn.
    """
    admission = stats.get("admission", {})
    fleet = stats.get("fleet", {})
    shed = admission.get("shed", {}) or {}
    shards = fleet.get("shards", []) or []
    fenced = sum(1 for shard in shards if shard.get("breaker_open"))
    header = "diffprov top" + (f" — {target}" if target else "")
    lines = [
        header,
        (
            f"queued {admission.get('queued', 0)}   "
            f"in-flight {admission.get('in_flight', 0)}   "
            f"admitted {admission.get('admitted_total', 0)}   "
            f"shed {sum(shed.values())}   "
            f"responses {stats.get('responses_total', 0)}   "
            f"workers {fleet.get('size', 0)} ({fenced} fenced, "
            f"{fleet.get('restarts', 0)} restart(s))   "
            f"draining {'yes' if admission.get('draining') else 'no'}"
        ),
    ]
    slo = stats.get("slo") or {}
    tenants = stats.get("admission", {}).get("tenants", {}) or {}
    names = sorted(set(slo) | set(tenants))
    if names:
        width = max(12, max(len(name) for name in names) + 1)
        lines.append(
            f"{'tenant':<{width}} {'infl':>5} {'ok':>6} {'err':>5} "
            f"{'shed':>5} {'offered':>8} {'p50(s)':>9} {'p99(s)':>9} "
            f"{'burn':>6}"
        )
        for name in names:
            book = slo.get(name, {})
            in_flight = tenants.get(name, {}).get("in_flight", 0)
            latency = book.get("latency_s", {}) or {}
            burn = (book.get("error_budget", {}) or {}).get("burn", 0.0)

            def _fmt(value):
                return f"{value:.4f}" if isinstance(value, (int, float)) \
                    else "-"

            lines.append(
                f"{name:<{width}} {in_flight:>5} "
                f"{book.get('ok', 0):>6} {book.get('errored', 0):>5} "
                f"{sum((book.get('shed') or {}).values()):>5} "
                f"{book.get('offered', 0):>8} "
                f"{_fmt(latency.get('p50')):>9} "
                f"{_fmt(latency.get('p99')):>9} {burn:>6}"
            )
    flight = stats.get("flight") or {}
    if flight:
        lines.append(
            f"flight recorder: {flight.get('recorded_total', 0)} recorded, "
            f"last {flight.get('capacity', 0)} kept (SIGUSR1 or the "
            f"'flight' verb dumps them)"
        )
    return "\n".join(lines)
