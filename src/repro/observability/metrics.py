"""A zero-dependency metrics registry.

Counters, gauges, and histograms with a deterministic snapshot: the
snapshot contains only values derived from *what happened* (event
counts, queue depths, fetch attempts), never wall-clock readings, so
two runs over the same seeded workload produce byte-identical
snapshots.  Wall time lives in the span tree
(:mod:`repro.observability.tracing`), which carries the injectable
clock instead.

Metric names are dotted ``component.detail`` strings, all lowercase;
see ``docs/observability.md`` for the catalogue.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Union

from ..errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins, or a running maximum)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def set_max(self, value: Number) -> None:
        if self.value is None or value > self.value:
            self.value = value

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution of observed values.

    Snapshots report count/sum/min/max plus interpolated percentiles
    (p50/p90/p99).  Percentile math is the linear-interpolation variant
    (numpy's default): rank ``(n - 1) * p`` into the sorted values,
    interpolating between neighbours — deterministic for deterministic
    inputs.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self._values: List[Number] = []
        self._sorted = True

    def observe(self, value: Number) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> Number:
        return sum(self._values)

    def percentile(self, p: float) -> Optional[Number]:
        """The ``p``-th percentile (0..100), linearly interpolated."""
        if not self._values:
            return None
        if not 0.0 <= p <= 100.0:
            raise ReproError(f"percentile {p} out of range [0, 100]")
        values = self._ordered()
        rank = (len(values) - 1) * (p / 100.0)
        lower = math.floor(rank)
        fraction = rank - lower
        if fraction == 0.0:
            return values[lower]
        return values[lower] + fraction * (values[lower + 1] - values[lower])

    def _ordered(self) -> List[Number]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def snapshot(self) -> Dict[str, Optional[Number]]:
        values = self._ordered()
        return {
            "count": len(values),
            "sum": sum(values),
            "min": values[0] if values else None,
            "max": values[-1] if values else None,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self):
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    A name belongs to exactly one metric kind; asking for the same name
    as a different kind is an error (it would silently split a metric).
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access --------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(self._histograms, name, Histogram, "histogram")

    def _get(self, table, name: str, factory, kind: str):
        metric = table.get(name)
        if metric is None:
            self._check_unclaimed(name, table, kind)
            metric = table[name] = factory(name)
        return metric

    def _check_unclaimed(self, name: str, claiming, kind: str) -> None:
        tables = (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        )
        for existing_kind, table in tables:
            if table is not claiming and name in table:
                raise ReproError(
                    f"metric {name!r} already registered as a "
                    f"{existing_kind}, cannot re-register as a {kind}"
                )

    # -- convenience ---------------------------------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauge(name).set(value)

    def set_max(self, name: str, value: Number) -> None:
        self.gauge(name).set_max(value)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """All metrics, sorted by name — deterministic by construction."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def snapshot_json(self) -> str:
        """The snapshot as canonical JSON (byte-comparable across runs)."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
