"""Tuple storage with support counting.

Derived tuples are kept alive by *supports*: a base insertion, or an
active derivation.  When the last support disappears, the tuple
disappears and the loss cascades to everything derived from it (the
paper models this as UNDERIVE/DISAPPEAR vertexes, Section 3.2).

Derivations triggered by *event* tuples (packets, job submissions) are
permanent: once a packet has caused a flow entry to be used, deleting
the flow entry later does not retroactively un-forward the packet.
Only derivations whose bodies consist entirely of state tuples are
revocable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple as PyTuple

from ..errors import SchemaError
from .tuples import TableSchema, Tuple

__all__ = ["Derivation", "TupleRecord", "Store", "sort_key"]

_EMPTY: Dict = {}


def sort_key(tup: Tuple):
    """A deterministic total order over tuples of mixed value types.

    The key is cached on the tuple (tuples are immutable and usually
    interned), because candidate lists are re-sorted on every join.
    """
    key = tup._sort_key
    if key is None:
        key = tuple((type(a).__name__, str(a)) for a in tup.args)
        object.__setattr__(tup, "_sort_key", key)
    return key


class Derivation:
    """One firing of a rule: the head, the body tuples, the binding."""

    __slots__ = (
        "id",
        "rule_name",
        "head",
        "body",
        "env",
        "trigger_index",
        "time",
        "revocable",
        "active",
    )

    def __init__(
        self,
        id: int,
        rule_name: str,
        head: Tuple,
        body: PyTuple,
        env: Dict[str, object],
        trigger_index: int,
        time: int,
        revocable: bool,
    ):
        self.id = id
        self.rule_name = rule_name
        self.head = head
        self.body = tuple(body)
        self.env = dict(env)
        self.trigger_index = trigger_index
        self.time = time
        self.revocable = revocable
        self.active = True

    @property
    def trigger(self) -> Tuple:
        return self.body[self.trigger_index]

    def __repr__(self):
        return (
            f"Derivation(#{self.id} {self.rule_name}: {self.head} :- "
            f"{', '.join(str(b) for b in self.body)} @t{self.time})"
        )


class TupleRecord:
    """Liveness bookkeeping for a stored tuple."""

    __slots__ = ("tuple", "base_supports", "mutable", "derivations", "appear_time")

    def __init__(self, tup: Tuple):
        self.tuple = tup
        self.base_supports = 0
        self.mutable: Optional[bool] = None
        self.derivations: Set[int] = set()
        self.appear_time: Optional[int] = None

    @property
    def alive(self) -> bool:
        return self.base_supports > 0 or bool(self.derivations)

    @property
    def is_base(self) -> bool:
        return self.base_supports > 0


class Store:
    """All live state tuples, indexed by table, plus derivation records."""

    def __init__(self, schemas: Dict[str, TableSchema]):
        self.schemas = schemas
        self._tables: Dict[str, Dict[Tuple, TupleRecord]] = {
            name: {} for name in schemas
        }
        self.derivations: Dict[int, Derivation] = {}
        # Reverse index: body tuple -> ids of active revocable derivations
        # that depend on it.
        self._dependents: Dict[Tuple, Set[int]] = {}
        # Join acceleration: a cached sorted view per table, plus
        # equality indexes keyed on one *or more* argument positions.
        # Indexes are registered up front by the engine's join planner
        # (one spec per bound-position set a rule body demands) and also
        # built lazily on first use; either way they are maintained
        # incrementally on every liveness change.  Layout:
        #   table -> positions tuple -> value vector -> live tuples
        self._sorted_cache: Dict[str, List[Tuple]] = {}
        self._indexes: Dict[
            str, Dict[PyTuple[int, ...], Dict[PyTuple, Set[Tuple]]]
        ] = {}

    def __getstate__(self):
        # Sorted views and index contents are pure caches over _tables;
        # dropping them keeps replay-cache snapshots small.  They are
        # rebuilt lazily on first use after a restore.
        state = self.__dict__.copy()
        state["_sorted_cache"] = {}
        state["_indexes"] = {}
        return state

    # -- queries -------------------------------------------------------------

    def record(self, tup: Tuple) -> Optional[TupleRecord]:
        table = self._tables.get(tup.table)
        if table is None:
            return None
        return table.get(tup)

    def alive(self, tup: Tuple) -> bool:
        record = self.record(tup)
        return record is not None and record.alive

    def tuples(self, table: str) -> List[Tuple]:
        """Live tuples of a table, in deterministic order (cached)."""
        cached = self._sorted_cache.get(table)
        if cached is None:
            records = self._tables.get(table)
            if records is None:
                raise SchemaError(f"unknown table {table!r}")
            cached = [rec.tuple for rec in records.values() if rec.alive]
            cached.sort(key=sort_key)
            self._sorted_cache[table] = cached
        # Callers may mutate their view; hand out a copy.
        return list(cached)

    def tuples_matching(self, table: str, position: int, value) -> List[Tuple]:
        """Live tuples of a table with ``args[position] == value``.

        Served from an equality index; the first call for a
        (table, position) pair builds it, later liveness changes keep
        it current.
        """
        return self.tuples_matching_at(table, (position,), (value,))

    def tuples_matching_at(
        self, table: str, positions: PyTuple[int, ...], values: PyTuple
    ) -> List[Tuple]:
        """Live tuples with ``args[p] == v`` for each (p, v) pair.

        The multi-position form serves body atoms with several bound
        arguments from one composite index instead of filtering the
        largest single-position bucket.
        """
        index = self._indexes.get(table, _EMPTY).get(positions)
        if index is None:
            index = self.register_index(table, positions)
        matches = index.get(tuple(values))
        if not matches:
            return []
        return sorted(matches, key=sort_key)

    def register_index(
        self, table: str, positions: PyTuple[int, ...]
    ) -> Dict[PyTuple, Set[Tuple]]:
        """Ensure an equality index on ``positions`` exists for ``table``.

        Called by the engine's join planner at rule-registration time,
        so the index is maintained incrementally from the first insert
        instead of being rebuilt from a table scan mid-join.
        """
        positions = tuple(positions)
        per_table = self._indexes.setdefault(table, {})
        index = per_table.get(positions)
        if index is None:
            if table not in self._tables:
                raise SchemaError(f"unknown table {table!r}")
            index = {}
            for record in self._tables[table].values():
                if not record.alive:
                    continue
                tup = record.tuple
                if all(p < tup.arity for p in positions):
                    key = tuple(tup.args[p] for p in positions)
                    index.setdefault(key, set()).add(tup)
            per_table[positions] = index
        return index

    def _note_liveness_change(self, tup: Tuple, alive: bool) -> None:
        self._sorted_cache.pop(tup.table, None)
        for positions, index in self._indexes.get(tup.table, _EMPTY).items():
            if any(p >= tup.arity for p in positions):
                continue
            bucket = index.setdefault(
                tuple(tup.args[p] for p in positions), set()
            )
            if alive:
                bucket.add(tup)
            else:
                bucket.discard(tup)

    def all_tuples(self) -> List[Tuple]:
        result: List[Tuple] = []
        for name in sorted(self._tables):
            result.extend(self.tuples(name))
        return result

    def base_tuples(self) -> List[Tuple]:
        result: List[Tuple] = []
        for name in sorted(self._tables):
            result.extend(
                rec.tuple
                for rec in self._tables[name].values()
                if rec.alive and rec.is_base
            )
        result.sort(key=lambda t: (t.table, sort_key(t)))
        return result

    def is_mutable(self, tup: Tuple) -> bool:
        record = self.record(tup)
        if record is not None and record.mutable is not None:
            return record.mutable
        schema = self.schemas.get(tup.table)
        return schema.mutable if schema is not None else True

    def dependents_of(self, tup: Tuple) -> Set[int]:
        return set(self._dependents.get(tup, ()))

    # -- mutation ------------------------------------------------------------

    def add_base_support(
        self, tup: Tuple, time: int, mutable: Optional[bool]
    ) -> bool:
        """Add a base support; returns True if the tuple newly appeared."""
        record = self._record_for(tup)
        was_alive = record.alive
        record.base_supports += 1
        if mutable is not None:
            record.mutable = mutable
        if not was_alive:
            record.appear_time = time
            self._note_liveness_change(tup, alive=True)
        return not was_alive

    def remove_base_support(self, tup: Tuple) -> bool:
        """Drop one base support; returns True if the tuple disappeared."""
        record = self.record(tup)
        if record is None or record.base_supports <= 0:
            return False
        record.base_supports -= 1
        if not record.alive:
            self._note_liveness_change(tup, alive=False)
            return True
        return False

    def add_derivation(self, derivation: Derivation, time: int) -> bool:
        """Register a derivation; returns True if the head newly appeared."""
        self.derivations[derivation.id] = derivation
        record = self._record_for(derivation.head)
        was_alive = record.alive
        record.derivations.add(derivation.id)
        if not was_alive:
            record.appear_time = time
            self._note_liveness_change(derivation.head, alive=True)
        if derivation.revocable:
            for body_tuple in derivation.body:
                self._dependents.setdefault(body_tuple, set()).add(derivation.id)
        return not was_alive

    def remove_derivation(self, derivation_id: int) -> bool:
        """Deactivate a derivation; returns True if the head disappeared."""
        derivation = self.derivations.get(derivation_id)
        if derivation is None or not derivation.active:
            return False
        derivation.active = False
        for body_tuple in derivation.body:
            dependents = self._dependents.get(body_tuple)
            if dependents is not None:
                dependents.discard(derivation_id)
        record = self.record(derivation.head)
        if record is None:
            return False
        record.derivations.discard(derivation_id)
        if not record.alive:
            self._note_liveness_change(derivation.head, alive=False)
            return True
        return False

    def _record_for(self, tup: Tuple) -> TupleRecord:
        table = self._tables.get(tup.table)
        if table is None:
            raise SchemaError(f"unknown table {tup.table!r}")
        record = table.get(tup)
        if record is None:
            record = TupleRecord(tup)
            table[tup] = record
        return record
