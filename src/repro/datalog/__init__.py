"""NDlog substrate: a declarative networking engine.

This subpackage replaces RapidNet in the paper's prototype.  It provides
tuples, tables, derivation rules with ``@location`` specifiers, and a
deterministic delta-driven evaluator with hooks for provenance
recording.

The public entry points are:

- :func:`repro.datalog.parser.parse_program` — parse NDlog text;
- :class:`repro.datalog.engine.Engine` — run a program;
- :class:`repro.datalog.config.EngineConfig` — backend/provenance
  selection (compiled / indexed / reference);
- :class:`repro.datalog.tuples.Tuple` — the value model.
"""

from .tuples import Tuple, TableSchema, TableKind
from .rules import Rule, Atom, Assignment, Condition, Program
from .parser import parse_program, parse_rule, parse_tuple
from .config import BACKENDS, PROVENANCE_MODES, EngineConfig
from .columnar import ColumnarStore
from .engine import Engine

__all__ = [
    "BACKENDS",
    "PROVENANCE_MODES",
    "EngineConfig",
    "ColumnarStore",
    "Tuple",
    "TableSchema",
    "TableKind",
    "Rule",
    "Atom",
    "Assignment",
    "Condition",
    "Program",
    "parse_program",
    "parse_rule",
    "parse_tuple",
    "Engine",
]
