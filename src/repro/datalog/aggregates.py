"""Barrier-style evaluation of aggregate rules.

Networks respond to individual stimuli, but batch systems such as
MapReduce need aggregates (word counts).  Aggregates are evaluated at
an explicit barrier — :meth:`repro.datalog.engine.Engine.fire_aggregates`
— once all contributions are present, which keeps both evaluation and
provenance deterministic: the provenance of an aggregate tuple is the
full set of contributing tuples, exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple as PyTuple

from ..errors import EvaluationError
from .expr import Const, Expr, Var
from .rules import AggSpec, Atom, Program, Rule
from .tuples import Tuple

__all__ = ["evaluate_aggregates"]


def evaluate_aggregates(
    program: Program, store
) -> Iterator[PyTuple[Rule, Tuple, PyTuple, Dict[str, object]]]:
    """Evaluate every aggregate rule against the current store.

    Yields ``(rule, head_tuple, contributing_body_tuples, env)`` for
    each derived aggregate tuple, in deterministic order.
    """
    for rule in program.aggregate_rules():
        groups: Dict[tuple, dict] = {}
        for env, body in _enumerate_bindings(rule, store):
            key = tuple(
                arg.evaluate(env)
                for arg in rule.head.args
                if not isinstance(arg, AggSpec)
            )
            group = groups.setdefault(
                key, {"contributions": [], "body": [], "env": dict(env)}
            )
            values = []
            for arg in rule.head.args:
                if isinstance(arg, AggSpec):
                    values.append(
                        1 if arg.expr is None else arg.expr.evaluate(env)
                    )
            group["contributions"].append(values)
            group["body"].extend(body)
        for key in sorted(groups, key=_group_sort_key):
            group = groups[key]
            head = _finalize(rule, key, group["contributions"])
            body = _dedupe(group["body"])
            yield rule, head, body, group["env"]


def _finalize(rule: Rule, key: tuple, contributions: List[list]) -> Tuple:
    """Build the aggregate head tuple for one group."""
    args: List[object] = []
    key_iter = iter(key)
    agg_index = 0
    for arg in rule.head.args:
        if isinstance(arg, AggSpec):
            column = [values[agg_index] for values in contributions]
            args.append(_apply(arg.kind, column))
            agg_index += 1
        else:
            args.append(next(key_iter))
    return Tuple(rule.head.table, args)


def _apply(kind: str, column: List[object]):
    if kind == "count":
        return len(column)
    if kind == "sum":
        return sum(column)
    if kind == "min":
        return min(column)
    if kind == "max":
        return max(column)
    raise EvaluationError(f"unknown aggregate kind {kind!r}")  # pragma: no cover


def _enumerate_bindings(rule: Rule, store) -> Iterator[PyTuple[Dict[str, object], PyTuple]]:
    """Full join of the rule body against the store (no trigger)."""

    def extend(index: int, env: Dict[str, object], slots: List[Optional[Tuple]]):
        if index == len(rule.body):
            final_env = dict(env)
            if _settle(rule, final_env):
                yield final_env, tuple(slots)
            return
        atom = rule.body[index]
        for candidate in store.tuples(atom.table):
            new_env = dict(env)
            if not _match(atom, candidate, new_env):
                continue
            slots[index] = candidate
            yield from extend(index + 1, new_env, slots)
            slots[index] = None

    yield from extend(0, {}, [None] * len(rule.body))


def _settle(rule: Rule, env: Dict[str, object]) -> bool:
    for assignment in rule.assignments:
        value = assignment.expr.evaluate(env)
        if assignment.var in env:
            if env[assignment.var] != value:
                return False
        else:
            env[assignment.var] = value
    for condition in rule.conditions:
        try:
            if not condition.holds(env):
                return False
        except EvaluationError:
            return False
    return True


def _match(atom: Atom, tup: Tuple, env: Dict[str, object]) -> bool:
    if atom.table != tup.table or atom.arity != tup.arity:
        return False
    for arg, value in zip(atom.args, tup.args):
        if isinstance(arg, Var):
            if arg.name in env:
                if env[arg.name] != value:
                    return False
            else:
                env[arg.name] = value
        elif isinstance(arg, Const):
            if arg.value != value:
                return False
        elif isinstance(arg, Expr):
            free = arg.variables() - env.keys()
            if free:
                return False
            if arg.evaluate(env) != value:
                return False
    return True


def _dedupe(tuples: List[Tuple]) -> PyTuple:
    seen = set()
    result = []
    for tup in tuples:
        if tup not in seen:
            seen.add(tup)
            result.append(tup)
    return tuple(result)


def _group_sort_key(key: tuple):
    return tuple((type(v).__name__, str(v)) for v in key)
