"""Deterministic delta-driven evaluator for NDlog programs.

The engine processes a FIFO queue of base-tuple insertions/deletions and
derived-tuple appearances.  Each dequeued item advances a logical clock,
so every run of the same program over the same input sequence produces
the identical sequence of events — the determinism assumption that both
deterministic replay (Section 5) and DiffProv's roll-back/roll-forward
reasoning (Section 2.6) rest on.

A recorder (see :mod:`repro.provenance.recorder`) can be attached to
observe INSERT/DELETE/APPEAR/DISAPPEAR/DERIVE/UNDERIVE events as they
happen; the engine itself keeps no provenance.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Tuple as PyTuple

from ..errors import EvaluationError, SchemaError, StepLimitExceeded
from ..observability import active as _active_telemetry
from .aggregates import evaluate_aggregates
from .columnar import ColumnarStore
from .compiled import compile_rule
from .config import EngineConfig
from .expr import Const, Expr, Var
from .rules import Atom, Program, Rule
from .state import Derivation, Store, sort_key
from .tuples import TableKind, Tuple, TupleStore

__all__ = ["Engine", "GLOBAL_NODE"]

GLOBAL_NODE = "_"

# Sentinel distinguishing "not compiled yet" from "not compilable".
_UNCOMPILED = object()


class Engine:
    """Evaluates an NDlog :class:`Program` over a stream of base events."""

    def __init__(
        self,
        program: Program,
        recorder=None,
        faults=None,
        step_limit: Optional[int] = None,
        telemetry=None,
        use_indexes: Optional[bool] = None,
        config: Optional[EngineConfig] = None,
    ):
        self.program = program
        self.recorder = recorder
        # Backend selection (see repro.datalog.config): "compiled" runs
        # per-rule closures over a columnar store, "indexed" is the
        # interpreted join with composite indexes, and "reference" is
        # the linear-scan mode that exists to *prove* the fast paths
        # change cost, not results
        # (see tests/datalog/test_index_equivalence.py).  The old
        # use_indexes= boolean is a deprecated shim resolved here.
        self.config = EngineConfig.resolve(config, use_indexes=use_indexes)
        self._backend = self.config.backend
        self._use_indexes = self.config.use_indexes
        # Optional FaultInjector applied to cross-node message delivery
        # (drop/duplicate/reorder/delay); None means perfect links.
        self.faults = faults
        # Optional Telemetry (repro.observability); None disables all
        # instrumentation at the cost of one attribute test per event.
        self.telemetry = _active_telemetry(telemetry)
        # Total events processed; with step_limit set, exceeding it
        # raises StepLimitExceeded (a runaway-replay guard).
        self.steps = 0
        self.step_limit = step_limit
        # Optional repro.resilience.Deadline checked every 64 steps;
        # expiry aborts the run with DeadlineExceeded.
        self.deadline = None
        self.store = (
            ColumnarStore(program.schemas)
            if self._backend == "compiled"
            else Store(program.schemas)
        )
        self._queue: deque = deque()
        # In-flight delayed messages: [remaining_steps, seq, item].
        self._delayed: List[list] = []
        self._delay_seq = 0
        self._clock = 0
        self._next_derivation_id = 1
        # Interning pool: every tuple entering the engine (base events
        # and rule heads) is collapsed to one canonical instance, so
        # join equality usually short-circuits on identity and hashes /
        # sort keys are computed once per distinct fact.
        self._tuples = TupleStore()
        # Static join plans, keyed by (rule name, trigger index) —
        # rule names are unique per program (Program._validate), so the
        # key survives pickling.  Built lazily on first firing; each
        # plan maps a body-atom index to the bound-position index spec
        # that serves it (see _build_plan).
        self._join_plan: Dict[PyTuple[str, int], dict] = {}
        # Compiled join closures (backend="compiled"), same key space as
        # _join_plan; None marks a firing the compiler does not cover
        # (it falls back to the interpreted join on the same store).
        self._compiled_plans: Dict[PyTuple[str, int], object] = {}
        self._located_tables = self._find_located_tables()
        self._validate_event_usage()

    # -- pickling ------------------------------------------------------------

    def __getstate__(self):
        # Telemetry holds wall clocks and open span stacks — strip it so
        # engine state can be snapshotted (replay cache) or shipped to a
        # worker process; callers reattach their own instance after
        # restore.
        state = self.__dict__.copy()
        state["telemetry"] = None
        # Deadlines hold a live clock callable and are parent-local;
        # workers are bounded by the evaluator's pool timeouts instead.
        state["deadline"] = None
        # The interning pool and join plans are pure caches: dropping
        # them keeps snapshots small, and they repopulate on first use
        # after a restore.  Correctness never depends on two equal
        # tuples being the same object (pickle's memo already preserves
        # identity within one payload).
        state["_tuples"] = TupleStore()
        state["_join_plan"] = {}
        # Compiled closures capture store/telemetry access and are not
        # picklable; like the join plans they rebuild on first firing.
        state["_compiled_plans"] = {}
        return state

    # -- deprecated legacy knob ----------------------------------------------

    @property
    def use_indexes(self) -> bool:
        import warnings

        warnings.warn(
            "Engine.use_indexes is deprecated; read engine.config instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.config.use_indexes

    @use_indexes.setter
    def use_indexes(self, value: bool) -> None:
        import warnings

        warnings.warn(
            "Engine.use_indexes is deprecated; pass "
            "config=EngineConfig(...) at construction instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.config = EngineConfig.from_legacy(
            use_indexes=value, lazy=self.config.lazy
        )
        self._backend = self.config.backend
        self._use_indexes = self.config.use_indexes

    # -- public API ----------------------------------------------------------

    @property
    def now(self) -> int:
        return self._clock

    def node_of(self, tup: Tuple) -> str:
        """The node a tuple lives on (its location field, if located)."""
        if tup.table in self._located_tables and tup.args:
            return str(tup.args[0])
        return GLOBAL_NODE

    def insert(self, tup: Tuple, mutable: Optional[bool] = None) -> None:
        """Enqueue a base-tuple insertion (processed by :meth:`run`)."""
        self._check(tup)
        self._queue.append(("base_insert", self._tuples.intern(tup), mutable))

    def delete(self, tup: Tuple) -> None:
        """Enqueue a base-tuple deletion."""
        self._check(tup)
        self._queue.append(("base_delete", self._tuples.intern(tup)))

    def run(self) -> int:
        """Drain the queue to a fixpoint; returns events processed.

        Delayed messages age by one step per processed event.  When the
        queue empties while messages are still in flight, the soonest
        batch is forced out: a delay reorders delivery but can never
        lose a message, so ``run`` still reaches the same fixpoint set.
        """
        processed = 0
        while self._queue or self._delayed:
            if not self._queue:
                self._release_soonest_delayed()
                continue
            self._step()
            processed += 1
            if self._delayed:
                self._age_delayed()
        return processed

    def insert_and_run(self, tup: Tuple, mutable: Optional[bool] = None) -> int:
        self.insert(tup, mutable)
        return self.run()

    def fire_aggregates(self) -> int:
        """Evaluate aggregate rules once (barrier semantics) and run.

        Used by batch workloads (MapReduce) where aggregates are only
        meaningful after all contributions have arrived.  Returns the
        number of aggregate tuples derived.
        """
        derived = 0
        for rule, head, contributors, env in evaluate_aggregates(
            self.program, self.store
        ):
            # The trigger is the contribution that appeared last — the
            # precondition that would have completed the aggregate.
            trigger_index = max(
                range(len(contributors)),
                key=lambda i: (self._appear_time(contributors[i]), -i),
            )
            derivation = self._make_derivation(
                rule, head, contributors, env, trigger_index=trigger_index
            )
            self._record_derive(derivation)
            self._queue.append(("derived", derivation))
            derived += 1
        self.run()
        return derived

    def lookup(self, table: str) -> List[Tuple]:
        """Live tuples of a state table, deterministically ordered."""
        return self.store.tuples(table)

    def _appear_time(self, tup: Tuple) -> int:
        record = self.store.record(tup)
        if record is None or record.appear_time is None:
            return -1
        return record.appear_time

    def exists(self, tup: Tuple) -> bool:
        return self.store.alive(tup)

    def is_mutable(self, tup: Tuple) -> bool:
        return self.store.is_mutable(tup)

    # -- queue processing ------------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _step(self) -> None:
        self.steps += 1
        if self.telemetry is not None:
            self.telemetry.inc("engine.steps")
            # Depth includes the event being processed this step.
            self.telemetry.set_max(
                "engine.queue_depth_max", len(self._queue) + 1
            )
        if self.deadline is not None and (self.steps & 63) == 0:
            # Cheap cadence: one clock read per 64 events keeps the
            # deadline responsive without taxing the hot loop.
            self.deadline.check("engine.run")
        if self.step_limit is not None and self.steps > self.step_limit:
            raise StepLimitExceeded(
                f"engine exceeded its step budget of {self.step_limit} "
                f"events; the replayed system appears to diverge (e.g. a "
                f"forwarding loop introduced by a candidate change)"
            )
        item = self._queue.popleft()
        kind = item[0]
        if kind == "base_insert":
            self._process_base_insert(item[1], item[2])
        elif kind == "base_delete":
            self._process_base_delete(item[1])
        elif kind == "derived":
            self._process_derived(item[1])
        else:  # pragma: no cover - defensive
            raise EvaluationError(f"unknown queue item {kind!r}")

    def _process_base_insert(self, tup: Tuple, mutable: Optional[bool]) -> None:
        time = self._tick()
        node = self.node_of(tup)
        schema = self.program.schema(tup.table)
        if self.recorder is not None:
            effective = mutable if mutable is not None else schema.mutable
            self.recorder.on_insert(node, tup, time, effective)
        if schema.kind == TableKind.EVENT:
            if self.recorder is not None:
                self.recorder.on_appear(node, tup, time, ("insert", None))
            self._fire_rules(tup, time)
            return
        appeared = self.store.add_base_support(tup, time, mutable)
        if appeared:
            if self.recorder is not None:
                self.recorder.on_appear(node, tup, time, ("insert", None))
            self._fire_rules(tup, time)

    def _process_base_delete(self, tup: Tuple) -> None:
        time = self._tick()
        node = self.node_of(tup)
        schema = self.program.schema(tup.table)
        if schema.kind == TableKind.EVENT:
            raise SchemaError(f"cannot delete event tuple {tup}")
        if self.recorder is not None:
            self.recorder.on_delete(node, tup, time)
        disappeared = self.store.remove_base_support(tup)
        if disappeared:
            if self.recorder is not None:
                self.recorder.on_disappear(node, tup, time, ("delete", None))
            self._cascade_disappear(tup)

    def _process_derived(self, derivation: Derivation) -> None:
        time = self._tick()
        head = derivation.head
        node = self.node_of(head)
        schema = self.program.schema(head.table)
        if schema.kind == TableKind.EVENT:
            if self.recorder is not None:
                self.recorder.on_appear(node, head, time, ("derive", derivation))
            self._fire_rules(head, time)
            return
        appeared = self.store.add_derivation(derivation, time)
        if appeared:
            if self.recorder is not None:
                self.recorder.on_appear(node, head, time, ("derive", derivation))
            self._fire_rules(head, time)

    def _cascade_disappear(self, tup: Tuple) -> None:
        """Underive everything that depended on a vanished tuple."""
        worklist = deque([tup])
        while worklist:
            gone = worklist.popleft()
            for derivation_id in sorted(self.store.dependents_of(gone)):
                derivation = self.store.derivations[derivation_id]
                time = self._tick()
                head = derivation.head
                node = self.node_of(head)
                disappeared = self.store.remove_derivation(derivation_id)
                if self.recorder is not None:
                    self.recorder.on_underive(
                        self.node_of(derivation.trigger), derivation, time
                    )
                if disappeared:
                    if self.recorder is not None:
                        self.recorder.on_disappear(
                            node, head, time, ("underive", derivation)
                        )
                    worklist.append(head)

    # -- rule firing -------------------------------------------------------------

    def _fire_rules(self, delta: Tuple, time: int) -> None:
        telemetry = self.telemetry
        # program.triggers is a dispatch index: only the (rule, body
        # position) pairs that can actually consume this delta are
        # visited, in the same order the old full-rule scan produced.
        for rule, trigger_index in self.program.triggers(delta.table):
            for env, body in self._bindings_for(rule, trigger_index, delta):
                if telemetry is not None:
                    telemetry.inc("engine.rule_firings." + rule.name)
                head = self._evaluate_head(rule.head, env)
                derivation = self._make_derivation(
                    rule, head, body, env, trigger_index, time
                )
                self._record_derive(derivation)
                self._emit(derivation)

    def _emit(self, derivation: Derivation) -> None:
        """Enqueue a derived delta, subjecting cross-node hops to faults.

        A derivation whose head lives on a different node than its
        trigger models a network message (Section 2.2); only those are
        eligible for drop/duplicate/reorder/delay.  Local derivations
        and global (unlocated) tuples always go straight to the queue.
        """
        item = ("derived", derivation)
        telemetry = self.telemetry
        if self.faults is None and telemetry is None:
            self._queue.append(item)
            return
        src = self.node_of(derivation.trigger)
        dst = self.node_of(derivation.head)
        if src == dst or GLOBAL_NODE in (src, dst):
            self._queue.append(item)
            return
        if telemetry is not None:
            telemetry.inc("engine.messages.sent")
        if self.faults is None:
            self._queue.append(item)
            return
        actions = self.faults.message_actions(src, dst)
        if telemetry is not None:
            if not actions:
                telemetry.inc("engine.messages.dropped")
            if len(actions) > 1:
                telemetry.inc("engine.messages.duplicated", len(actions) - 1)
            delayed = sum(1 for delay in actions if delay > 0)
            if delayed:
                telemetry.inc("engine.messages.delayed", delayed)
        for delay in actions:
            if delay <= 0:
                self._queue.append(item)
            else:
                self._delay_seq += 1
                self._delayed.append([delay, self._delay_seq, item])

    def _age_delayed(self) -> None:
        ready = []
        for entry in self._delayed:
            entry[0] -= 1
            if entry[0] <= 0:
                ready.append(entry)
        if ready:
            for entry in ready:
                self._delayed.remove(entry)
            ready.sort(key=lambda entry: entry[1])
            for _, _, item in ready:
                self._queue.append(item)

    def _release_soonest_delayed(self) -> None:
        soonest = min(entry[0] for entry in self._delayed)
        ready = [entry for entry in self._delayed if entry[0] == soonest]
        for entry in ready:
            self._delayed.remove(entry)
        ready.sort(key=lambda entry: entry[1])
        for _, _, item in ready:
            self._queue.append(item)

    def _make_derivation(
        self,
        rule: Rule,
        head: Tuple,
        body: Iterable[Tuple],
        env: Dict[str, object],
        trigger_index: int,
        time: Optional[int] = None,
    ) -> Derivation:
        revocable = all(
            self.program.schema(atom.table).kind == TableKind.STATE
            for atom in rule.body
        ) and not rule.is_aggregate
        derivation = Derivation(
            self._next_derivation_id,
            rule.name,
            self._tuples.intern(head),
            tuple(body),
            env,
            trigger_index,
            time if time is not None else self._clock,
            revocable,
        )
        self._next_derivation_id += 1
        return derivation

    def _record_derive(self, derivation: Derivation) -> None:
        if self.recorder is not None:
            node = self.node_of(derivation.trigger)
            self.recorder.on_derive(node, derivation, derivation.time)

    def _evaluate_head(self, head: Atom, env: Dict[str, object]) -> Tuple:
        args = [arg.evaluate(env) for arg in head.args]
        return self._tuples.make(head.table, args)

    # -- join machinery ----------------------------------------------------------

    def _bindings_for(
        self, rule: Rule, trigger_index: int, delta: Tuple
    ) -> Iterator[PyTuple[Dict[str, object], PyTuple]]:
        """Backend dispatch: compiled closure when available, else the
        interpreted join.  Both yield byte-identical bindings."""
        if self._backend == "compiled":
            key = (rule.name, trigger_index)
            plan = self._compiled_plans.get(key, _UNCOMPILED)
            if plan is _UNCOMPILED:
                plan = compile_rule(self, rule, trigger_index)
                self._compiled_plans[key] = plan
            if plan is not None:
                return plan.bindings(self, delta)
        return self._bindings(rule, trigger_index, delta)

    def _bindings(
        self, rule: Rule, trigger_index: int, delta: Tuple
    ) -> Iterator[PyTuple[Dict[str, object], PyTuple]]:
        """All complete bindings of ``rule`` with ``delta`` at the trigger.

        Yields ``(env, body_tuples)`` pairs in deterministic order; body
        tuples are ordered to match ``rule.body``.
        """
        env: Dict[str, object] = {}
        if not _match_atom(rule.body[trigger_index], delta, env):
            return
        pending_assigns = list(rule.assignments)
        pending_conds = list(rule.conditions)
        if not self._settle(env, pending_assigns, pending_conds):
            return
        plan = self._plan_for(rule, trigger_index) if self._use_indexes else None
        remaining = [i for i in range(len(rule.body)) if i != trigger_index]
        slots: List[Optional[Tuple]] = [None] * len(rule.body)
        slots[trigger_index] = delta
        yield from self._extend(
            rule, remaining, slots, env, pending_assigns, pending_conds, plan
        )

    def _extend(self, rule, remaining, slots, env, assigns, conds, plan):
        if not remaining:
            if assigns or conds:
                env = dict(env)
                if not self._settle(env, list(assigns), list(conds), final=True):
                    return
            yield env, tuple(slots)
            return
        index = remaining[0]
        atom = rule.body[index]
        spec = plan.get(index) if plan is not None else None
        candidates = self._candidates(atom, env, assigns, conds, spec)
        for candidate, new_env, new_assigns, new_conds in candidates:
            slots[index] = candidate
            yield from self._extend(
                rule, remaining[1:], slots, new_env, new_assigns, new_conds, plan
            )
            slots[index] = None

    # -- join planning -----------------------------------------------------------

    def _plan_for(self, rule: Rule, trigger_index: int) -> dict:
        key = (rule.name, trigger_index)
        plan = self._join_plan.get(key)
        if plan is None:
            plan = self._build_plan(rule, trigger_index)
            self._join_plan[key] = plan
        return plan

    def _build_plan(self, rule: Rule, trigger_index: int) -> dict:
        """Index specs for each non-trigger body atom of a rule firing.

        Mirrors the runtime join exactly: the trigger atom binds its
        variables, assignments settle to a fixpoint, then the remaining
        atoms are visited in ascending body order, each contributing its
        variables.  A body atom's spec is the set of argument positions
        holding a constant or an already-bound variable — precisely the
        positions the runtime environment can supply values for — so
        the store can serve candidates from one composite equality
        index instead of scanning the table.  ``None`` means nothing is
        bound and the atom needs a full scan.
        """
        bound = {
            arg.name
            for arg in rule.body[trigger_index].args
            if isinstance(arg, Var)
        }
        assigns = list(rule.assignments)
        _settle_static(bound, assigns)
        plan: Dict[int, Optional[PyTuple]] = {}
        for index, atom in enumerate(rule.body):
            if index == trigger_index:
                continue
            positions = []
            args = []
            for position, arg in enumerate(atom.args):
                if isinstance(arg, Const) or (
                    isinstance(arg, Var) and arg.name in bound
                ):
                    positions.append(position)
                    args.append(arg)
            if positions:
                spec = (tuple(positions), tuple(args))
                self.store.register_index(atom.table, spec[0])
            else:
                spec = None
            plan[index] = spec
            bound.update(
                arg.name for arg in atom.args if isinstance(arg, Var)
            )
            _settle_static(bound, assigns)
        return plan

    def _candidates(self, atom: Atom, env, assigns, conds, spec=None):
        """Matching stored tuples for a body atom, selector applied.

        Each yielded element carries the extended environment and the
        not-yet-consumed assignments/conditions.  When the atom has a
        bound argument (a constant, or a variable the join already
        bound), the store's equality index serves the candidates
        instead of a table scan.
        """
        matched = []
        for candidate in self._access_path(atom, env, spec):
            new_env = dict(env)
            if not _match_atom(atom, candidate, new_env):
                continue
            new_assigns = list(assigns)
            new_conds = list(conds)
            if not self._settle(new_env, new_assigns, new_conds):
                continue
            matched.append((candidate, new_env, new_assigns, new_conds))
        if atom.selector is None or not matched:
            return matched
        # argmax selection: keep the single best candidate.  Key
        # expressions may reference any bound variable; ties are broken
        # by the candidate tuple's own order for determinism.
        def selector_key(entry):
            candidate, new_env, _, _ = entry
            keys = tuple(key.evaluate(new_env) for key in atom.selector.keys)
            return (keys, sort_key(candidate))

        best = max(matched, key=selector_key)
        return [best]

    def _access_path(self, atom: Atom, env, spec=None) -> List[Tuple]:
        """Pick index lookup vs. table scan for a body atom.

        ``spec`` is the planned ``(positions, args)`` pair from
        :meth:`_build_plan`; when present, one composite-index probe
        serves every bound position at once.  Without a plan (callers
        outside a rule firing) the path falls back to the first bound
        position it finds.  Both paths return candidates in the same
        deterministic order a full scan would (a sorted index bucket is
        exactly the matching slice of the sorted table), so the access
        path changes cost, never results.
        """
        if not self._use_indexes:
            return self.store.tuples(atom.table)
        telemetry = self.telemetry
        if spec is not None:
            positions, spec_args = spec
            if telemetry is not None:
                telemetry.inc("engine.index.hits")
            return self.store.tuples_matching_at(
                atom.table,
                positions,
                tuple(
                    arg.value if isinstance(arg, Const) else env[arg.name]
                    for arg in spec_args
                ),
            )
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                if telemetry is not None:
                    telemetry.inc("engine.index.hits")
                return self.store.tuples_matching(
                    atom.table, position, arg.value
                )
            if isinstance(arg, Var) and arg.name in env:
                if telemetry is not None:
                    telemetry.inc("engine.index.hits")
                return self.store.tuples_matching(
                    atom.table, position, env[arg.name]
                )
        if telemetry is not None:
            telemetry.inc("engine.index.misses")
        return self.store.tuples(atom.table)

    def _settle(self, env, assigns, conds, final: bool = False) -> bool:
        """Evaluate assignments/conditions whose variables are bound.

        Mutates ``env``, ``assigns`` and ``conds`` in place; returns
        False as soon as a condition fails.  With ``final=True`` it is
        an error for anything to remain unbound.
        """
        progress = True
        while progress:
            progress = False
            for assignment in list(assigns):
                if assignment.expr.variables() <= env.keys():
                    value = assignment.expr.evaluate(env)
                    if assignment.var in env:
                        if env[assignment.var] != value:
                            return False
                    else:
                        env[assignment.var] = value
                    assigns.remove(assignment)
                    progress = True
            for condition in list(conds):
                if condition.variables() <= env.keys():
                    try:
                        ok = condition.holds(env)
                    except EvaluationError:
                        ok = False
                    if not ok:
                        return False
                    conds.remove(condition)
                    progress = True
        if final and (assigns or conds):
            raise EvaluationError(
                f"unbound variables remain in {assigns or conds}"
            )
        return True

    # -- validation -----------------------------------------------------------

    def _check(self, tup: Tuple) -> None:
        schema = self.program.schemas.get(tup.table)
        if schema is None:
            raise SchemaError(f"unknown table {tup.table!r}")
        if tup.arity != schema.arity:
            raise SchemaError(
                f"tuple {tup} has arity {tup.arity}, expected {schema.arity}"
            )

    def _find_located_tables(self) -> frozenset:
        located = set()
        for rule in self.program.rules:
            for atom in (rule.head, *rule.body):
                if atom.location is not None:
                    located.add(atom.table)
        return frozenset(located)

    def _validate_event_usage(self) -> None:
        for rule in self.program.rules:
            event_atoms = [
                atom
                for atom in rule.body
                if self.program.schema(atom.table).kind == TableKind.EVENT
            ]
            if len(event_atoms) > 1:
                raise SchemaError(
                    f"rule {rule.name!r} joins two event tables "
                    f"({', '.join(a.table for a in event_atoms)}); event "
                    f"tuples are transient and cannot be joined"
                )
            if rule.is_aggregate and event_atoms:
                raise SchemaError(
                    f"aggregate rule {rule.name!r} cannot read event tables"
                )


def _settle_static(bound: set, assigns: list) -> None:
    """Static mirror of :meth:`Engine._settle` for boundness analysis.

    Runs the assignment fixpoint over variable *names* instead of
    values: an assignment whose expression variables are all bound
    makes its target variable bound.  Conditions never bind anything,
    so they are ignored.  Because the runtime settle removes
    assignments under exactly the same availability test, the bound set
    computed here equals the runtime environment's key set at the same
    join step for every surviving candidate.
    """
    progress = True
    while progress:
        progress = False
        for assignment in list(assigns):
            if assignment.expr.variables() <= bound:
                bound.add(assignment.var)
                assigns.remove(assignment)
                progress = True


def _match_atom(atom: Atom, tup: Tuple, env: Dict[str, object]) -> bool:
    """Match a body atom against a concrete tuple, extending ``env``."""
    if atom.table != tup.table or atom.arity != tup.arity:
        return False
    for arg, value in zip(atom.args, tup.args):
        if isinstance(arg, Var):
            bound = env.get(arg.name, _UNSET)
            if bound is _UNSET:
                env[arg.name] = value
            elif bound != value:
                return False
        elif isinstance(arg, Const):
            if arg.value != value:
                return False
        elif isinstance(arg, Expr):
            free = arg.variables() - env.keys()
            if free:
                return False
            if arg.evaluate(env) != value:
                return False
        else:  # pragma: no cover - defensive
            raise EvaluationError(f"bad body atom argument {arg!r}")
    return True


class _Unset:
    __slots__ = ()

    def __repr__(self):  # pragma: no cover
        return "<unset>"


_UNSET = _Unset()

# Public alias: the matching primitive is also used by DiffProv when it
# searches the bad execution for competitor/blocker tuples.
match_atom = _match_atom
