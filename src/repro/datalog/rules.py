"""Derivation rules — the algorithm model of Section 3.1.

A rule has the form ``head :- body1, body2, ..., assignments,
conditions`` and may carry location specifiers (``@X``) on its atoms.
Two extensions beyond textbook datalog are needed to model networks
faithfully:

- **argmax selectors** on body atoms express OpenFlow best-match
  semantics ("of all flow entries matching this packet, use the one
  with the highest priority, then the longest prefix").  The selected
  tuple — and only it — becomes part of the derivation's provenance,
  which is exactly what the paper's provenance trees show.

- **aggregate heads** (``count<*>``, ``sum<X>``, ``min<X>``,
  ``max<X>``) support the MapReduce model.  They are evaluated at an
  explicit barrier (see :mod:`repro.datalog.aggregates`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import EvaluationError, SchemaError
from .expr import Const, Expr, Var
from .tuples import TableKind, TableSchema

__all__ = [
    "Atom",
    "Assignment",
    "Condition",
    "AggSpec",
    "Selector",
    "Rule",
    "Program",
]

_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Selector:
    """An argmax selector on a body atom.

    ``keys`` are expressions over the atom's own variables (plus any
    already-bound variables); among all tuples matching the atom, the
    one maximizing the key vector is selected.  Ties are broken by the
    tuple's own value ordering to keep evaluation deterministic.
    """

    __slots__ = ("keys",)

    def __init__(self, keys: Sequence[Expr]):
        self.keys = tuple(keys)
        if not self.keys:
            raise SchemaError("argmax selector needs at least one key")

    def __eq__(self, other):
        if isinstance(other, Selector):
            return self.keys == other.keys
        return NotImplemented

    def __hash__(self):
        return hash(("Selector", self.keys))

    def __repr__(self):
        return f"Selector({list(self.keys)!r})"

    def __str__(self):
        return f"argmax<{', '.join(str(k) for k in self.keys)}>"


class AggSpec:
    """An aggregate slot in a rule head: ``sum<X>``, ``count<*>``, ..."""

    __slots__ = ("kind", "expr")

    KINDS = ("count", "sum", "min", "max")

    def __init__(self, kind: str, expr: Optional[Expr]):
        if kind not in self.KINDS:
            raise SchemaError(f"unknown aggregate {kind!r}")
        if kind != "count" and expr is None:
            raise SchemaError(f"aggregate {kind!r} needs an argument")
        self.kind = kind
        self.expr = expr

    def __eq__(self, other):
        if isinstance(other, AggSpec):
            return (self.kind, self.expr) == (other.kind, other.expr)
        return NotImplemented

    def __hash__(self):
        return hash(("AggSpec", self.kind, self.expr))

    def __repr__(self):
        return f"AggSpec({self.kind!r}, {self.expr!r})"

    def __str__(self):
        inner = "*" if self.expr is None else str(self.expr)
        return f"{self.kind}<{inner}>"


class Atom:
    """A predicate occurrence: ``table(@Loc, arg, ...)``.

    ``args`` includes the location argument (always first when
    ``location`` is set).  Body atom args are usually :class:`Var` or
    :class:`Const`; head args may be arbitrary expressions or
    :class:`AggSpec` slots.
    """

    __slots__ = ("table", "args", "location", "selector")

    def __init__(
        self,
        table: str,
        args: Iterable[object],
        location: Optional[str] = None,
        selector: Optional[Selector] = None,
    ):
        self.table = table
        self.args = tuple(args)
        self.location = location
        self.selector = selector

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> frozenset:
        result = frozenset()
        for arg in self.args:
            if isinstance(arg, Expr):
                result |= arg.variables()
        return result

    def has_aggregates(self) -> bool:
        return any(isinstance(arg, AggSpec) for arg in self.args)

    def __eq__(self, other):
        if isinstance(other, Atom):
            return (self.table, self.args, self.location, self.selector) == (
                other.table,
                other.args,
                other.location,
                other.selector,
            )
        return NotImplemented

    def __hash__(self):
        return hash(("Atom", self.table, self.args, self.location, self.selector))

    def __repr__(self):
        return (
            f"Atom({self.table!r}, {list(self.args)!r}, "
            f"location={self.location!r}, selector={self.selector!r})"
        )

    def __str__(self):
        parts = []
        for i, arg in enumerate(self.args):
            text = str(arg)
            if i == 0 and self.location is not None:
                text = f"@{text}"
            parts.append(text)
        sel = f" {self.selector}" if self.selector else ""
        return f"{self.table}({', '.join(parts)}){sel}"


class Assignment:
    """``var := expr`` in a rule body."""

    __slots__ = ("var", "expr")

    def __init__(self, var: str, expr: Expr):
        self.var = var
        self.expr = expr

    def __eq__(self, other):
        if isinstance(other, Assignment):
            return (self.var, self.expr) == (other.var, other.expr)
        return NotImplemented

    def __hash__(self):
        return hash(("Assignment", self.var, self.expr))

    def __repr__(self):
        return f"Assignment({self.var!r}, {self.expr!r})"

    def __str__(self):
        return f"{self.var} := {self.expr}"


class Condition:
    """A comparison (or boolean builtin call) in a rule body."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Optional[Expr] = None):
        if op == "call":
            if right is not None:
                raise SchemaError("boolean call conditions take one expression")
        elif op not in _COMPARATORS:
            raise SchemaError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def holds(self, env: Dict[str, object]) -> bool:
        if self.op == "call":
            return bool(self.left.evaluate(env))
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError:
            raise EvaluationError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from None

    def variables(self) -> frozenset:
        result = self.left.variables()
        if self.right is not None:
            result |= self.right.variables()
        return result

    def __eq__(self, other):
        if isinstance(other, Condition):
            return (self.op, self.left, self.right) == (other.op, other.left, other.right)
        return NotImplemented

    def __hash__(self):
        return hash(("Condition", self.op, self.left, self.right))

    def __repr__(self):
        return f"Condition({self.op!r}, {self.left!r}, {self.right!r})"

    def __str__(self):
        if self.op == "call":
            return str(self.left)
        return f"{self.left} {self.op} {self.right}"


class Rule:
    """A named derivation rule."""

    __slots__ = ("name", "head", "body", "assignments", "conditions")

    def __init__(
        self,
        name: str,
        head: Atom,
        body: Sequence[Atom],
        assignments: Sequence[Assignment] = (),
        conditions: Sequence[Condition] = (),
    ):
        self.name = name
        self.head = head
        self.body = tuple(body)
        self.assignments = tuple(assignments)
        self.conditions = tuple(conditions)
        if not self.body:
            raise SchemaError(f"rule {name!r} has an empty body")
        self._check_safety()

    @property
    def is_aggregate(self) -> bool:
        return self.head.has_aggregates()

    def body_tables(self) -> frozenset:
        return frozenset(atom.table for atom in self.body)

    def _check_safety(self):
        """Every head/condition variable must be bound by the body."""
        bound = set()
        for atom in self.body:
            bound |= atom.variables()
        for assignment in self.assignments:
            missing = assignment.expr.variables() - bound
            if missing:
                raise SchemaError(
                    f"rule {self.name!r}: assignment {assignment} uses unbound "
                    f"variables {sorted(missing)}"
                )
            bound.add(assignment.var)
        head_vars = set()
        for arg in self.head.args:
            if isinstance(arg, AggSpec):
                if arg.expr is not None:
                    head_vars |= arg.expr.variables()
            elif isinstance(arg, Expr):
                head_vars |= arg.variables()
        missing = head_vars - bound
        if missing:
            raise SchemaError(
                f"rule {self.name!r}: head uses unbound variables {sorted(missing)}"
            )
        for condition in self.conditions:
            missing = condition.variables() - bound
            if missing:
                raise SchemaError(
                    f"rule {self.name!r}: condition {condition} uses unbound "
                    f"variables {sorted(missing)}"
                )

    def __eq__(self, other):
        if isinstance(other, Rule):
            return (
                self.name,
                self.head,
                self.body,
                self.assignments,
                self.conditions,
            ) == (other.name, other.head, other.body, other.assignments, other.conditions)
        return NotImplemented

    def __hash__(self):
        return hash(("Rule", self.name, self.head, self.body, self.assignments, self.conditions))

    def __repr__(self):
        return f"Rule({self.name!r}, {self.head!r}, ...)"

    def __str__(self):
        parts = [str(atom) for atom in self.body]
        parts += [str(a) for a in self.assignments]
        parts += [str(c) for c in self.conditions]
        return f"{self.name} {self.head} :- {', '.join(parts)}."


class Program:
    """A complete NDlog program: schemas plus rules."""

    def __init__(
        self,
        schemas: Optional[Dict[str, TableSchema]] = None,
        rules: Optional[Sequence[Rule]] = None,
    ):
        self.schemas: Dict[str, TableSchema] = dict(schemas or {})
        self.rules: List[Rule] = list(rules or [])
        # Dispatch index: table -> ((rule, trigger_index), ...) for every
        # body-atom occurrence in a non-aggregate rule.  Built lazily and
        # invalidated by add_rule, so a delta only ever visits the rules
        # that can actually consume it.
        self._trigger_cache: Optional[Dict[str, tuple]] = None
        self._validate()

    def _validate(self):
        names = set()
        for rule in self.rules:
            if rule.name in names:
                raise SchemaError(f"duplicate rule name {rule.name!r}")
            names.add(rule.name)
            for atom in (rule.head, *rule.body):
                schema = self.schemas.get(atom.table)
                if schema is None:
                    raise SchemaError(
                        f"rule {rule.name!r} references undeclared table "
                        f"{atom.table!r}"
                    )
                if atom.arity != schema.arity:
                    raise SchemaError(
                        f"rule {rule.name!r}: atom {atom} has arity "
                        f"{atom.arity}, table expects {schema.arity}"
                    )

    def schema(self, table: str) -> TableSchema:
        try:
            return self.schemas[table]
        except KeyError:
            raise SchemaError(f"unknown table {table!r}") from None

    def rule(self, name: str) -> Rule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise SchemaError(f"no rule named {name!r}")

    def add_schema(self, schema: TableSchema) -> "Program":
        self.schemas[schema.name] = schema
        return self

    def add_rule(self, rule: Rule) -> "Program":
        self.rules.append(rule)
        self._trigger_cache = None
        self._validate()
        return self

    def triggers(self, table: str) -> tuple:
        """``(rule, trigger_index)`` pairs a delta of ``table`` can fire.

        The pairs preserve program order (rules first, body positions
        within a rule second), which is the order the engine's old
        rule scan visited them in — dispatch changes cost, not outcome.
        """
        cache = self._trigger_cache
        if cache is None:
            cache = {}
            for rule in self.rules:
                if rule.is_aggregate:
                    continue
                for index, atom in enumerate(rule.body):
                    cache.setdefault(atom.table, []).append((rule, index))
            cache = {name: tuple(pairs) for name, pairs in cache.items()}
            self._trigger_cache = cache
        return cache.get(table, ())

    def rules_triggered_by(self, table: str) -> List[Rule]:
        """Non-aggregate rules with a body atom over ``table``."""
        seen = set()
        result = []
        for rule, _ in self.triggers(table):
            if id(rule) not in seen:
                seen.add(id(rule))
                result.append(rule)
        return result

    def aggregate_rules(self) -> List[Rule]:
        return [rule for rule in self.rules if rule.is_aggregate]

    def event_tables(self) -> frozenset:
        return frozenset(
            name for name, schema in self.schemas.items()
            if schema.kind == TableKind.EVENT
        )

    def __repr__(self):
        return f"Program({len(self.schemas)} tables, {len(self.rules)} rules)"
