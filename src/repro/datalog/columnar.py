"""Columnar relation storage with sorted secondary projections.

The interpreted :class:`repro.datalog.state.Store` answers every index
probe with ``sorted(bucket_set, key=sort_key)`` — one sort per probe —
and rebuilds the per-table sorted view from scratch whenever a tuple's
liveness changes.  At join-heavy scales (the full Stanford backbone:
757k forwarding entries) those per-probe sorts dominate evaluation.

:class:`ColumnarStore` keeps each relation *column-wise* — an
append-only row arena plus one Python list per argument position — and
maintains two kinds of sorted secondary projections incrementally:

- a **sorted live view** per table (the deterministic scan order the
  reference evaluator produces by sorting), updated by bisection on
  every liveness change instead of re-sorted per query;
- **equality projections** per ``(table, positions)`` spec, whose
  buckets are lists kept sorted by ``sort_key`` — a probe returns the
  bucket directly, no per-probe sort.

Projections are registered by the join planner (exactly like the
interpreted store's indexes) and bulk-built from the column arrays.
Everything here is a pure cache over the inherited record tables:
``__getstate__`` drops it all, so replay-cache snapshots and journal
resume payloads stay small and rebuild lazily after a restore —
byte-identically, because bucket membership and ordering are functions
of the live tuple set alone.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple as PyTuple

from ..errors import SchemaError
from .state import Store, sort_key
from .tuples import TableSchema, Tuple

__all__ = ["ColumnarStore"]

_EMPTY: Dict = {}

# Compact the row arena when tombstones outnumber live rows by this
# factor (and there are enough of them to matter).
_COMPACT_DEAD_MIN = 1024


class _ColumnarTable:
    """One relation stored column-wise: a row arena + per-position columns."""

    __slots__ = ("arity", "rows", "columns", "row_of", "dead")

    def __init__(self, arity: int):
        self.arity = arity
        self.rows: List[Optional[Tuple]] = []
        self.columns: List[List] = [[] for _ in range(arity)]
        self.row_of: Dict[Tuple, int] = {}
        self.dead = 0

    def add(self, tup: Tuple) -> None:
        if tup in self.row_of:
            return
        self.row_of[tup] = len(self.rows)
        self.rows.append(tup)
        for position, column in enumerate(self.columns):
            column.append(tup.args[position])

    def discard(self, tup: Tuple) -> None:
        row = self.row_of.pop(tup, None)
        if row is None:
            return
        self.rows[row] = None
        self.dead += 1
        if self.dead > _COMPACT_DEAD_MIN and self.dead > len(self.row_of):
            self._compact()

    def _compact(self) -> None:
        live = [tup for tup in self.rows if tup is not None]
        self.rows = live
        self.columns = [
            [tup.args[position] for tup in live]
            for position in range(self.arity)
        ]
        self.row_of = {tup: row for row, tup in enumerate(live)}
        self.dead = 0

    def project(
        self, positions: PyTuple[int, ...]
    ) -> Dict[PyTuple, List[Tuple]]:
        """Group live rows by their values at ``positions``.

        Reads the column arrays directly — no per-row attribute
        chasing — and emits buckets in arena order; the caller sorts
        each bucket once at build time.
        """
        rows = self.rows
        buckets: Dict[PyTuple, List[Tuple]] = {}
        if len(positions) == 1:
            column = self.columns[positions[0]]
            for row, tup in enumerate(rows):
                if tup is not None:
                    buckets.setdefault((column[row],), []).append(tup)
        else:
            columns = [self.columns[p] for p in positions]
            for row, tup in enumerate(rows):
                if tup is not None:
                    key = tuple(column[row] for column in columns)
                    buckets.setdefault(key, []).append(tup)
        return buckets


class ColumnarStore(Store):
    """A :class:`Store` with columnar arenas and sorted projections.

    Drop-in compatible: every query returns exactly what the base
    store returns (same tuples, same deterministic order), so the
    compiled and interpreted evaluators can run on either store and
    produce byte-identical results.  Only the cost model changes.
    """

    def __init__(self, schemas: Dict[str, TableSchema]):
        super().__init__(schemas)
        # table -> columnar arena (lazily built per table on first use,
        # and rebuilt after unpickling).
        self._columnar: Dict[str, _ColumnarTable] = {}
        # table -> live tuples sorted by sort_key, maintained by
        # bisection.  Replaces the base class's invalidate-and-resort
        # _sorted_cache strategy.
        self._sorted_live: Dict[str, List[Tuple]] = {}

    def __getstate__(self):
        state = super().__getstate__()
        # Arenas and sorted views are caches over _tables, like the
        # base class's indexes: drop them from snapshots and rebuild
        # lazily after restore.
        state["_columnar"] = {}
        state["_sorted_live"] = {}
        return state

    # -- lazily-built projections --------------------------------------------

    def _arena(self, table: str) -> _ColumnarTable:
        arena = self._columnar.get(table)
        if arena is None:
            schema = self.schemas.get(table)
            if schema is None:
                raise SchemaError(f"unknown table {table!r}")
            arena = _ColumnarTable(schema.arity)
            for record in self._tables[table].values():
                if record.alive:
                    arena.add(record.tuple)
            self._columnar[table] = arena
        return arena

    def _live_sorted(self, table: str) -> List[Tuple]:
        live = self._sorted_live.get(table)
        if live is None:
            records = self._tables.get(table)
            if records is None:
                raise SchemaError(f"unknown table {table!r}")
            live = [rec.tuple for rec in records.values() if rec.alive]
            live.sort(key=sort_key)
            self._sorted_live[table] = live
        return live

    # -- queries --------------------------------------------------------------

    def tuples(self, table: str) -> List[Tuple]:
        # Callers may mutate their view; hand out a copy (base-class
        # contract).
        return list(self._live_sorted(table))

    def tuples_matching_at(
        self, table: str, positions: PyTuple[int, ...], values: PyTuple
    ) -> List[Tuple]:
        index = self._indexes.get(table, _EMPTY).get(positions)
        if index is None:
            index = self.register_index(table, positions)
        bucket = index.get(tuple(values))
        if not bucket:
            return []
        # Buckets are kept sorted by sort_key; no per-probe sort.
        return list(bucket)

    def register_index(
        self, table: str, positions: PyTuple[int, ...]
    ) -> Dict[PyTuple, List[Tuple]]:
        positions = tuple(positions)
        per_table = self._indexes.setdefault(table, {})
        index = per_table.get(positions)
        if index is None:
            if table not in self._tables:
                raise SchemaError(f"unknown table {table!r}")
            arena = self._arena(table)
            if all(p < arena.arity for p in positions):
                index = arena.project(positions)
                for bucket in index.values():
                    bucket.sort(key=sort_key)
            else:
                index = {}
            per_table[positions] = index
        return index

    # -- incremental maintenance ----------------------------------------------

    def _note_liveness_change(self, tup: Tuple, alive: bool) -> None:
        table = tup.table
        live = self._sorted_live.get(table)
        if live is not None:
            if alive:
                insort(live, tup, key=sort_key)
            else:
                _sorted_remove(live, tup)
        arena = self._columnar.get(table)
        if arena is not None:
            if alive:
                arena.add(tup)
            else:
                arena.discard(tup)
        for positions, index in self._indexes.get(table, _EMPTY).items():
            if any(p >= tup.arity for p in positions):
                continue
            key = tuple(tup.args[p] for p in positions)
            bucket = index.get(key)
            if alive:
                if bucket is None:
                    index[key] = [tup]
                else:
                    insort(bucket, tup, key=sort_key)
            elif bucket:
                _sorted_remove(bucket, tup)


def _sorted_remove(bucket: List[Tuple], tup: Tuple) -> None:
    """Remove ``tup`` from a sort_key-ordered list, by identity of value.

    Bisects to the key's slice, then scans it for the exact tuple —
    equal keys are vanishingly rare (the whole engine already relies on
    sort_key being effectively injective per table), so the scan is
    O(1) in practice.
    """
    key = sort_key(tup)
    lo, hi = 0, len(bucket)
    while lo < hi:
        mid = (lo + hi) // 2
        if sort_key(bucket[mid]) < key:
            lo = mid + 1
        else:
            hi = mid
    for i in range(lo, len(bucket)):
        if bucket[i] == tup:
            del bucket[i]
            return
        if sort_key(bucket[i]) != key:
            break
