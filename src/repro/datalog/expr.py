"""Expression AST used in rule heads, assignments, and taint formulas.

Expressions support three operations that DiffProv depends on:

- ``evaluate(env)`` — concrete evaluation under a variable binding;
- ``substitute(mapping)`` — symbolic substitution of variables by other
  expressions (this is how taint formulas are composed as they travel
  up the provenance tree, Section 4.4 of the paper);
- :func:`invert` — solving ``expr == target`` for one variable, which
  is how taints are propagated *down* to sibling tuples when DiffProv
  makes missing tuples appear (Section 4.5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import EvaluationError, NonInvertibleError
from . import builtins as _builtins

__all__ = [
    "Expr",
    "Const",
    "Var",
    "BinOp",
    "Call",
    "invert",
    "fold",
]


class Expr:
    """Abstract base class for expressions."""

    __slots__ = ()

    def evaluate(self, env: Dict[str, object]):
        raise NotImplementedError

    def variables(self) -> frozenset:
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Expr"]) -> "Expr":
        raise NotImplementedError

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result


class Const(Expr):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def evaluate(self, env):
        return self.value

    def variables(self):
        return frozenset()

    def substitute(self, mapping):
        return self

    def __eq__(self, other):
        if isinstance(other, Const):
            return type(self.value) is type(other.value) and self.value == other.value
        return NotImplemented

    def __hash__(self):
        return hash(("Const", type(self.value).__name__, self.value))

    def __repr__(self):
        return f"Const({self.value!r})"

    def __str__(self):
        if isinstance(self.value, bool):
            # NDlog spells booleans lowercase; Python's True/False would
            # re-parse as variables.
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


class Var(Expr):
    """A variable reference.

    In rules, names are ordinary rule variables.  In taint formulas,
    names follow the convention ``$i`` for field ``i`` of the seed
    tuple (Section 4.3).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {self.name!r}") from None

    def variables(self):
        return frozenset([self.name])

    def substitute(self, mapping):
        return mapping.get(self.name, self)

    def __eq__(self, other):
        if isinstance(other, Var):
            return self.name == other.name
        return NotImplemented

    def __hash__(self):
        return hash(("Var", self.name))

    def __repr__(self):
        return f"Var({self.name!r})"

    def __str__(self):
        return self.name


_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": None,  # exact division, handled specially
    "%": lambda a, b: a % b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}


class BinOp(Expr):
    """A binary arithmetic/bitwise operation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _OPS:
            raise EvaluationError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env):
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op == "/":
            return _exact_div(left, right)
        try:
            return _OPS[self.op](left, right)
        except TypeError as exc:
            raise EvaluationError(
                f"cannot apply {self.op!r} to {left!r} and {right!r}"
            ) from exc
        except ZeroDivisionError:
            raise EvaluationError(f"division by zero in {self}") from None

    def variables(self):
        return self.left.variables() | self.right.variables()

    def substitute(self, mapping):
        return BinOp(self.op, self.left.substitute(mapping), self.right.substitute(mapping))

    def __eq__(self, other):
        if isinstance(other, BinOp):
            return (self.op, self.left, self.right) == (other.op, other.left, other.right)
        return NotImplemented

    def __hash__(self):
        return hash(("BinOp", self.op, self.left, self.right))

    def __repr__(self):
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


class Call(Expr):
    """A call to a registered builtin function."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Iterable[Expr]):
        self.name = name
        self.args = tuple(args)

    def evaluate(self, env):
        return _builtins.call(self.name, [arg.evaluate(env) for arg in self.args])

    def variables(self):
        result = frozenset()
        for arg in self.args:
            result |= arg.variables()
        return result

    def substitute(self, mapping):
        return Call(self.name, [arg.substitute(mapping) for arg in self.args])

    def __eq__(self, other):
        if isinstance(other, Call):
            return (self.name, self.args) == (other.name, other.args)
        return NotImplemented

    def __hash__(self):
        return hash(("Call", self.name, self.args))

    def __repr__(self):
        return f"Call({self.name!r}, {list(self.args)!r})"

    def __str__(self):
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def _exact_div(left, right):
    """Exact division: keeps ``/`` invertible over the integers."""
    if right == 0:
        raise EvaluationError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        quotient, remainder = divmod(left, right)
        if remainder:
            raise EvaluationError(f"{left} is not divisible by {right}")
        return quotient
    return left / right


def fold(expr: Expr) -> Expr:
    """Constant-fold an expression (best effort, purely structural)."""
    if isinstance(expr, BinOp):
        left = fold(expr.left)
        right = fold(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(BinOp(expr.op, left, right).evaluate({}))
        return BinOp(expr.op, left, right)
    if isinstance(expr, Call):
        args = [fold(arg) for arg in expr.args]
        if all(isinstance(arg, Const) for arg in args):
            return Const(Call(expr.name, args).evaluate({}))
        return Call(expr.name, args)
    return expr


def invert(expr: Expr, var: str, target: Expr) -> List[Expr]:
    """Solve ``expr == target`` for ``var``.

    Returns the list of candidate expressions for ``var`` (several when
    the computation has multiple preimages, e.g. ``sq``).  Raises
    :class:`NonInvertibleError` when the computation cannot be inverted
    (Section 4.7's third failure mode); the error carries the attempted
    equation as a diagnostic clue.
    """
    if var not in expr.variables():
        raise NonInvertibleError(
            f"variable {var!r} does not occur in {expr}", attempted=(expr, target)
        )

    if isinstance(expr, Var):
        return [target]

    if isinstance(expr, BinOp):
        in_left = var in expr.left.variables()
        in_right = var in expr.right.variables()
        if in_left and in_right:
            raise NonInvertibleError(
                f"variable {var!r} occurs on both sides of {expr}",
                attempted=(expr, target),
            )
        if in_left:
            return _invert_binop_left(expr, var, target)
        return _invert_binop_right(expr, var, target)

    if isinstance(expr, Call):
        positions = [i for i, arg in enumerate(expr.args) if var in arg.variables()]
        if len(positions) != 1:
            raise NonInvertibleError(
                f"variable {var!r} occurs in {len(positions)} arguments of {expr}",
                attempted=(expr, target),
            )
        index = positions[0]
        builtin = _builtins.get(expr.name)
        inverse = builtin.inverses.get(index)
        if inverse is None:
            raise NonInvertibleError(
                f"builtin {expr.name!r} has no inverse for argument {index}",
                attempted=(expr, target),
            )
        # The inverse works on concrete values; wrap it as a deferred
        # call so the caller can evaluate it under any seed binding.
        return [_InverseCall(expr, index, target, candidate) for candidate in
                range(_count_candidates(expr, index, target))] or [
            _InverseCall(expr, index, target, 0)
        ]

    raise NonInvertibleError(f"cannot invert {expr!r}", attempted=(expr, target))


def _invert_binop_left(expr: BinOp, var: str, target: Expr) -> List[Expr]:
    op, right = expr.op, expr.right
    if op == "+":
        return invert(expr.left, var, BinOp("-", target, right))
    if op == "-":
        return invert(expr.left, var, BinOp("+", target, right))
    if op == "*":
        return invert(expr.left, var, BinOp("/", target, right))
    if op == "/":
        return invert(expr.left, var, BinOp("*", target, right))
    if op == "^":
        return invert(expr.left, var, BinOp("^", target, right))
    if op == "<<":
        return invert(expr.left, var, BinOp(">>", target, right))
    raise NonInvertibleError(
        f"operator {op!r} is not invertible on its left operand",
        attempted=(expr, target),
    )


def _invert_binop_right(expr: BinOp, var: str, target: Expr) -> List[Expr]:
    op, left = expr.op, expr.left
    if op == "+":
        return invert(expr.right, var, BinOp("-", target, left))
    if op == "-":
        return invert(expr.right, var, BinOp("-", left, target))
    if op == "*":
        return invert(expr.right, var, BinOp("/", target, left))
    if op == "/":
        return invert(expr.right, var, BinOp("/", left, target))
    if op == "^":
        return invert(expr.right, var, BinOp("^", target, left))
    raise NonInvertibleError(
        f"operator {op!r} is not invertible on its right operand",
        attempted=(expr, target),
    )


class _InverseCall(Expr):
    """Deferred inverse of a builtin call.

    ``candidate`` selects which preimage to use when the inverse has
    several (e.g. the two square roots).
    """

    __slots__ = ("call", "index", "target", "candidate")

    def __init__(self, call: Call, index: int, target: Expr, candidate: int):
        self.call = call
        self.index = index
        self.target = target
        self.candidate = candidate

    def evaluate(self, env):
        builtin = _builtins.get(self.call.name)
        inverse = builtin.inverses[self.index]
        other_args = {
            i: arg.evaluate(env)
            for i, arg in enumerate(self.call.args)
            if i != self.index
        }
        candidates = inverse(self.target.evaluate(env), other_args)
        if not candidates:
            raise EvaluationError(
                f"no preimage of {self.call.name} for {self.target}"
            )
        if self.candidate >= len(candidates):
            raise EvaluationError(
                f"preimage #{self.candidate} of {self.call.name} does not exist"
            )
        value = candidates[self.candidate]
        # The recovered value may itself feed a nested expression; solve
        # the remainder recursively on concrete values.
        inner = self.call.args[self.index]
        if isinstance(inner, Var):
            return value
        free = inner.variables()
        if len(free) != 1:
            raise EvaluationError(f"cannot finish inverting {inner}")
        var = next(iter(free))
        solutions = invert(inner, var, Const(value))
        return solutions[0].evaluate(env)

    def variables(self):
        result = self.target.variables()
        for i, arg in enumerate(self.call.args):
            if i != self.index:
                result |= arg.variables()
        return result

    def substitute(self, mapping):
        return _InverseCall(
            self.call.substitute(mapping),
            self.index,
            self.target.substitute(mapping),
            self.candidate,
        )

    def __eq__(self, other):
        if isinstance(other, _InverseCall):
            return (self.call, self.index, self.target, self.candidate) == (
                other.call,
                other.index,
                other.target,
                other.candidate,
            )
        return NotImplemented

    def __hash__(self):
        return hash(("_InverseCall", self.call, self.index, self.target, self.candidate))

    def __str__(self):
        return f"{self.call.name}^-1[{self.index}#{self.candidate}]({self.target})"

    def __repr__(self):
        return (
            f"_InverseCall({self.call!r}, {self.index}, {self.target!r}, "
            f"{self.candidate})"
        )


def _count_candidates(call: Call, index: int, target: Expr) -> int:
    """How many preimage candidates to enumerate for a builtin inverse.

    When the target is concrete we can ask the inverse directly; when
    symbolic we conservatively enumerate two (enough for the builtins
    shipped here, and extra candidates fail cleanly at evaluation).
    """
    builtin = _builtins.get(call.name)
    inverse = builtin.inverses[index]
    try:
        other_args = {
            i: arg.evaluate({}) for i, arg in enumerate(call.args) if i != index
        }
        concrete = inverse(target.evaluate({}), other_args)
        return len(concrete)
    except EvaluationError:
        return 2
