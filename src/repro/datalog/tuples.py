"""Tuples and table schemas — the system-state model of Section 3.1.

System states and events are represented as tuples organized into
tables.  Two distinctions matter to the rest of the system:

- **event vs. state tables** (:class:`TableKind`): event tuples (e.g.
  packets) trigger rule evaluation when they arrive but are not joined
  against later — they model external stimuli.  State tuples (e.g. flow
  entries) persist and participate in joins.

- **mutable vs. immutable base tuples** (Section 3.3, refinement #1):
  DiffProv may only propose changes to mutable base tuples.  An
  operator can change configuration state but not the packets arriving
  at her border router.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable

from ..errors import SchemaError

__all__ = ["TableKind", "TableSchema", "Tuple", "TupleStore"]


class TableKind(enum.Enum):
    STATE = "state"
    EVENT = "event"


class TableSchema:
    """Schema of a table: name, field names, kind, and base mutability."""

    __slots__ = ("name", "fields", "kind", "mutable")

    def __init__(
        self,
        name: str,
        fields: Iterable[str],
        kind: TableKind = TableKind.STATE,
        mutable: bool = True,
    ):
        self.name = name
        self.fields = tuple(fields)
        if len(set(self.fields)) != len(self.fields):
            raise SchemaError(f"duplicate field names in table {name!r}")
        self.kind = kind
        self.mutable = mutable

    @property
    def arity(self) -> int:
        return len(self.fields)

    def field_index(self, field: str) -> int:
        try:
            return self.fields.index(field)
        except ValueError:
            raise SchemaError(f"table {self.name!r} has no field {field!r}") from None

    def __eq__(self, other):
        if isinstance(other, TableSchema):
            return (self.name, self.fields, self.kind, self.mutable) == (
                other.name,
                other.fields,
                other.kind,
                other.mutable,
            )
        return NotImplemented

    def __hash__(self):
        return hash((self.name, self.fields, self.kind, self.mutable))

    def __repr__(self):
        return (
            f"TableSchema({self.name!r}, {list(self.fields)!r}, "
            f"kind={self.kind.value!r}, mutable={self.mutable})"
        )


class Tuple:
    """An immutable fact: a table name plus a vector of values.

    By NDlog convention the first argument is the *location* (the node
    the tuple lives on); the engine enforces this for located programs
    but the class itself is location-agnostic so it can also model
    reported/black-box provenance.
    """

    __slots__ = ("table", "args", "_hash", "_sort_key")

    def __init__(self, table: str, args: Iterable[object]):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "_hash", hash((table, self.args)))
        # Deterministic-order key, computed lazily by state.sort_key and
        # cached here: sorting candidate lists is on the join hot path.
        object.__setattr__(self, "_sort_key", None)

    def __setattr__(self, name, value):
        raise AttributeError("Tuple instances are immutable")

    def __reduce__(self):
        # The immutability guard blocks pickle's default slot restore;
        # rebuild through __init__ instead.
        return (Tuple, (self.table, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def location(self):
        """The location field (first argument), if any."""
        return self.args[0] if self.args else None

    def replace(self, index: int, value) -> "Tuple":
        """A copy of this tuple with field ``index`` replaced."""
        args = list(self.args)
        args[index] = value
        return Tuple(self.table, args)

    def with_args(self, args: Iterable[object]) -> "Tuple":
        return Tuple(self.table, args)

    def matches_schema(self, schema: TableSchema) -> bool:
        return self.table == schema.name and self.arity == schema.arity

    def __eq__(self, other):
        if self is other:
            # Interned tuples (see TupleStore) make this the common case.
            return True
        if isinstance(other, Tuple):
            return (
                self._hash == other._hash
                and self.table == other.table
                and self.args == other.args
            )
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"Tuple({self.table!r}, {list(self.args)!r})"

    def __str__(self):
        rendered = ", ".join(_render(a) for a in self.args)
        return f"{self.table}({rendered})"


class TupleStore:
    """A per-engine interning pool for :class:`Tuple` instances.

    Joins compare and hash the same facts over and over; interning
    collapses structurally equal tuples to one canonical instance so
    equality usually short-circuits on identity and the cached hash and
    sort key are shared.  Interning is purely an optimization: nothing
    may rely on two equal tuples being the same object, because
    unpickling (replay-cache restores, worker processes) recreates
    plain instances — pickle's memo keeps identity consistent *within*
    one payload, which is all the engine needs.
    """

    __slots__ = ("_interned",)

    def __init__(self):
        self._interned: Dict[Tuple, Tuple] = {}

    def intern(self, tup: Tuple) -> Tuple:
        """The canonical instance equal to ``tup`` (registering it if new)."""
        canonical = self._interned.get(tup)
        if canonical is None:
            self._interned[tup] = tup
            return tup
        return canonical

    def make(self, table: str, args: Iterable[object]) -> Tuple:
        return self.intern(Tuple(table, args))

    def __len__(self) -> int:
        return len(self._interned)

    def __repr__(self):
        return f"TupleStore({len(self._interned)} tuples)"


def _render(value) -> str:
    if isinstance(value, bool):
        # Keep tuple text parseable: NDlog booleans are lowercase.
        return "true" if value else "false"
    if isinstance(value, str):
        return repr(value)
    return str(value)


def check_schema(tup: Tuple, schemas: Dict[str, TableSchema]) -> TableSchema:
    """Validate a tuple against the program's schemas; returns the schema."""
    schema = schemas.get(tup.table)
    if schema is None:
        raise SchemaError(f"unknown table {tup.table!r}")
    if tup.arity != schema.arity:
        raise SchemaError(
            f"tuple {tup} has arity {tup.arity}, table {tup.table!r} "
            f"expects {schema.arity}"
        )
    return schema
