"""Per-(rule, trigger) compiled join closures for the columnar backend.

The interpreted join (:meth:`Engine._bindings`) pays real interpretive
overhead per candidate tuple: a fresh environment dict, fresh
assignment/condition work lists, a generic ``_match_atom`` walk that
re-discovers per candidate what is statically known per rule, and a
``_settle`` fixpoint that re-scans those lists.  This module performs
that discovery once per ``(rule, trigger_index)`` pair and emits a
specialized plan:

- **match ops** per body atom — ``bind``/``check_var``/``check_const``/
  ``expr`` opcodes over argument positions, with positions already
  guaranteed by an index probe skipped entirely;
- **settle ops** — the exact, statically-determined sequence of
  assignment and condition evaluations the interpreted fixpoint would
  perform at each join step (licensed by ``_settle_static``: the static
  bound set equals the runtime environment's key set at every step);
- **access closures** — one composite-index probe or full-scan closure
  per atom, bumping the same ``engine.index.hits``/``misses`` counters
  the interpreted path does.

Execution uses one mutable environment with an undo trail instead of a
dict copy per candidate.  Bind order follows the interpreted path's
insertion order exactly, so every yielded binding — and therefore every
derivation, provenance event, and report downstream — is byte-identical
to the interpreted evaluators (locked by
``tests/datalog/test_index_equivalence.py``).

Rules the compiler does not cover return ``None`` from
:func:`compile_rule` and fall back to the interpreted join on the same
store: aggregate rules (fired through the barrier path anyway), rules
with argmax selectors on non-trigger atoms (selector semantics need
per-candidate environments), and rules whose final settle would leave
unbound leftovers (the interpreted path's error semantics are
preserved by not short-circuiting them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as PyTuple

from ..errors import EvaluationError
from .expr import Const, Expr, Var
from .rules import Rule
from .tuples import Tuple

__all__ = ["CompiledRule", "compile_rule"]


class CompiledRule:
    """One (rule, trigger_index) pair compiled to a step plan."""

    __slots__ = (
        "rule_name",
        "body_len",
        "trigger_index",
        "trigger_arity",
        "trigger_match",
        "trigger_settle",
        "steps",
    )

    def __init__(
        self,
        rule_name: str,
        body_len: int,
        trigger_index: int,
        trigger_arity: int,
        trigger_match: tuple,
        trigger_settle: tuple,
        steps: tuple,
    ):
        self.rule_name = rule_name
        self.body_len = body_len
        self.trigger_index = trigger_index
        self.trigger_arity = trigger_arity
        self.trigger_match = trigger_match
        self.trigger_settle = trigger_settle
        # steps: one (atom_index, arity, access, match_ops, settle_ops)
        # per non-trigger body atom, in ascending body order.
        self.steps = steps

    def bindings(self, engine, delta: Tuple):
        """Yield ``(env, body_tuples)`` exactly like ``Engine._bindings``.

        The yielded ``env`` is the plan's live working dict — consumers
        (``_fire_rules``) use it before advancing the generator, and
        ``Derivation`` copies it, so no defensive copy is needed here.
        """
        if delta.arity != self.trigger_arity:
            return
        env: Dict[str, object] = {}
        trail: List[str] = []
        if not _run_match(self.trigger_match, delta.args, env, trail):
            return
        if not _run_settle(self.trigger_settle, env, trail):
            return
        slots: List[Optional[Tuple]] = [None] * self.body_len
        slots[self.trigger_index] = delta
        yield from self._extend(engine, 0, slots, env, trail)

    def _extend(self, engine, depth: int, slots, env, trail):
        if depth == len(self.steps):
            yield env, tuple(slots)
            return
        atom_index, arity, access, match_ops, settle_ops = self.steps[depth]
        mark = len(trail)
        for candidate in access(engine, env):
            if (
                candidate.arity == arity
                and _run_match(match_ops, candidate.args, env, trail)
                and _run_settle(settle_ops, env, trail)
            ):
                slots[atom_index] = candidate
                yield from self._extend(engine, depth + 1, slots, env, trail)
                slots[atom_index] = None
            while len(trail) > mark:
                del env[trail.pop()]


def _run_match(ops, args, env, trail) -> bool:
    """Execute one atom's match opcodes against a candidate's args.

    Operand order in every comparison matches ``_match_atom`` (pattern
    side on the left) so values with asymmetric ``__eq__`` behave
    identically.
    """
    for op in ops:
        kind = op[0]
        if kind == "bind":
            name = op[2]
            env[name] = args[op[1]]
            trail.append(name)
        elif kind == "check_var":
            if env[op[2]] != args[op[1]]:
                return False
        elif kind == "check_const":
            if op[2] != args[op[1]]:
                return False
        elif kind == "expr":
            if op[2].evaluate(env) != args[op[1]]:
                return False
        else:  # "fail": an Expr arg with statically-free variables
            return False
    return True


def _run_settle(ops, env, trail) -> bool:
    """Execute the settle sequence: assignment errors propagate,
    condition errors prune — exactly ``Engine._settle``'s semantics."""
    for op in ops:
        if op[0] == "assign":
            _, assignment, conflict = op
            value = assignment.expr.evaluate(env)
            if conflict:
                if env[assignment.var] != value:
                    return False
            else:
                env[assignment.var] = value
                trail.append(assignment.var)
        else:  # "cond"
            condition = op[1]
            try:
                ok = condition.holds(env)
            except EvaluationError:
                ok = False
            if not ok:
                return False
    return True


# -- compilation --------------------------------------------------------------


def compile_rule(
    engine, rule: Rule, trigger_index: int
) -> Optional[CompiledRule]:
    """Compile one (rule, trigger) firing; ``None`` means fall back.

    Mirrors ``_build_plan``'s static walk — trigger binds, assignments
    settle, remaining atoms visited in ascending order — while also
    emitting the ordered settle sequence and registering the same
    composite indexes on the engine's store.
    """
    if rule.is_aggregate:
        return None
    if any(
        atom.selector is not None
        for index, atom in enumerate(rule.body)
        if index != trigger_index
    ):
        return None

    bound: set = set()
    assigns = list(rule.assignments)
    conds = list(rule.conditions)

    trigger_atom = rule.body[trigger_index]
    trigger_match = _compile_match(trigger_atom, bound, skip=())
    trigger_settle = _emit_settle(bound, assigns, conds)

    steps = []
    for index in range(len(rule.body)):
        if index == trigger_index:
            continue
        atom = rule.body[index]
        positions: List[int] = []
        getters: List[tuple] = []
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                positions.append(position)
                getters.append((None, arg.value))
            elif isinstance(arg, Var) and arg.name in bound:
                positions.append(position)
                getters.append((arg.name, None))
        if positions:
            spec = (tuple(positions), tuple(getters))
            engine.store.register_index(atom.table, spec[0])
        else:
            spec = None
        match_ops = _compile_match(atom, bound, skip=frozenset(positions))
        settle_ops = _emit_settle(bound, assigns, conds)
        steps.append(
            (
                index,
                atom.arity,
                _make_access(atom.table, spec),
                match_ops,
                settle_ops,
            )
        )

    if assigns or conds:
        # The final interpreted settle would raise (unbound leftovers);
        # keep that error path by not compiling the rule.
        return None

    return CompiledRule(
        rule.name,
        len(rule.body),
        trigger_index,
        trigger_atom.arity,
        trigger_match,
        trigger_settle,
        tuple(steps),
    )


def _compile_match(atom, bound: set, skip) -> tuple:
    """Opcodes for matching ``atom`` given the static bound set.

    Positions in ``skip`` are guaranteed equal by the index probe that
    produced the candidate, so their checks are elided.  ``bound`` is
    extended with the atom's newly-bound variables (mutated in place,
    mirroring the planner's walk).
    """
    ops = []
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Var):
            if arg.name in bound:
                if position not in skip:
                    ops.append(("check_var", position, arg.name))
            else:
                ops.append(("bind", position, arg.name))
                bound.add(arg.name)
        elif isinstance(arg, Const):
            if position not in skip:
                ops.append(("check_const", position, arg.value))
        elif isinstance(arg, Expr):
            if arg.variables() <= bound:
                ops.append(("expr", position, arg))
            else:
                # _match_atom fails on any Expr with free variables;
                # boundness is static, so every candidate fails here.
                ops.append(("fail",))
                break
        else:  # pragma: no cover - defensive, mirrors _match_atom
            raise EvaluationError(f"bad body atom argument {arg!r}")
    return tuple(ops)


def _emit_settle(bound: set, assigns: list, conds: list) -> tuple:
    """The exact evaluation sequence ``_settle`` performs at this step.

    Replays the runtime fixpoint over variable *names*: scan
    assignments in list order applying every available one, then
    conditions in list order, repeating while progress is made.
    Consumed entries are removed from the (mutable) work lists, exactly
    like the runtime, so later steps only see what remains.
    """
    ops = []
    progress = True
    while progress:
        progress = False
        for assignment in list(assigns):
            if assignment.expr.variables() <= bound:
                ops.append(("assign", assignment, assignment.var in bound))
                bound.add(assignment.var)
                assigns.remove(assignment)
                progress = True
        for condition in list(conds):
            if condition.variables() <= bound:
                ops.append(("cond", condition))
                conds.remove(condition)
                progress = True
    return tuple(ops)


def _make_access(table: str, spec):
    """Access closure: composite-index probe, or full sorted scan."""
    if spec is None:

        def scan(engine, env):
            telemetry = engine.telemetry
            if telemetry is not None:
                telemetry.inc("engine.index.misses")
            return engine.store.tuples(table)

        return scan

    positions, getters = spec

    def probe(engine, env):
        telemetry = engine.telemetry
        if telemetry is not None:
            telemetry.inc("engine.index.hits")
        return engine.store.tuples_matching_at(
            table,
            positions,
            tuple(
                value if name is None else env[name]
                for name, value in getters
            ),
        )

    return probe
