"""Unified evaluation-mode configuration for the Datalog engine.

The evaluation-mode surface used to be two positional booleans
(``use_indexes=`` and ``lazy=``) threaded through :func:`repro.replay.replay`,
:class:`repro.replay.Execution`, :class:`repro.datalog.Engine` and the
``Session`` facade.  With a third backend (the compiled columnar
evaluator) that encoding stops scaling, so the knobs are unified into
one frozen, validated :class:`EngineConfig`:

- ``backend`` selects the join evaluator:

  - ``"compiled"`` — columnar relation storage
    (:class:`repro.datalog.columnar.ColumnarStore`) plus per-rule
    compiled join closures (:mod:`repro.datalog.compiled`), the
    default and fastest mode;
  - ``"indexed"`` — the interpreted join with composite secondary
    indexes (the pre-compiled fast path);
  - ``"reference"`` — linear scans over sorted tables, the slow
    reference evaluator the equivalence tests compare against.

- ``provenance`` selects the recorder's graph mode:

  - ``"annotated"`` — lazy arena recording plus per-tuple
    min-height/first-derivation annotations from which minimal proof
    trees are reconstructed without materializing the graph (default);
  - ``"lazy"`` — lazy arena recording only;
  - ``"eager"`` — classic eager seven-vertex graph construction.

Every combination produces byte-identical tables, graphs, trees and
reports — backends change cost, never results (see
``tests/datalog/test_index_equivalence.py``).

The old boolean knobs remain accepted everywhere as deprecated shims;
:meth:`EngineConfig.resolve` performs the mapping and emits the
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping, Optional, Union

__all__ = ["EngineConfig", "BACKENDS", "PROVENANCE_MODES"]

BACKENDS = ("compiled", "indexed", "reference")
PROVENANCE_MODES = ("annotated", "lazy", "eager")

# The provenance mode each backend pairs with when only a backend name
# is given (e.g. ``--engine reference`` on the CLI): the reference
# evaluator keeps the reference recorder, the fast backends keep their
# matching fast recorders.
_NATURAL_PROVENANCE = {
    "compiled": "annotated",
    "indexed": "lazy",
    "reference": "eager",
}

_DEPRECATION = (
    "the use_indexes=/lazy= booleans are deprecated; pass "
    "engine=EngineConfig(backend=..., provenance=...) "
    "(or a backend name) instead"
)


@dataclass(frozen=True)
class EngineConfig:
    """Validated, immutable selection of evaluation backend + provenance."""

    backend: str = "compiled"
    provenance: str = "annotated"

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        if self.provenance not in PROVENANCE_MODES:
            raise ValueError(
                f"unknown provenance mode {self.provenance!r}; "
                f"expected one of {', '.join(PROVENANCE_MODES)}"
            )

    # -- legacy bridge --------------------------------------------------------

    @property
    def use_indexes(self) -> bool:
        """Legacy view: everything but the reference backend indexes."""
        return self.backend != "reference"

    @property
    def lazy(self) -> bool:
        """Legacy view: everything but eager records lazily."""
        return self.provenance != "eager"

    @classmethod
    def from_legacy(
        cls, use_indexes: bool = True, lazy: bool = True
    ) -> "EngineConfig":
        """Map the old boolean knobs onto the modes they used to mean."""
        return cls(
            backend="indexed" if use_indexes else "reference",
            provenance="lazy" if lazy else "eager",
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def coerce(
        cls, value: Union[None, "EngineConfig", str, Mapping]
    ) -> "EngineConfig":
        """Accept the shapes user-facing layers see.

        ``None`` means the default, a backend name selects that backend
        with its natural provenance mode, and a mapping (the service
        protocol's ``engine`` option block) is validated field by
        field.  Raises :class:`ValueError` on anything else.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if value not in BACKENDS:
                raise ValueError(
                    f"unknown engine backend {value!r}; "
                    f"expected one of {', '.join(BACKENDS)}"
                )
            return cls(backend=value, provenance=_NATURAL_PROVENANCE[value])
        if isinstance(value, Mapping):
            unknown = set(value) - {"backend", "provenance"}
            if unknown:
                raise ValueError(
                    f"unknown engine option field(s) "
                    f"{', '.join(sorted(map(repr, unknown)))}; "
                    f"expected backend/provenance"
                )
            backend = value.get("backend", cls.backend)
            if not isinstance(backend, str) or backend not in BACKENDS:
                raise ValueError(
                    f"unknown engine backend {backend!r}; "
                    f"expected one of {', '.join(BACKENDS)}"
                )
            provenance = value.get(
                "provenance", _NATURAL_PROVENANCE[backend]
            )
            if (
                not isinstance(provenance, str)
                or provenance not in PROVENANCE_MODES
            ):
                raise ValueError(
                    f"unknown provenance mode {provenance!r}; "
                    f"expected one of {', '.join(PROVENANCE_MODES)}"
                )
            return cls(backend=backend, provenance=provenance)
        raise ValueError(
            f"cannot interpret {value!r} as an EngineConfig; pass an "
            f"EngineConfig, a backend name, or a backend/provenance mapping"
        )

    @classmethod
    def resolve(
        cls,
        engine: Union[None, "EngineConfig", str, Mapping] = None,
        use_indexes: Optional[bool] = None,
        lazy: Optional[bool] = None,
        stacklevel: int = 3,
    ) -> "EngineConfig":
        """One resolution path for every layer that accepts both APIs.

        The deprecated booleans win over ``engine`` only in the sense
        that passing either of them is an error when ``engine`` is also
        given — mixing the two APIs has no sensible meaning.
        """
        if use_indexes is not None or lazy is not None:
            if engine is not None:
                raise ValueError(
                    "pass either engine= or the deprecated "
                    "use_indexes=/lazy= booleans, not both"
                )
            warnings.warn(_DEPRECATION, DeprecationWarning,
                          stacklevel=stacklevel)
            return cls.from_legacy(
                use_indexes=True if use_indexes is None else use_indexes,
                lazy=True if lazy is None else lazy,
            )
        return cls.coerce(engine)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """The wire form used by the service protocol's option block."""
        return {"backend": self.backend, "provenance": self.provenance}

    def describe(self) -> str:
        return f"{self.backend}/{self.provenance}"
