"""Parser for the textual NDlog dialect used throughout the repro.

The grammar (informally)::

    program    := (decl | rule)*
    decl       := "table" name "(" Field, ... ")" ["event"|"state"]
                  ["mutable"|"immutable"] "."
    rule       := RuleName headatom ":-" bodyitem ("," bodyitem)* "."
    headatom   := name "(" headterm, ... ")"
    headterm   := expr | agg "<" expr-or-* ">"
    bodyitem   := atom [selector] | Var ":=" expr | condition
    atom       := name "(" ["@"]term, ... ")"
    selector   := "argmax" "<" expr, ... ">"
    condition  := expr cmpop expr | boolean-builtin-call

Variables start with an uppercase letter; table and function names with
a lowercase letter.  Literals include integers, single/double-quoted
strings, ``true``/``false``, dotted IPv4 addresses (``1.2.3.4``), and
prefixes (``1.2.3.0/24``).  Comments run from ``//`` to end of line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..addresses import IPv4Address, Prefix
from ..errors import ParseError
from .expr import BinOp, Call, Const, Expr, Var
from .rules import AggSpec, Assignment, Atom, Condition, Program, Rule, Selector
from .tuples import TableKind, TableSchema, Tuple

__all__ = ["parse_program", "parse_rule", "parse_tuple", "parse_expr"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<prefix>\d+\.\d+\.\d+\.\d+/\d+)
  | (?P<ip>\d+\.\d+\.\d+\.\d+)
  | (?P<number>-?\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<name>[$a-zA-Z_][a-zA-Z0-9_']*)
  | (?P<punct>:=|:-|==|!=|<=|>=|<<|>>|[()@,.<>*/%+\-&|^])
    """,
    re.VERBOSE,
)

_AGG_KINDS = set(AggSpec.KINDS)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"_Token({self.kind!r}, {self.text!r}, line={self.line})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line)
        pos = match.end()
        kind = match.lastgroup
        value = match.group()
        line += value.count("\n")
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, value, line))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token], tables: Optional[Dict[str, TableSchema]] = None):
        self.tokens = tokens
        self.pos = 0
        self.tables: Dict[str, TableSchema] = dict(tables or {})

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, got {token.text!r}", token.line)
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token.text == text

    # -- program -----------------------------------------------------------

    def parse_program(self) -> Program:
        rules: List[Rule] = []
        while self.peek() is not None:
            if self.at("table"):
                schema = self.parse_decl()
                self.tables[schema.name] = schema
            else:
                rules.append(self.parse_rule())
        return Program(self.tables, rules)

    def parse_decl(self) -> TableSchema:
        self.expect("table")
        name_token = self.next()
        name = name_token.text
        self.expect("(")
        fields: List[str] = []
        while not self.at(")"):
            fields.append(self.next().text)
            if self.at(","):
                self.next()
        self.expect(")")
        kind = TableKind.STATE
        mutable = True
        while not self.at("."):
            modifier = self.next()
            if modifier.text == "event":
                kind = TableKind.EVENT
            elif modifier.text == "state":
                kind = TableKind.STATE
            elif modifier.text == "mutable":
                mutable = True
            elif modifier.text == "immutable":
                mutable = False
            else:
                raise ParseError(
                    f"unknown table modifier {modifier.text!r}", modifier.line
                )
        self.expect(".")
        return TableSchema(name, fields, kind=kind, mutable=mutable)

    # -- rules ---------------------------------------------------------------

    def parse_rule(self) -> Rule:
        name_token = self.next()
        if name_token.kind != "name":
            raise ParseError(f"expected rule name, got {name_token.text!r}", name_token.line)
        head = self.parse_atom(is_head=True)
        self.expect(":-")
        body: List[Atom] = []
        assignments: List[Assignment] = []
        conditions: List[Condition] = []
        while True:
            self.parse_body_item(body, assignments, conditions)
            if self.at(","):
                self.next()
                continue
            break
        self.expect(".")
        return Rule(name_token.text, head, body, assignments, conditions)

    def parse_body_item(self, body, assignments, conditions):
        token = self.peek()
        follower = self.peek(1)
        if token is None:
            raise ParseError("unexpected end of input in rule body")
        if token.kind == "name" and follower is not None and follower.text == ":=":
            # Assignment to a variable.
            if not _is_variable(token.text):
                raise ParseError(
                    f"assignment target {token.text!r} must be a variable",
                    token.line,
                )
            self.next()
            self.next()
            assignments.append(Assignment(token.text, self.parse_expr()))
            return
        if (
            token.kind == "name"
            and not _is_variable(token.text)
            and follower is not None
            and follower.text == "("
            and token.text in self.tables
        ):
            atom = self.parse_atom(is_head=False)
            if self.at("argmax"):
                self.next()
                self.expect("<")
                keys = [self.parse_expr()]
                while self.at(","):
                    self.next()
                    keys.append(self.parse_expr())
                self.expect(">")
                atom.selector = Selector(keys)
            body.append(atom)
            return
        # Otherwise: a condition (comparison or boolean call).
        left = self.parse_expr()
        token = self.peek()
        if token is not None and token.text in ("==", "!=", "<", "<=", ">", ">="):
            op = self.next().text
            right = self.parse_expr()
            conditions.append(Condition(op, left, right))
        else:
            conditions.append(Condition("call", left))

    def parse_atom(self, is_head: bool) -> Atom:
        name_token = self.next()
        if name_token.kind != "name" or _is_variable(name_token.text):
            raise ParseError(
                f"expected table name, got {name_token.text!r}", name_token.line
            )
        self.expect("(")
        args: List[object] = []
        location: Optional[str] = None
        index = 0
        while not self.at(")"):
            if self.at("@"):
                self.next()
                if index != 0:
                    raise ParseError(
                        "location specifier @ only allowed on the first argument",
                        name_token.line,
                    )
                term = self.parse_expr()
                if not isinstance(term, (Var, Const)):
                    raise ParseError(
                        "location must be a variable or constant", name_token.line
                    )
                location = term.name if isinstance(term, Var) else str(term.value)
                args.append(term)
            elif is_head and self._at_aggregate():
                args.append(self.parse_aggregate())
            else:
                args.append(self.parse_expr())
            index += 1
            if self.at(","):
                self.next()
        self.expect(")")
        return Atom(name_token.text, args, location=location)

    def _at_aggregate(self) -> bool:
        token = self.peek()
        follower = self.peek(1)
        return (
            token is not None
            and token.kind == "name"
            and token.text in _AGG_KINDS
            and follower is not None
            and follower.text == "<"
        )

    def parse_aggregate(self) -> AggSpec:
        kind = self.next().text
        self.expect("<")
        if self.at("*"):
            self.next()
            expr: Optional[Expr] = None
        else:
            expr = self.parse_expr()
        self.expect(">")
        return AggSpec(kind, expr)

    # -- expressions -------------------------------------------------------

    _PRECEDENCE = [
        ("|",),
        ("^",),
        ("&",),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expr(self, level: int = 0) -> Expr:
        if level == len(self._PRECEDENCE):
            return self.parse_primary()
        ops = self._PRECEDENCE[level]
        left = self.parse_expr(level + 1)
        while True:
            token = self.peek()
            if token is None or token.text not in ops:
                return left
            op = self.next().text
            right = self.parse_expr(level + 1)
            left = BinOp(op, left, right)

    def parse_primary(self) -> Expr:
        token = self.next()
        if token.text == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.text == "-":
            inner = self.parse_primary()
            if isinstance(inner, Const) and isinstance(inner.value, int):
                return Const(-inner.value)
            return BinOp("-", Const(0), inner)
        if token.kind == "number":
            return Const(int(token.text))
        if token.kind == "string":
            return Const(token.text[1:-1])
        if token.kind == "ip":
            return Const(IPv4Address(token.text))
        if token.kind == "prefix":
            return Const(Prefix(token.text))
        if token.kind == "name":
            if token.text == "true":
                return Const(True)
            if token.text == "false":
                return Const(False)
            if self.at("(") and not _is_variable(token.text):
                self.next()
                args: List[Expr] = []
                while not self.at(")"):
                    args.append(self.parse_expr())
                    if self.at(","):
                        self.next()
                self.expect(")")
                return Call(token.text, args)
            if _is_variable(token.text):
                return Var(token.text)
            # A bare lowercase name is treated as a symbolic constant.
            return Const(token.text)
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def _is_variable(name: str) -> bool:
    # ``$i`` names are the seed-field variables of taint formulas
    # (Section 4.3); they parse as ordinary variables.
    return bool(name) and (name[0].isupper() or name[0] in "_$")


def parse_program(text: str) -> Program:
    """Parse a full NDlog program (table declarations + rules)."""
    return _Parser(_tokenize(text)).parse_program()


def parse_rule(text: str, tables: Dict[str, TableSchema]) -> Rule:
    """Parse a single rule against existing table declarations."""
    parser = _Parser(_tokenize(text), tables)
    rule = parser.parse_rule()
    if parser.peek() is not None:
        raise ParseError(f"trailing input after rule: {parser.peek().text!r}")
    return rule


def parse_expr(text: str) -> Expr:
    """Parse a standalone expression."""
    parser = _Parser(_tokenize(text))
    expr = parser.parse_expr()
    if parser.peek() is not None:
        raise ParseError(f"trailing input after expression: {parser.peek().text!r}")
    return expr


def parse_tuple(text: str) -> Tuple:
    """Parse a ground tuple like ``flowEntry('s1', 5, 1.2.3.0/24, 8)``."""
    parser = _Parser(_tokenize(text))
    name_token = parser.next()
    if name_token.kind != "name" or _is_variable(name_token.text):
        raise ParseError(f"expected table name, got {name_token.text!r}", name_token.line)
    parser.expect("(")
    args: List[object] = []
    while not parser.at(")"):
        if parser.at("@"):
            parser.next()
        expr = parser.parse_expr()
        value = expr.evaluate({})
        args.append(value)
        if parser.at(","):
            parser.next()
    parser.expect(")")
    if parser.peek() is not None:
        raise ParseError(f"trailing input after tuple: {parser.peek().text!r}")
    return Tuple(name_token.text, args)
