"""Registry of builtin functions usable in NDlog rule bodies.

Each builtin has a forward implementation and, optionally, *inverses*:
given the function's result and the remaining arguments, an inverse
reconstructs candidate values for one argument position.  Inverses are
what let DiffProv propagate taints downward through rule computations
(Section 4.5 of the paper); functions without a registered inverse make
DiffProv fail with the "attempted change" clue (Section 4.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..addresses import IPv4Address, Prefix
from ..errors import EvaluationError

__all__ = ["Builtin", "register", "get", "call", "has_inverse", "BUILTINS"]


@dataclass
class Builtin:
    """A registered builtin function.

    ``inverses`` maps an argument index to a callable
    ``inverse(result, other_args) -> list of candidate values`` where
    ``other_args`` is a dict of the *known* argument values by index.
    """

    name: str
    fn: Callable
    arity: int
    inverses: Dict[int, Callable] = field(default_factory=dict)
    doc: str = ""


BUILTINS: Dict[str, Builtin] = {}


def register(
    name: str,
    fn: Callable,
    arity: int,
    inverses: Optional[Dict[int, Callable]] = None,
    doc: str = "",
) -> Builtin:
    """Register (or replace) a builtin function."""
    builtin = Builtin(name, fn, arity, dict(inverses or {}), doc)
    BUILTINS[name] = builtin
    return builtin


def get(name: str) -> Builtin:
    try:
        return BUILTINS[name]
    except KeyError:
        raise EvaluationError(f"unknown builtin function {name!r}") from None


def call(name: str, args):
    builtin = get(name)
    if builtin.arity >= 0 and len(args) != builtin.arity:
        raise EvaluationError(
            f"builtin {name!r} expects {builtin.arity} args, got {len(args)}"
        )
    return builtin.fn(*args)


def has_inverse(name: str, index: int) -> bool:
    builtin = BUILTINS.get(name)
    return builtin is not None and index in builtin.inverses


# ---------------------------------------------------------------------------
# Standard library of builtins.
# ---------------------------------------------------------------------------


def _fnv1a64(data: bytes) -> int:
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def stable_hash(value) -> int:
    """A deterministic, process-independent hash (FNV-1a over repr)."""
    if isinstance(value, int):
        data = value.to_bytes(16, "little", signed=True)
    else:
        data = str(value).encode("utf-8")
    return _fnv1a64(data)


def _hash_mod(value, modulus):
    if modulus <= 0:
        raise EvaluationError(f"hash_mod with non-positive modulus {modulus}")
    return stable_hash(value) % modulus


def _checksum(value):
    return f"{_fnv1a64(str(value).encode('utf-8')):016x}"


def _as_ip(value) -> IPv4Address:
    if isinstance(value, IPv4Address):
        return value
    return IPv4Address(value)


def _as_prefix(value) -> Prefix:
    if isinstance(value, Prefix):
        return value
    return Prefix(value)


def _ip_in_prefix(addr, pfx) -> bool:
    return _as_prefix(pfx).contains(_as_ip(addr))


def _ip_last_octet(addr) -> int:
    return _as_ip(addr).last_octet()


def _ip_octet(addr, index) -> int:
    return _as_ip(addr).octets()[index]


def _prefix_len(pfx) -> int:
    return _as_prefix(pfx).length


def _make_prefix(addr, length) -> Prefix:
    return Prefix(_as_ip(addr), length)


def _make_prefix_inverse_addr(result, other_args):
    # make_prefix(addr, len) == result  =>  addr could be the network
    # address of the prefix (the canonical preimage).
    return [_as_prefix(result).network]


def _sq(x):
    return x * x


def _sq_inverse(result, other_args):
    # Multiple preimages: DiffProv tries all of them (Section 4.5).
    if isinstance(result, int) and result >= 0:
        root = int(result**0.5)
        while root * root < result:
            root += 1
        if root * root != result:
            return []
        return [root, -root] if root else [0]
    return []


def _concat(a, b):
    return f"{a}{b}"


def _identity(x):
    return x


register("hash_mod", _hash_mod, 2, doc="Deterministic hash of arg0 modulo arg1.")
register("checksum", _checksum, 1, doc="FNV-1a64 checksum as hex string.")
register(
    "ip_in_prefix",
    _ip_in_prefix,
    2,
    doc="True iff the address (arg0) is inside the prefix (arg1).",
)
register("ip_last_octet", _ip_last_octet, 1, doc="Last octet of an IPv4 address.")
register("ip_octet", _ip_octet, 2, doc="The arg1-th octet of an IPv4 address.")
register("prefix_len", _prefix_len, 1, doc="Mask length of a prefix.")
register(
    "make_prefix",
    _make_prefix,
    2,
    inverses={0: _make_prefix_inverse_addr},
    doc="Build a prefix from an address and a mask length.",
)
register(
    "sq",
    _sq,
    1,
    inverses={0: _sq_inverse},
    doc="Square; its inverse demonstrates multi-preimage handling.",
)
register(
    "concat",
    _concat,
    2,
    doc="String concatenation (not invertible).",
)
register(
    "identity",
    _identity,
    1,
    inverses={0: lambda result, other: [result]},
    doc="Identity function.",
)


def _ecmp_choice(seed, flow_key, n):
    """Which of n equal-cost paths a flow takes, given the device seed.

    ECMP is deterministic *given the seed* (Section 4.9): replay-based
    debugging works as long as the seed is part of the recorded state.
    """
    if n <= 0:
        raise EvaluationError(f"ecmp_choice with non-positive fan-out {n}")
    return stable_hash((str(seed), str(flow_key))) % n


register(
    "ecmp_choice",
    _ecmp_choice,
    3,
    doc="Deterministic ECMP path choice from (seed, flow key, fan-out).",
)
