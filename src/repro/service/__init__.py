"""Diagnosis-as-a-service: the fault-tolerant multi-tenant server.

Everything below :class:`repro.api.Session` diagnoses one scenario for
one caller.  This package puts a server in front of it
(docs/service.md):

- :mod:`repro.service.protocol` — newline-delimited-JSON requests and
  typed responses (``ok`` / ``overloaded`` / ``error`` / ``pong``);
- :mod:`repro.service.quotas` — per-tenant token-bucket rates and
  concurrency caps;
- :mod:`repro.service.admission` — the bounded priority queue that
  sheds excess load with honest ``retry_after_s`` hints;
- :mod:`repro.service.fleet` — persistent worker processes with
  health checks, bounded restarts, and per-shard circuit breakers;
- :mod:`repro.service.server` — :class:`DiagnosisServer`, the asyncio
  loop tying them together: request-level crash resume through the
  write-ahead journal, deadline degradation to partial reports, warm
  per-worker replay caches, graceful drain on SIGTERM;
- :mod:`repro.service.client` — in-process and socket clients.

The server preserves the determinism contract end to end: a request
that survives a worker SIGKILL resumes on another process and returns
a ``canonical_json()`` byte-identical to an undisturbed run
(tests/service/test_chaos.py).
"""

from .admission import AdmissionController, Ticket
from .client import ServiceClient, SocketServiceClient
from .fleet import CircuitBreaker, WorkerDied, WorkerFleet, WorkerShard
from .protocol import PROTOCOL_VERSION, Request, parse_request
from .quotas import QuotaRegistry, TenantQuota, TokenBucket
from .server import DiagnosisServer

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DiagnosisServer",
    "PROTOCOL_VERSION",
    "QuotaRegistry",
    "Request",
    "ServiceClient",
    "SocketServiceClient",
    "TenantQuota",
    "Ticket",
    "TokenBucket",
    "WorkerDied",
    "WorkerFleet",
    "WorkerShard",
    "parse_request",
]
