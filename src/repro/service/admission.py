"""Admission control: the bounded priority queue in front of the fleet.

Every request passes through :meth:`AdmissionController.admit` before
any diagnosis work happens.  Admission can fail three ways — global
queue full, tenant quota, server draining — and each failure is a
typed :class:`~repro.errors.Overloaded` with a ``retry_after_s`` hint;
an admitted request becomes a :class:`Ticket` whose future the caller
awaits.  Dispatchers (one per worker shard) pull tickets in
``(priority, admission order)`` order.

The retry-after hint for a full queue is an honest estimate, not a
constant: queue depth times the EWMA of recent service times divided
by the shard count — i.e. "when will the backlog likely have moved by
one slot per shard".  Quota hints come from the token bucket's refill
rate (:mod:`repro.service.quotas`).
"""

from __future__ import annotations

import asyncio
import heapq
import time as _time
from typing import Callable, Dict, Optional

from ..errors import Overloaded
from .protocol import Request
from .quotas import QuotaRegistry

__all__ = ["AdmissionController", "Ticket"]

# Starting estimate for one request's service time, refined by EWMA as
# real requests complete.
_INITIAL_SERVICE_TIME_S = 1.0
_EWMA_ALPHA = 0.3


class Ticket:
    """One admitted request waiting for (or receiving) service."""

    __slots__ = (
        "request", "seq", "admitted_at", "started_at", "future",
        "attempts", "journal_path", "trace", "span",
    )

    def __init__(self, request: Request, seq: int, admitted_at: float,
                 future: "asyncio.Future"):
        self.request = request
        self.seq = seq
        self.admitted_at = admitted_at
        self.started_at: Optional[float] = None
        self.future = future
        # Worker-death retries consumed so far (fleet bookkeeping).
        self.attempts = 0
        # The per-request journal assigned at dispatch, if journaling.
        self.journal_path: Optional[str] = None
        # Cross-process trace context + the server's open request span
        # (set by the server when telemetry/ops are enabled).
        self.trace = None
        self.span = None

    def order_key(self):
        return (self.request.priority, self.seq)

    def remaining_deadline(self, now: float) -> Optional[float]:
        """What is left of the request's budget after queueing.

        Measured from admission, so time spent waiting in the queue
        spends the budget — an overloaded server hands the worker a
        *smaller* deadline rather than stretching the client's wait.
        """
        if self.request.deadline_s is None:
            return None
        return self.request.deadline_s - (now - self.admitted_at)

    def __repr__(self):
        return (
            f"Ticket(#{self.seq} {self.request.id!r} "
            f"prio={self.request.priority})"
        )


class AdmissionController:
    """Bounded, tenant-fair, priority-ordered admission queue."""

    def __init__(
        self,
        max_queue: int = 64,
        quotas: Optional[QuotaRegistry] = None,
        shards: int = 1,
        telemetry=None,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self.quotas = quotas if quotas is not None else QuotaRegistry()
        self.shards = max(1, int(shards))
        self.telemetry = telemetry
        self.clock = clock
        self.draining = False
        self._heap = []  # (priority, seq, ticket)
        self._seq = 0
        self._available = asyncio.Event()
        # Admitted-but-unfinished (queued + in service), the number the
        # queue bound applies to; the queue alone would let in-flight
        # work overcommit the bound by one per shard.
        self.in_flight = 0
        self.admitted_total = 0
        self.shed: Dict[str, int] = {
            "queue-full": 0, "quota": 0, "concurrency": 0, "draining": 0,
        }
        self._service_time_ewma = _INITIAL_SERVICE_TIME_S

    # -- admission -----------------------------------------------------------

    def admit(self, request: Request) -> Ticket:
        """Admit or shed one request (synchronous, loop thread only)."""
        if self.draining:
            self._count_shed("draining")
            raise Overloaded(
                "server is draining and admits no new requests",
                reason="draining",
                retry_after_s=self._backlog_eta(),
            )
        if self.in_flight >= self.max_queue:
            self._count_shed("queue-full")
            raise Overloaded(
                f"admission queue is full ({self.in_flight} in flight, "
                f"bound {self.max_queue})",
                reason="queue-full",
                retry_after_s=self._backlog_eta(),
            )
        try:
            self.quotas.acquire(
                request.tenant, service_time_hint=self._service_time_ewma
            )
        except Overloaded as exc:
            self._count_shed(exc.reason)
            raise
        ticket = Ticket(
            request, self._seq, self.clock(),
            asyncio.get_running_loop().create_future(),
        )
        self._seq += 1
        self.in_flight += 1
        self.admitted_total += 1
        heapq.heappush(self._heap, (ticket.order_key(), ticket))
        self._available.set()
        if self.telemetry is not None:
            self.telemetry.inc("service.admitted")
            self.telemetry.set_max("service.queue.depth_max", len(self._heap))
            self.telemetry.set_gauge("service.queue.depth", len(self._heap))
        return ticket

    def _count_shed(self, reason: str) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        if self.telemetry is not None:
            self.telemetry.inc(f"service.shed.{reason}")

    def _backlog_eta(self) -> float:
        """Estimated seconds until the backlog frees one slot per shard."""
        backlog = max(1, self.in_flight)
        eta = backlog * self._service_time_ewma / self.shards
        return min(max(eta, 0.05), 300.0)

    # -- dispatch ------------------------------------------------------------

    async def next(self) -> Optional[Ticket]:
        """The next ticket in (priority, seq) order; None when closed.

        Coroutine-safe: dispatchers race on the availability event and
        the loser goes back to waiting.
        """
        while True:
            if self._heap:
                _, ticket = heapq.heappop(self._heap)
                if not self._heap:
                    self._available.clear()
                if self.telemetry is not None:
                    self.telemetry.set_gauge(
                        "service.queue.depth", len(self._heap)
                    )
                ticket.started_at = self.clock()
                if self.telemetry is not None:
                    self.telemetry.observe(
                        "service.queue.wait_s",
                        round(ticket.started_at - ticket.admitted_at, 6),
                    )
                return ticket
            if self.draining:
                return None
            await self._available.wait()

    def requeue(self, ticket: Ticket) -> None:
        """Put a dispatched ticket back (shard handoff after a crash)."""
        heapq.heappush(self._heap, (ticket.order_key(), ticket))
        self._available.set()

    def mark_done(self, ticket: Ticket) -> None:
        """Release quota + record the observed service time."""
        self.in_flight -= 1
        self.quotas.release(ticket.request.tenant)
        now = self.clock()
        if ticket.started_at is not None:
            elapsed = max(0.0, now - ticket.started_at)
            self._service_time_ewma = (
                (1 - _EWMA_ALPHA) * self._service_time_ewma
                + _EWMA_ALPHA * elapsed
            )
            if self.telemetry is not None:
                self.telemetry.observe(
                    "service.request.service_s", round(elapsed, 6)
                )
        if self.telemetry is not None:
            self.telemetry.observe(
                "service.request.latency_s",
                round(now - ticket.admitted_at, 6),
            )

    # -- drain ---------------------------------------------------------------

    def start_draining(self) -> None:
        """Stop admitting; wake dispatchers so idle ones can exit."""
        self.draining = True
        self._available.set()

    @property
    def queued(self) -> int:
        return len(self._heap)

    def stats(self) -> Dict[str, object]:
        return {
            "queued": len(self._heap),
            "in_flight": self.in_flight,
            "admitted_total": self.admitted_total,
            "shed": dict(self.shed),
            "draining": self.draining,
            "service_time_ewma_s": round(self._service_time_ewma, 4),
            "tenants": self.quotas.stats(),
        }

    def __repr__(self):
        return (
            f"AdmissionController(queued={len(self._heap)}, "
            f"in_flight={self.in_flight}, max={self.max_queue}, "
            f"draining={self.draining})"
        )
