"""The diagnosis service wire protocol (docs/service.md).

Newline-delimited JSON, one object per line, in both directions.  A
request names a built-in scenario plus tuning knobs; a response echoes
the request ``id`` and carries one of four statuses:

``ok``
    The diagnosis ran.  ``report`` holds the summary fields and
    ``canonical`` the byte-exact :meth:`DiagnosisReport.canonical_json`
    string (the determinism contract: identical across workers, cache
    states, and crash-resume).
``overloaded``
    The request was *refused at admission* — queue full, quota
    exhausted, tenant concurrency cap, or a draining server.  Carries
    ``reason`` and a ``retry_after_s`` hint.  No diagnosis work ran.
``error``
    The request was admitted but could not produce a report (unknown
    scenario, worker fleet exhausted, drain timeout).  ``category``
    is machine-readable.
``pong``
    Liveness answer to a ``ping`` request.

Only JSON-representable requests exist on the wire, so the service is
scenario-mode only; explicit program/execution sessions stay a library
feature (:class:`repro.api.Session`).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..datalog.config import EngineConfig
from ..errors import Overloaded, ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "Request",
    "parse_request",
    "encode",
    "decode",
    "response_ok",
    "response_error",
    "response_overloaded",
    "response_pong",
]

PROTOCOL_VERSION = 1

# Request kinds the server dispatches to the worker fleet, plus the
# inline-answered control kinds (``metrics`` returns the Prometheus
# exposition text, ``flight`` the flight-recorder ring buffer).
WORK_KINDS = ("diagnose", "autoref")
CONTROL_KINDS = ("ping", "stats", "metrics", "flight")

# Keys an upstream trace context may carry (repro.observability.ops
# TraceContext.to_dict); anything else is a protocol error.
_TRACE_KEYS = frozenset({"trace_id", "span_id", "parent_span_id", "attempt"})

# Tuning knobs a request may forward to the worker's Session.  A
# whitelist, not a passthrough: option typos fail loudly at admission
# and a client can never reach knobs that break determinism or
# isolation (journal paths, worker counts).
_ALLOWED_OPTIONS = frozenset(
    {"max_rounds", "minimize", "taint", "limit", "faults", "telemetry",
     "engine", "repair"}
)

_MAX_LINE_BYTES = 64 * 1024


class Request:
    """One validated service request.

    ``priority`` orders the admission queue (0 = most urgent, default
    5); ``deadline_s`` is the end-to-end budget measured from
    *admission* — queue wait spends it, and what remains is what the
    worker's diagnosis gets (docs/service.md).
    """

    __slots__ = (
        "id", "kind", "scenario", "tenant", "priority", "deadline_s",
        "options", "test_hold", "trace",
    )

    def __init__(
        self,
        id: str,
        kind: str,
        scenario: Optional[str] = None,
        tenant: str = "default",
        priority: int = 5,
        deadline_s: Optional[float] = None,
        options: Optional[Dict] = None,
        test_hold: Optional[Dict] = None,
        trace: Optional[Dict] = None,
    ):
        self.id = id
        self.kind = kind
        self.scenario = scenario
        self.tenant = tenant
        self.priority = priority
        self.deadline_s = deadline_s
        self.options = dict(options or {})
        self.test_hold = test_hold
        # Upstream trace context (trace_id + span lineage), if the
        # client is itself part of a trace; the server roots one
        # otherwise.
        self.trace = trace

    def job(self) -> Dict[str, object]:
        """The worker-fleet payload (plain JSON types only)."""
        job: Dict[str, object] = {
            "op": self.kind,
            "scenario": self.scenario,
            "options": dict(self.options),
        }
        if self.test_hold is not None:
            job["test_hold"] = dict(self.test_hold)
        return job

    def __repr__(self):
        return (
            f"Request({self.id!r}, {self.kind}, scenario={self.scenario}, "
            f"tenant={self.tenant!r}, priority={self.priority})"
        )


def parse_request(payload) -> Request:
    """Validate one request object (a dict, or a raw NDJSON line)."""
    if isinstance(payload, (str, bytes)):
        payload = decode(payload)
    if not isinstance(payload, dict):
        raise ProtocolError(f"request must be a JSON object, got "
                            f"{type(payload).__name__}")
    unknown = set(payload) - {
        "id", "kind", "scenario", "tenant", "priority", "deadline_s",
        "options", "test_hold", "trace", "v",
    }
    if unknown:
        raise ProtocolError(f"unknown request field(s): "
                            f"{', '.join(sorted(unknown))}")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} unsupported "
            f"(this server speaks {PROTOCOL_VERSION})"
        )
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request needs a non-empty string 'id'")
    kind = payload.get("kind")
    if kind not in WORK_KINDS + CONTROL_KINDS:
        raise ProtocolError(
            f"unknown kind {kind!r} (choose from "
            f"{', '.join(WORK_KINDS + CONTROL_KINDS)})"
        )
    scenario = payload.get("scenario")
    if kind in WORK_KINDS:
        if not isinstance(scenario, str) or not scenario:
            raise ProtocolError(f"kind {kind!r} needs a 'scenario' name")
        scenario = scenario.upper()
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("'tenant' must be a non-empty string")
    priority = payload.get("priority", 5)
    if not isinstance(priority, int) or isinstance(priority, bool) \
            or not 0 <= priority <= 9:
        raise ProtocolError("'priority' must be an integer in 0..9 "
                            "(0 = most urgent)")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) \
                or isinstance(deadline_s, bool) or deadline_s <= 0:
            raise ProtocolError("'deadline_s' must be a positive number")
        deadline_s = float(deadline_s)
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        raise ProtocolError("'options' must be an object")
    bad = set(options) - _ALLOWED_OPTIONS
    if bad:
        raise ProtocolError(
            f"unsupported option(s): {', '.join(sorted(bad))} "
            f"(allowed: {', '.join(sorted(_ALLOWED_OPTIONS))})"
        )
    engine = options.get("engine")
    if engine is not None:
        # A backend name string or a {backend, provenance} object; an
        # unknown backend is a typed protocol error at admission, never
        # a worker crash.
        if not isinstance(engine, (str, dict)):
            raise ProtocolError(
                "'engine' must be a backend name or an object with "
                "backend/provenance fields"
            )
        try:
            options = dict(options)
            options["engine"] = EngineConfig.coerce(engine).to_dict()
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    test_hold = payload.get("test_hold")
    if test_hold is not None and not isinstance(test_hold, dict):
        raise ProtocolError("'test_hold' must be an object")
    trace = payload.get("trace")
    if trace is not None:
        if not isinstance(trace, dict):
            raise ProtocolError("'trace' must be an object")
        bad_trace = set(trace) - _TRACE_KEYS
        if bad_trace:
            raise ProtocolError(
                f"unknown trace field(s): {', '.join(sorted(bad_trace))} "
                f"(allowed: {', '.join(sorted(_TRACE_KEYS))})"
            )
        trace_id = trace.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ProtocolError(
                "'trace' needs a non-empty string 'trace_id'"
            )
    return Request(
        id=request_id,
        kind=kind,
        scenario=scenario,
        tenant=tenant,
        priority=priority,
        deadline_s=deadline_s,
        options=options,
        test_hold=test_hold,
        trace=trace,
    )


# -- framing -----------------------------------------------------------------


def encode(obj: Dict) -> bytes:
    """One NDJSON frame: compact JSON, sorted keys, newline-terminated."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line) -> Dict:
    """Parse one NDJSON frame; typed errors, never a raw ValueError."""
    if isinstance(line, bytes):
        if len(line) > _MAX_LINE_BYTES:
            raise ProtocolError(
                f"request line exceeds {_MAX_LINE_BYTES} bytes"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    try:
        return json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc


# -- responses ---------------------------------------------------------------


def response_ok(request_id: str, report: Dict, **extra) -> Dict:
    response = {"id": request_id, "status": "ok", "report": report}
    response.update(extra)
    return response


def response_error(request_id: Optional[str], message: str,
                   category: str = "error") -> Dict:
    return {
        "id": request_id,
        "status": "error",
        "category": category,
        "message": message,
    }


def response_overloaded(request_id: str, exc: Overloaded) -> Dict:
    return {
        "id": request_id,
        "status": "overloaded",
        "reason": exc.reason,
        "retry_after_s": round(exc.retry_after_s, 3),
        "message": str(exc),
    }


def response_pong(request_id: str, **extra) -> Dict:
    response = {"id": request_id, "status": "pong"}
    response.update(extra)
    return response
