"""The sharded fleet of persistent diagnosis worker processes.

Each :class:`WorkerShard` owns one long-lived worker process (a
single-worker ``ProcessPoolExecutor`` over the same fork-preferring
context as :func:`repro.replay.parallel.pool_mp_context`) that serves
one request at a time.  Persistence is the point: a worker that has
diagnosed a scenario once keeps a warm
:class:`~repro.replay.cache.ReplayCache` in its process — keyed by log
fingerprint, so repeat workloads fork snapshots instead of re-deriving
baseline state, across requests and across tenants.

Robustness model (docs/service.md):

- **Worker death** (OOM kill, segfault, chaos SIGKILL) surfaces as a
  broken pool on the in-flight call and is raised as a typed
  :class:`WorkerDied`.  The dispatcher restarts the shard and retries
  the request with ``resume=True`` — the request's write-ahead journal
  (:mod:`repro.resilience.journal`) is on shared disk, so the retried
  diagnosis skips every verdict the dead worker recorded and produces
  a byte-identical report.
- **Crash loops** trip a per-shard :class:`CircuitBreaker`: after
  ``threshold`` consecutive crashes the shard is fenced for
  ``reset_s`` seconds (half-open after that — one probe request
  re-closes or re-opens it).  Fenced shards serve nothing; their
  dispatchers wait, and in-flight retries hand off to healthy shards.
- **Hangs** are bounded by per-call timeouts derived from the
  request deadline; a timed-out worker is killed and treated as a
  crash (the journal makes the retry cheap).

Worker-side job execution lives in :func:`_worker_job`, a module-level
function (pickled by reference, like the candidate evaluator's jobs).
"""

from __future__ import annotations

import concurrent.futures
import os
import signal
import time as _time
from typing import Callable, Dict, List, Optional

from ..errors import ServiceError
from ..replay.parallel import pool_mp_context

__all__ = ["CircuitBreaker", "WorkerDied", "WorkerFleet", "WorkerShard"]


class WorkerDied(ServiceError):
    """A shard's worker process vanished mid-call (or hung past its
    bound).  Internal to the fleet: dispatchers convert it into a
    restart-and-resume, never into a client-visible 500."""


# Test-only environment hooks honoured by the diagnosis journal; a
# request's ``test_hold`` maps onto them inside the worker process so
# chaos tests can park a diagnosis at a deterministic point and SIGKILL
# the worker mid-request.
_HOLD_KEYS = {
    "phase": "REPRO_TEST_HOLD_PHASE",
    "after_verdicts": "REPRO_TEST_HOLD_AFTER_VERDICTS",
    "seconds": "REPRO_TEST_HOLD_S",
}

# Worker-process global: one warm ReplayCache shared by every request
# the worker serves.  Snapshot keys embed the log fingerprint and fault
# plan (ReplayCache.base_key), so scenarios never collide and the one
# LRU store serves the whole request mix.
_WARM_CACHE = None

# Worker-process metric counters, shipped to the server as *deltas*
# piggybacked on each response (payload["metrics_delta"]), so the
# server's exposition covers the whole fleet without a side channel.
# Plain dicts, not a MetricsRegistry: absolute cumulative values delta
# cleanly across ships even when a counter is bumped by another metric
# source (e.g. cache stats).
_COUNTS: Dict[str, float] = {}
_SHIPPED: Dict[str, float] = {}


def _count(name: str, amount: float = 1) -> None:
    _COUNTS[name] = _COUNTS.get(name, 0) + amount


def _metrics_delta() -> Dict[str, float]:
    """Positive counter increments since the last shipped delta."""
    delta: Dict[str, float] = {}
    for name in sorted(_COUNTS):
        increment = _COUNTS[name] - _SHIPPED.get(name, 0)
        if increment > 0:
            delta[name] = round(increment, 6)
            _SHIPPED[name] = _COUNTS[name]
    return delta


def _warm_cache():
    global _WARM_CACHE
    if _WARM_CACHE is None:
        from ..replay.cache import ReplayCache

        _WARM_CACHE = ReplayCache()
    return _WARM_CACHE


def _worker_job(job: Dict):
    """Serve one fleet job inside the worker process.

    Returns ``("ok", payload)`` or ``("err", {...})`` — diagnosis
    failures are *data*, transported back and answered as typed error
    responses; only worker death is an exception the parent sees.
    """
    op = job.get("op")
    if op == "ping":
        return ("ok", {"pid": os.getpid(), "cache": _warm_cache().stats()})
    if op == "_crash":  # chaos-test hook: die like a SIGKILL'd worker
        os._exit(int(job.get("code", 66)))
    hold = job.get("test_hold") or {}
    saved = {}
    for key, env in _HOLD_KEYS.items():
        if key in hold:
            saved[env] = os.environ.get(env)
            os.environ[env] = str(hold[key])
    started = _time.perf_counter()
    _count("worker.requests")
    try:
        status, payload = _serve_diagnosis(job)
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        status, payload = ("err", {
            "message": f"{type(exc).__name__}: {exc}",
            "category": "diagnosis-error",
        })
    finally:
        for env, value in saved.items():
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value
    if status != "ok":
        _count("worker.errors")
    _count("worker.busy_s", _time.perf_counter() - started)
    if isinstance(payload, dict):
        payload["metrics_delta"] = _metrics_delta()
    return (status, payload)


def _serve_diagnosis(job: Dict):
    from ..api import Session
    from ..observability import ManualClock, Telemetry

    options = job.get("options") or {}
    # telemetry: False (off) / True (wall clock) / "manual" — the last
    # runs the worker's tracer on a fresh ManualClock so exported spans
    # (and the stitched service trace) are byte-identical across runs.
    telemetry_opt = options.get("telemetry", False)
    if telemetry_opt == "manual":
        telemetry = Telemetry(clock=ManualClock())
    elif telemetry_opt:
        telemetry = Telemetry()
    else:
        telemetry = None
    session = Session(
        scenario=job["scenario"],
        max_rounds=int(options.get("max_rounds", 10)),
        minimize=bool(options.get("minimize", False)),
        taint=bool(options.get("taint", True)),
        repair=bool(options.get("repair", False)),
        faults=options.get("faults"),
        engine=options.get("engine"),
        telemetry=telemetry,
        trace=job.get("trace"),
        journal=job.get("journal"),
        resume=True,  # first attempt finds no file and starts fresh
        deadline_s=job.get("deadline_s"),
        cache=_warm_cache(),
    )
    with session:
        if job["op"] == "autoref":
            result = session.autoref(limit=int(options.get("limit", 10)))
            report = result.report
            payload = {
                "found": result.found,
                "reference": (
                    str(result.reference) if result.reference else None
                ),
                "tried": len(result.tried),
            }
            if report is None:
                # The sweep exhausted its candidates: a negative
                # answer, not an error.
                payload.update({
                    "pid": os.getpid(),
                    "success": False,
                    "failure": "no-reference-found",
                    "changes": [],
                    "canonical": None,
                    "deadline_degraded": bool(result.stopped_early),
                    "resilience": result.resilience,
                    "cache": _warm_cache().stats(),
                })
                return ("ok", payload)
        else:
            report = session.diagnose()
            payload = {}
        resilience = report.resilience or {}
        deadline = resilience.get("deadline", {})
        payload.update({
            "pid": os.getpid(),
            "success": report.success,
            "failure": report.failure_category,
            "changes": [change.describe() for change in report.changes],
            "canonical": report.canonical_json(),
            "deadline_degraded": bool(
                report.failure_category == "deadline-exceeded"
                or deadline.get("expired")
            ),
            "resilience": resilience or None,
            "cache": _warm_cache().stats(),
        })
        if report.repair is not None:
            # Convenience mirror; the section is authoritative inside
            # "canonical" (it is part of the canonical report).
            payload["repair"] = report.repair
        if session.telemetry is not None:
            tracer = session.telemetry.tracer
            payload["telemetry"] = {
                "phases": report.telemetry.get("phases", [])
                if report.telemetry else [],
                # The worker's span forest, serialized so the server
                # can graft it under its dispatch span — one stitched
                # trace across the process boundary.
                "spans": [root.to_dict() for root in tracer.roots],
            }
        return ("ok", payload)


class CircuitBreaker:
    """Fence a shard after consecutive crashes; half-open after reset.

    ``record_failure`` counts a crash; at ``threshold`` the breaker
    opens for ``reset_s`` seconds.  ``allow()`` is True while closed
    *or* once the reset window has passed (half-open: the next call is
    the probe — a success closes the breaker, a failure re-opens it
    with a fresh window).
    """

    __slots__ = ("threshold", "reset_s", "clock", "failures", "opened_at",
                 "trips")

    def __init__(self, threshold: int = 3, reset_s: float = 5.0,
                 clock: Callable[[], float] = _time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.reset_s = float(reset_s)
        self.clock = clock
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            if self.opened_at is None:
                self.trips += 1
            self.opened_at = self.clock()

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None

    @property
    def open(self) -> bool:
        return (
            self.opened_at is not None
            and self.clock() - self.opened_at < self.reset_s
        )

    def allow(self) -> bool:
        return not self.open

    def __repr__(self):
        state = "open" if self.open else (
            "half-open" if self.opened_at is not None else "closed"
        )
        return f"CircuitBreaker({state}, failures={self.failures})"


class WorkerShard:
    """One persistent worker process and its health bookkeeping."""

    def __init__(self, index: int, breaker: CircuitBreaker):
        self.index = index
        self.breaker = breaker
        self.pid: Optional[int] = None
        self.busy = False
        self.current_request: Optional[str] = None
        self.crashes = 0
        self.served = 0
        self._pool = None

    def start(self) -> None:
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=1, mp_context=pool_mp_context()
        )

    def call(self, job: Dict, timeout: Optional[float] = None):
        """Run one job on the shard's worker (blocking; call off-loop).

        Raises :class:`WorkerDied` when the process vanished or blew
        the timeout; every other outcome comes back as the worker's
        ``(status, payload)`` pair.
        """
        if self._pool is None:
            raise WorkerDied(f"shard {self.index} is not started")
        try:
            future = self._pool.submit(_worker_job, job)
            status, payload = future.result(timeout=timeout)
        except concurrent.futures.process.BrokenProcessPool as exc:
            raise WorkerDied(
                f"shard {self.index} worker died mid-call"
            ) from exc
        except concurrent.futures.TimeoutError as exc:
            # A hung worker is indistinguishable from a lost one: kill
            # it so the restart path (journal resume) takes over.
            self.kill()
            raise WorkerDied(
                f"shard {self.index} exceeded its {timeout:g}s call bound"
            ) from exc
        if status == "ok" and isinstance(payload, dict):
            self.pid = payload.get("pid", self.pid)
        self.served += 1
        return status, payload

    def ping(self, timeout: float = 10.0) -> Dict:
        status, payload = self.call({"op": "ping"}, timeout=timeout)
        return payload

    def kill(self) -> None:
        """SIGKILL the worker process (hang recovery, fleet stop)."""
        if self.pid is not None:
            try:
                os.kill(self.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass

    def restart(self) -> None:
        old = self._pool
        self._pool = None
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        self.kill()
        self.pid = None
        self.start()

    def stop(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self.kill()

    def __repr__(self):
        return (
            f"WorkerShard({self.index}, pid={self.pid}, "
            f"crashes={self.crashes}, {self.breaker!r})"
        )


class WorkerFleet:
    """All shards plus the crash/restart/fencing policy around them."""

    def __init__(
        self,
        size: int = 2,
        telemetry=None,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if size < 1:
            raise ValueError(f"fleet size must be >= 1, got {size}")
        self.telemetry = telemetry
        self.clock = clock
        self.shards: List[WorkerShard] = [
            WorkerShard(i, CircuitBreaker(breaker_threshold,
                                          breaker_reset_s, clock))
            for i in range(size)
        ]
        self.restarts = 0
        self.started = False

    @property
    def size(self) -> int:
        return len(self.shards)

    def start(self, prewarm: bool = True) -> None:
        for shard in self.shards:
            shard.start()
        self.started = True
        if prewarm:
            # First contact spawns the process and records its pid —
            # so the first real request pays no fork, and chaos tests
            # know who to kill.
            for shard in self.shards:
                try:
                    shard.ping()
                except WorkerDied:  # pragma: no cover - start-up race
                    self.record_crash(shard)
                    self.restart(shard)

    def stop(self) -> None:
        for shard in self.shards:
            shard.stop()
        self.started = False

    # -- crash policy --------------------------------------------------------

    def record_crash(self, shard: WorkerShard) -> None:
        shard.crashes += 1
        was_open = shard.breaker.open
        shard.breaker.record_failure()
        if self.telemetry is not None:
            self.telemetry.inc("service.worker.crashes")
            if shard.breaker.open and not was_open:
                self.telemetry.inc("service.breaker.trips")

    def record_success(self, shard: WorkerShard) -> None:
        shard.breaker.record_success()

    def restart(self, shard: WorkerShard) -> bool:
        """Respawn the shard's worker unless its breaker fences it."""
        if not shard.breaker.allow():
            return False
        shard.restart()
        self.restarts += 1
        if self.telemetry is not None:
            self.telemetry.inc("service.worker.restarts")
        return True

    def pick_healthy(self, exclude: Optional[WorkerShard] = None):
        """The least-crashed serviceable shard (None when all fenced)."""
        candidates = [
            shard for shard in self.shards
            if shard is not exclude and shard.breaker.allow()
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (s.crashes, s.index))

    def stats(self) -> Dict[str, object]:
        return {
            "size": self.size,
            "restarts": self.restarts,
            "shards": [
                {
                    "index": shard.index,
                    "pid": shard.pid,
                    "busy": shard.busy,
                    "crashes": shard.crashes,
                    "served": shard.served,
                    "breaker_open": shard.breaker.open,
                    "breaker_trips": shard.breaker.trips,
                }
                for shard in self.shards
            ],
        }

    def __repr__(self):
        fenced = sum(1 for s in self.shards if s.breaker.open)
        return (
            f"WorkerFleet(size={self.size}, restarts={self.restarts}, "
            f"fenced={fenced})"
        )
