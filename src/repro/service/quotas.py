"""Per-tenant admission quotas: token buckets and concurrency caps.

A multi-tenant server must not let one chatty monitor starve the
operators.  Each tenant gets a :class:`TenantQuota` — a token-bucket
*rate* (requests/second with a *burst* allowance) plus a cap on
concurrently admitted requests — enforced at admission time by the
:class:`QuotaRegistry`.  A request that exceeds either limit is shed
with a typed :class:`~repro.errors.Overloaded` carrying a
``retry_after_s`` hint computed from the bucket's refill rate, so a
well-behaved client can back off precisely instead of hammering.

Clocks are injectable throughout (the tests drive refill manually);
production uses ``time.monotonic``.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, Optional

from ..errors import Overloaded

__all__ = ["TokenBucket", "TenantQuota", "QuotaRegistry"]


class TokenBucket:
    """The classic leaky-bucket rate limiter, refilled lazily on read."""

    __slots__ = ("rate", "burst", "clock", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = _time.monotonic):
        if rate <= 0:
            raise ValueError(f"token rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self.clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_acquire(self) -> bool:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one whole token will be available."""
        self._refill()
        missing = 1.0 - self._tokens
        return 0.0 if missing <= 0 else missing / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def __repr__(self):
        return (
            f"TokenBucket(rate={self.rate:g}/s, burst={self.burst:g}, "
            f"tokens={self.tokens:.2f})"
        )


class TenantQuota:
    """One tenant's admission limits.

    ``rate``/``burst`` bound the long-run request rate (``rate=None``
    disables rate limiting); ``max_concurrent`` bounds how many of the
    tenant's requests may be admitted-but-unfinished at once
    (``None`` = unbounded).
    """

    __slots__ = ("rate", "burst", "max_concurrent")

    def __init__(self, rate: Optional[float] = None, burst: float = 1.0,
                 max_concurrent: Optional[int] = None):
        self.rate = rate
        self.burst = burst
        self.max_concurrent = max_concurrent

    def __repr__(self):
        return (
            f"TenantQuota(rate={self.rate}, burst={self.burst}, "
            f"max_concurrent={self.max_concurrent})"
        )


class _TenantState:
    __slots__ = ("bucket", "in_flight", "admitted", "shed")

    def __init__(self, quota: TenantQuota, clock):
        self.bucket = (
            None if quota.rate is None
            else TokenBucket(quota.rate, quota.burst, clock)
        )
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0


class QuotaRegistry:
    """Admission-time quota enforcement across all tenants.

    ``quotas`` maps tenant name to :class:`TenantQuota`; the
    ``"default"`` entry (always present) covers tenants without an
    explicit override.  State is lazily created per tenant, so an
    unconfigured tenant costs nothing until its first request.
    """

    def __init__(self, quotas: Optional[Dict[str, TenantQuota]] = None,
                 clock: Callable[[], float] = _time.monotonic):
        self.quotas = dict(quotas or {})
        self.quotas.setdefault("default", TenantQuota())
        self.clock = clock
        self._state: Dict[str, _TenantState] = {}

    def _tenant(self, tenant: str) -> _TenantState:
        state = self._state.get(tenant)
        if state is None:
            quota = self.quotas.get(tenant, self.quotas["default"])
            state = self._state[tenant] = _TenantState(quota, self.clock)
        return state

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.quotas["default"])

    def acquire(self, tenant: str, service_time_hint: float = 1.0) -> None:
        """Charge one request against ``tenant`` or shed it.

        Raises :class:`~repro.errors.Overloaded` (reason ``quota`` for
        the rate limit, ``concurrency`` for the cap); on success the
        tenant's in-flight count is incremented and MUST be released
        with :meth:`release` when the request finishes, whatever way.
        """
        state = self._tenant(tenant)
        quota = self.quota_for(tenant)
        if (
            quota.max_concurrent is not None
            and state.in_flight >= quota.max_concurrent
        ):
            state.shed += 1
            raise Overloaded(
                f"tenant {tenant!r} has {state.in_flight} request(s) in "
                f"flight (cap {quota.max_concurrent})",
                reason="concurrency",
                retry_after_s=service_time_hint,
            )
        if state.bucket is not None and not state.bucket.try_acquire():
            state.shed += 1
            raise Overloaded(
                f"tenant {tenant!r} exceeded {quota.rate:g} requests/s "
                f"(burst {quota.burst:g})",
                reason="quota",
                retry_after_s=state.bucket.retry_after(),
            )
        state.in_flight += 1
        state.admitted += 1

    def release(self, tenant: str) -> None:
        state = self._tenant(tenant)
        if state.in_flight > 0:
            state.in_flight -= 1

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant admission accounting (for ``server.stats()``)."""
        return {
            tenant: {
                "in_flight": state.in_flight,
                "admitted": state.admitted,
                "shed": state.shed,
            }
            for tenant, state in sorted(self._state.items())
        }

    def __repr__(self):
        return f"QuotaRegistry(tenants={sorted(self._state) or ['-']})"
