"""Clients for the diagnosis service.

Two transports, one surface:

- :class:`ServiceClient` wraps an in-process
  :class:`~repro.service.server.DiagnosisServer` — zero serialization
  beyond protocol validation, the transport the tests and the
  throughput benchmark use.
- :class:`SocketServiceClient` speaks the NDJSON protocol over an
  asyncio stream to a served address.  Responses are matched to
  requests by ``id``, so one connection can have many requests in
  flight.

Both expose the same three coroutines — :meth:`request` (raw
response dict), :meth:`diagnose` (convenience for ``kind=diagnose``),
and :meth:`ping` — and neither raises for shed or failed requests:
the typed response dict is the answer (docs/service.md).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from ..errors import ProtocolError
from .protocol import decode, encode

__all__ = ["ServiceClient", "SocketServiceClient"]


class _RequestIds:
    """Monotonic fallback ids for callers who don't pass their own."""

    def __init__(self, prefix: str):
        self._counter = itertools.count(1)
        self._prefix = prefix

    def next(self) -> str:
        return f"{self._prefix}-{next(self._counter)}"


class ServiceClient:
    """In-process client: calls ``server.submit`` directly."""

    def __init__(self, server):
        self.server = server
        self._ids = _RequestIds("local")

    async def request(self, payload: Dict) -> Dict:
        payload = dict(payload)
        payload.setdefault("id", self._ids.next())
        return await self.server.submit(payload)

    async def diagnose(self, scenario: str, **fields) -> Dict:
        return await self.request(
            {"kind": "diagnose", "scenario": scenario, **fields}
        )

    async def ping(self) -> Dict:
        return await self.request({"kind": "ping"})

    async def stats(self) -> Dict:
        return await self.request({"kind": "stats"})

    async def metrics(self) -> Dict:
        return await self.request({"kind": "metrics"})

    async def flight(self) -> Dict:
        return await self.request({"kind": "flight"})


class SocketServiceClient:
    """NDJSON-over-TCP client for a served DiagnosisServer.

    Use as an async context manager::

        async with SocketServiceClient(host, port) as client:
            response = await client.diagnose("DNS1")

    A background reader task demultiplexes responses by ``id``; an
    unsolicited or unparseable server line fails all outstanding
    requests (the connection is no longer trustworthy).
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        self._reader_task = None
        self._waiters: Dict[str, asyncio.Future] = {}
        self._ids = _RequestIds("sock")

    async def connect(self) -> "SocketServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="service-client-reader"
        )
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None
        self._fail_all(ConnectionError("client closed"))

    async def __aenter__(self):
        return await self.connect()

    async def __aexit__(self, *exc_info):
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_all(ConnectionError("server closed connection"))
                    return
                try:
                    response = decode(line)
                except ProtocolError as exc:
                    self._fail_all(exc)
                    return
                waiter = self._waiters.pop(response.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fail waiters, not the loop
            self._fail_all(exc)

    def _fail_all(self, exc: BaseException) -> None:
        waiters, self._waiters = self._waiters, {}
        for waiter in waiters.values():
            if not waiter.done():
                waiter.set_exception(exc)

    async def request(self, payload: Dict,
                      timeout: Optional[float] = None) -> Dict:
        if self._writer is None:
            raise ConnectionError("client is not connected")
        payload = dict(payload)
        payload.setdefault("id", self._ids.next())
        request_id = payload["id"]
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = waiter
        self._writer.write(encode(payload))
        await self._writer.drain()
        try:
            return await asyncio.wait_for(waiter, timeout)
        finally:
            self._waiters.pop(request_id, None)

    async def diagnose(self, scenario: str, **fields) -> Dict:
        timeout = fields.pop("timeout", None)
        return await self.request(
            {"kind": "diagnose", "scenario": scenario, **fields},
            timeout=timeout,
        )

    async def ping(self, timeout: Optional[float] = 10.0) -> Dict:
        return await self.request({"kind": "ping"}, timeout=timeout)

    async def stats(self, timeout: Optional[float] = 10.0) -> Dict:
        return await self.request({"kind": "stats"}, timeout=timeout)

    async def metrics(self, timeout: Optional[float] = 10.0) -> Dict:
        return await self.request({"kind": "metrics"}, timeout=timeout)

    async def flight(self, timeout: Optional[float] = 10.0) -> Dict:
        return await self.request({"kind": "flight"}, timeout=timeout)
