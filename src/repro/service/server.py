"""The asyncio diagnosis server: admission in front, worker fleet behind.

One :class:`DiagnosisServer` owns an
:class:`~repro.service.admission.AdmissionController`, a
:class:`~repro.service.fleet.WorkerFleet`, and one dispatcher task per
shard.  Requests arrive two ways with identical semantics: in-process
via :meth:`submit` (what :class:`~repro.service.client.ServiceClient`,
the tests, and the throughput benchmark use) or over a newline-
delimited-JSON socket via :meth:`serve`
(:mod:`repro.service.protocol`).

Request lifecycle::

    parse -> admit (or shed: typed Overloaded with retry-after)
          -> queue (priority, admission order; deadline keeps burning)
          -> dispatch to a shard (journal path assigned)
          -> worker diagnoses (warm ReplayCache, write-ahead journal)
          -> ok / error response (futures resolve, quota released)

Robustness guarantees (exercised by ``tests/service/test_chaos.py``):
a SIGKILL'd worker triggers restart-and-resume with byte-identical
reports; repeated crashes fence the shard via its circuit breaker and
in-flight work hands off to healthy shards; an expired deadline
degrades to a partial report, never an error; SIGTERM drains — stop
admitting, finish or journal in-flight work — before exiting.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import tempfile
import time as _time
from typing import Dict, Optional

from ..errors import Overloaded, ProtocolError
from ..observability import OpsCenter, TraceContext
from ..observability import active as _active_telemetry
from ..resilience.journal import request_journal_path
from .admission import AdmissionController, Ticket
from .fleet import WorkerDied, WorkerFleet, WorkerShard
from .protocol import (
    Request,
    decode,
    encode,
    parse_request,
    response_error,
    response_ok,
    response_overloaded,
    response_pong,
)
from .quotas import QuotaRegistry

__all__ = ["DiagnosisServer"]

# Extra wall-clock a worker call gets beyond the request deadline
# before the parent declares it hung: covers scenario build and journal
# I/O that happen outside the deadline-checked diagnosis loop.
_DEADLINE_GRACE_S = 30.0


class DiagnosisServer:
    """A fault-tolerant, multi-tenant diagnosis service.

    ``workers`` sizes the shard fleet; ``max_queue`` bounds
    admitted-but-unfinished requests; ``quotas`` maps tenant names to
    :class:`~repro.service.quotas.TenantQuota` (the ``"default"``
    entry covers everyone else).  ``journal_dir`` holds the
    per-request write-ahead journals (a fresh temp dir by default);
    ``keep_journals`` leaves them on disk after success instead of
    unlinking.  ``health_interval_s`` enables periodic liveness pings
    of idle shards; ``drain_timeout_s`` bounds how long
    :meth:`drain` waits for in-flight work.  ``allow_test_hooks``
    gates the chaos-test ``test_hold`` request field — off by default
    so production clients cannot park a worker.
    """

    def __init__(
        self,
        workers: int = 2,
        max_queue: int = 64,
        quotas: Optional[Dict] = None,
        journal_dir: Optional[str] = None,
        keep_journals: bool = False,
        telemetry=None,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        max_attempts: int = 3,
        health_interval_s: Optional[float] = None,
        drain_timeout_s: float = 60.0,
        default_deadline_s: Optional[float] = None,
        default_engine=None,
        allow_test_hooks: bool = False,
        clock=_time.monotonic,
        ops: bool = True,
        flight_capacity: int = 128,
        slo_objective: float = 0.99,
        slo_window_s: float = 300.0,
    ):
        self.telemetry = _active_telemetry(telemetry)
        self.clock = clock
        # The always-on operations surface: fleet-wide metrics,
        # per-tenant SLO books, and the flight recorder.  ``ops=False``
        # strips it for overhead benchmarks.
        self.ops = (
            OpsCenter(
                clock=clock,
                flight_capacity=flight_capacity,
                slo_objective=slo_objective,
                slo_window_s=slo_window_s,
            )
            if ops else None
        )
        self.max_attempts = max(1, int(max_attempts))
        self.keep_journals = bool(keep_journals)
        self.default_deadline_s = default_deadline_s
        # Engine option applied to work requests that carry none; the
        # wire form of a validated EngineConfig (or None to keep the
        # package default).  Validation happens here, at construction,
        # so a bad --engine flag fails at server start, not per request.
        if default_engine is None:
            self.default_engine = None
        else:
            from ..datalog.config import EngineConfig

            self.default_engine = EngineConfig.coerce(default_engine).to_dict()
        self.allow_test_hooks = bool(allow_test_hooks)
        self.drain_timeout_s = drain_timeout_s
        self.health_interval_s = health_interval_s
        if journal_dir is None:
            self._journal_tmp = tempfile.TemporaryDirectory(
                prefix="diffprov-service-"
            )
            journal_dir = self._journal_tmp.name
        else:
            self._journal_tmp = None
            os.makedirs(journal_dir, exist_ok=True)
        self.journal_dir = journal_dir
        registry = (
            quotas if isinstance(quotas, QuotaRegistry)
            else QuotaRegistry(quotas, clock=clock)
        )
        self.admission = AdmissionController(
            max_queue=max_queue,
            quotas=registry,
            shards=workers,
            telemetry=self.telemetry,
            clock=clock,
        )
        self.fleet = WorkerFleet(
            size=workers,
            telemetry=self.telemetry,
            breaker_threshold=breaker_threshold,
            breaker_reset_s=breaker_reset_s,
            clock=clock,
        )
        self.started = False
        self._tasks = []
        self._pending = set()
        self._shard_locks: Dict[int, asyncio.Lock] = {}
        self._stopped = asyncio.Event()
        self._socket_server = None
        self._metrics_server = None
        self._connections = set()
        self.responses_total = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "DiagnosisServer":
        """Spawn the fleet and the dispatcher (and health) tasks."""
        if self.started:
            return self
        await asyncio.to_thread(self.fleet.start)
        self._shard_locks = {
            shard.index: asyncio.Lock() for shard in self.fleet.shards
        }
        self._tasks = [
            asyncio.create_task(
                self._dispatch_loop(shard), name=f"dispatch-{shard.index}"
            )
            for shard in self.fleet.shards
        ]
        if self.health_interval_s is not None:
            self._tasks.append(
                asyncio.create_task(self._health_loop(), name="health")
            )
        self.started = True
        return self

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, *exc_info):
        await self.shutdown()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful drain: stop admitting, let in-flight work finish.

        Returns True when everything completed inside ``timeout``
        (default ``drain_timeout_s``).  On timeout the stragglers'
        futures resolve to a ``drain-timeout`` error — their journals
        stay on disk, so the work is resumable offline.
        """
        self.admission.start_draining()
        timeout = self.drain_timeout_s if timeout is None else timeout
        pending = {t.future for t in self._pending if not t.future.done()}
        clean = True
        if pending:
            done, not_done = await asyncio.wait(pending, timeout=timeout)
            clean = not not_done
        for ticket in list(self._pending):
            if not ticket.future.done():
                response = response_error(
                    ticket.request.id,
                    "server drained before this request finished; its "
                    f"journal remains at {ticket.journal_path}",
                    category="drain-timeout",
                )
                # Keep the SLO books honest: a drained straggler is an
                # errored outcome for its tenant, counted here because
                # _serve_ticket will find the future already resolved.
                if self.ops is not None:
                    self._record_finished(
                        ticket, response, ok=False,
                        journal_kept=ticket.journal_path,
                    )
                ticket.future.set_result(response)
        return clean

    async def shutdown(self) -> None:
        """Drain, stop the fleet, cancel tasks, close the socket."""
        if self.started:
            await self.drain()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks = []
        if self._socket_server is not None:
            self._socket_server.close()
            await self._socket_server.wait_closed()
            self._socket_server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        # Idle connections sit blocked in readline(); close their
        # transports so the handlers end before the loop tears down.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        if self.started:
            await asyncio.to_thread(self.fleet.stop)
            self.started = False
        if self._journal_tmp is not None:
            with contextlib.suppress(OSError):
                self._journal_tmp.cleanup()
        self._stopped.set()

    def install_signal_handlers(self, loop=None) -> None:
        """SIGTERM/SIGINT trigger a graceful drain-and-stop."""
        loop = loop or asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- request entry points ------------------------------------------------

    async def submit(self, payload) -> Dict:
        """Serve one request (a dict, an NDJSON line, or a Request).

        Never raises for request-level problems: malformed input is an
        ``error`` response, shed load an ``overloaded`` response.
        """
        try:
            request = (
                payload if isinstance(payload, Request)
                else parse_request(payload)
            )
        except ProtocolError as exc:
            # Best-effort id recovery, so a socket client can match the
            # error to its request even when validation rejected it.
            if isinstance(payload, (str, bytes)):
                with contextlib.suppress(ProtocolError):
                    payload = decode(payload)
            rid = payload.get("id") if isinstance(payload, dict) else None
            return response_error(
                rid if isinstance(rid, str) else None,
                str(exc), category="protocol",
            )
        if request.kind == "ping":
            return response_pong(request.id)
        if request.kind == "stats":
            return response_pong(request.id, stats=self.stats())
        if request.kind == "metrics":
            return response_pong(request.id, metrics=self.metrics_text())
        if request.kind == "flight":
            flight = (
                self.ops.flight.snapshot() if self.ops is not None
                else {"capacity": 0, "recorded_total": 0, "entries": []}
            )
            return response_pong(request.id, flight=flight)
        if request.test_hold is not None and not self.allow_test_hooks:
            return response_error(
                request.id, "test_hold requires allow_test_hooks",
                category="protocol",
            )
        if request.deadline_s is None:
            request.deadline_s = self.default_deadline_s
        if self.default_engine is not None:
            request.options.setdefault("engine", dict(self.default_engine))
        ctx = self._trace_for(request)
        span = None
        if self.telemetry is not None:
            span = self.telemetry.tracer.start_span(
                "service.request",
                tenant=request.tenant,
                request=request.id,
                kind=request.kind,
                scenario=request.scenario,
                **ctx.span_attrs(),
            )
        if self.ops is not None:
            self.ops.slo.offered(request.tenant)
        try:
            if span is not None:
                admission_span = self.telemetry.tracer.start_span(
                    "service.admission", parent=span,
                )
                try:
                    ticket = self.admission.admit(request)
                except Overloaded as exc:
                    self.telemetry.tracer.finish(
                        admission_span, "error", error=f"shed: {exc.reason}"
                    )
                    raise
                self.telemetry.tracer.finish(admission_span)
            else:
                ticket = self.admission.admit(request)
        except Overloaded as exc:
            if self.ops is not None:
                self.ops.slo.shed(request.tenant, exc.reason)
            if span is not None:
                self.telemetry.tracer.finish(
                    span, "error", error=f"shed: {exc.reason}"
                )
            return response_overloaded(request.id, exc)
        if self.ops is not None:
            self.ops.slo.admitted(request.tenant)
        ticket.trace = ctx
        ticket.span = span
        self._pending.add(ticket)
        try:
            response = await ticket.future
        finally:
            self._pending.discard(ticket)
        if span is not None:
            ok = response.get("status") == "ok"
            self.telemetry.tracer.finish(
                span,
                "ok" if ok else "error",
                error=None if ok else response.get(
                    "message", response.get("status")
                ),
            )
        self.responses_total += 1
        return response

    def _trace_for(self, request: Request) -> TraceContext:
        """The request's trace position: continue the client's trace or
        root a fresh one from the request fingerprint (deterministic —
        the same request always lands in the same trace)."""
        if request.trace is not None:
            upstream = TraceContext.from_dict(request.trace)
        else:
            upstream = TraceContext.root({
                "id": request.id,
                "kind": request.kind,
                "scenario": request.scenario,
                "tenant": request.tenant,
                "priority": request.priority,
                "options": request.options,
            })
        return upstream.child("service.request")

    async def serve(self, host: str = "127.0.0.1", port: int = 0):
        """Listen for NDJSON clients; returns the bound (host, port)."""
        if not self.started:
            await self.start()
        self._socket_server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        return self._socket_server.sockets[0].getsockname()[:2]

    async def _handle_connection(self, reader, writer):
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        in_flight = set()

        async def answer(line):
            response = await self.submit(line)
            async with write_lock:
                writer.write(encode(response))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Requests on one connection run concurrently;
                # responses are matched by id, not order.
                task = asyncio.create_task(answer(line))
                in_flight.add(task)
                task.add_done_callback(in_flight.discard)
        finally:
            self._connections.discard(writer)
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self, shard: WorkerShard) -> None:
        while True:
            await self._wait_serviceable(shard)
            ticket = await self.admission.next()
            if ticket is None:
                break  # draining and the queue is empty
            await self._serve_ticket(shard, ticket)

    async def _wait_serviceable(self, shard: WorkerShard) -> None:
        while not shard.breaker.allow():
            await asyncio.sleep(0.05)

    async def _serve_ticket(self, shard: WorkerShard, ticket: Ticket) -> None:
        request = ticket.request
        try:
            response = await self._run_ticket(shard, ticket)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - dispatcher must survive
            response = response_error(
                request.id, f"{type(exc).__name__}: {exc}",
                category="internal",
            )
        self.admission.mark_done(ticket)
        ok = response.get("status") == "ok"
        journal_kept = ticket.journal_path if (
            not ok or self.keep_journals
        ) else None
        if ok and not self.keep_journals and ticket.journal_path:
            with contextlib.suppress(OSError):
                os.unlink(ticket.journal_path)
        if not ticket.future.done():
            if self.ops is not None:
                self._record_finished(ticket, response, ok, journal_kept)
            ticket.future.set_result(response)

    def _record_finished(self, ticket: Ticket, response: Dict, ok: bool,
                         journal_kept: Optional[str]) -> None:
        """SLO + flight-recorder bookkeeping for one resolved ticket."""
        request = ticket.request
        now = self.clock()
        queue_wait = (
            None if ticket.started_at is None
            else max(0.0, ticket.started_at - ticket.admitted_at)
        )
        latency = max(0.0, now - ticket.admitted_at)
        self.ops.slo.finished(
            request.tenant, ok, queue_wait_s=queue_wait, latency_s=latency
        )
        report = response.get("report") or {}
        verdict = None
        if isinstance(report, dict) and ok:
            verdict = (
                "success" if report.get("success")
                else report.get("failure")
            )
        self.ops.flight.record(
            request=request.id,
            tenant=request.tenant,
            kind=request.kind,
            scenario=request.scenario,
            status=response.get("status"),
            verdict=verdict,
            category=response.get("category"),
            trace_id=ticket.trace.trace_id if ticket.trace else None,
            shard=response.get("shard"),
            attempts=ticket.attempts + 1,
            queue_wait_s=None if queue_wait is None else round(queue_wait, 6),
            latency_s=round(latency, 6),
            journal=journal_kept,
        )

    def _journal_for(self, ticket: Ticket) -> str:
        # The server-side sequence number namespaces the path, so two
        # clients reusing an id can never cross-resume each other.
        return request_journal_path(
            self.journal_dir, f"{ticket.seq:06d}-{ticket.request.id}"
        )

    async def _run_ticket(self, shard: WorkerShard, ticket: Ticket) -> Dict:
        request = ticket.request
        job = request.job()
        ticket.journal_path = self._journal_for(ticket)
        job["journal"] = ticket.journal_path
        while True:
            attempt = ticket.attempts + 1
            dispatch_ctx = None
            if ticket.trace is not None:
                # Same trace across retries: a crash-resumed attempt
                # re-derives the same span ids, tagged attempt=N.
                dispatch_ctx = ticket.trace.child(
                    "service.dispatch"
                ).with_attempt(attempt)
                job["trace"] = dispatch_ctx.to_dict()
            dispatch_span = None
            if self.telemetry is not None and ticket.span is not None:
                dispatch_span = self.telemetry.tracer.start_span(
                    "service.dispatch",
                    parent=ticket.span,
                    shard=shard.index,
                    **(dispatch_ctx.span_attrs() if dispatch_ctx else {}),
                )
            remaining = ticket.remaining_deadline(self.clock())
            if remaining is not None:
                # An expired budget still dispatches: the worker's
                # deadline machinery degrades it to a partial report
                # in milliseconds — a partial answer, not a 500.
                job["deadline_s"] = max(remaining, 0.001)
            timeout = (
                None if remaining is None
                else max(remaining, 0.0) + _DEADLINE_GRACE_S
            )
            try:
                status, payload = await self._call_shard(
                    shard, ticket, job, timeout
                )
            except WorkerDied as died:
                if dispatch_span is not None:
                    self.telemetry.tracer.finish(
                        dispatch_span, "error", error=str(died)
                    )
                self.fleet.record_crash(shard)
                ticket.attempts += 1
                # Chaos holds fire on the first attempt only (like the
                # evaluator's simulated crashes): the retry must run to
                # completion, not park itself again.
                job.pop("test_hold", None)
                restarted = self.fleet.restart(shard)
                if ticket.attempts >= self.max_attempts:
                    return response_error(
                        request.id,
                        f"request crashed its worker {ticket.attempts} "
                        f"time(s); journal kept at {ticket.journal_path}",
                        category="worker-failure",
                    )
                if not restarted:
                    # This shard is fenced: hand the (journaled,
                    # resumable) request to a healthy one.
                    other = self.fleet.pick_healthy(exclude=shard)
                    if other is None:
                        return response_error(
                            request.id,
                            "no healthy worker shards; journal kept at "
                            f"{ticket.journal_path}",
                            category="no-workers",
                        )
                    shard = other
                continue
            self.fleet.record_success(shard)
            if isinstance(payload, dict):
                delta = payload.pop("metrics_delta", None)
                if delta and self.ops is not None:
                    self.ops.fold_worker_delta(delta)
            if dispatch_span is not None:
                worker_spans = (
                    (payload.get("telemetry") or {}).get("spans")
                    if status == "ok" and isinstance(payload, dict) else None
                )
                for span_data in worker_spans or ():
                    self.telemetry.tracer.graft(span_data, dispatch_span)
                self.telemetry.tracer.finish(
                    dispatch_span,
                    "ok" if status == "ok" else "error",
                )
            if status == "err":
                return response_error(
                    request.id,
                    payload.get("message", "diagnosis failed"),
                    category=payload.get("category", "diagnosis-error"),
                )
            return response_ok(
                request.id,
                payload,
                shard=shard.index,
                attempts=ticket.attempts + 1,
            )

    async def _call_shard(self, shard, ticket, job, timeout):
        lock = self._shard_locks[shard.index]
        async with lock:
            shard.busy = True
            shard.current_request = ticket.request.id
            try:
                return await asyncio.to_thread(shard.call, job, timeout)
            finally:
                shard.busy = False
                shard.current_request = None

    # -- health --------------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval_s)
            for shard in self.fleet.shards:
                if shard.busy or not shard.breaker.allow():
                    continue
                lock = self._shard_locks[shard.index]
                if lock.locked():
                    continue
                async with lock:
                    try:
                        await asyncio.to_thread(shard.ping, 10.0)
                    except WorkerDied:
                        # A silently dead idle worker: pay the restart
                        # now so the next request doesn't.
                        self.fleet.record_crash(shard)
                        self.fleet.restart(shard)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Queue, shed, tenant, and fleet state (the ops surface)."""
        stats: Dict[str, object] = {
            "admission": self.admission.stats(),
            "fleet": self.fleet.stats(),
            "responses_total": self.responses_total,
        }
        if self.ops is not None:
            stats["slo"] = self.ops.slo.snapshot()
            stats["flight"] = {
                "capacity": self.ops.flight.capacity,
                "recorded_total": self.ops.flight.recorded_total,
            }
        return stats

    def metrics_text(self) -> str:
        """The Prometheus-style exposition page (``metrics`` verb and
        the ``--metrics-port`` endpoint)."""
        if self.ops is None:
            return ""
        metrics = self.ops.metrics
        metrics.set_gauge("service.queue.depth", self.admission.queued)
        metrics.set_gauge("service.in_flight", self.admission.in_flight)
        metrics.set_gauge(
            "service.admitted_total", self.admission.admitted_total
        )
        for reason, count in sorted(self.admission.shed.items()):
            metrics.set_gauge(f"service.shed_total.{reason}", count)
        metrics.set_gauge("service.responses_total", self.responses_total)
        metrics.set_gauge("service.fleet.size", self.fleet.size)
        metrics.set_gauge("service.fleet.restarts", self.fleet.restarts)
        metrics.set_gauge("service.fleet.fenced", sum(
            1 for shard in self.fleet.shards if shard.breaker.open
        ))
        metrics.set_gauge("service.draining", int(self.admission.draining))
        extras = ()
        if self.telemetry is not None:
            extras = (self.telemetry.snapshot(),)
        return self.ops.prometheus(*extras)

    async def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Expose :meth:`metrics_text` over plain HTTP/1.0.

        A minimal responder (stdlib only): any request path gets the
        full exposition page.  Returns the bound ``(host, port)``.
        """
        self._metrics_server = await asyncio.start_server(
            self._handle_metrics, host=host, port=port
        )
        return self._metrics_server.sockets[0].getsockname()[:2]

    async def _handle_metrics(self, reader, writer):
        try:
            # Read the request line + headers up to the blank line;
            # the path is irrelevant (every path is /metrics).
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = self.metrics_text().encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; "
                b"charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def shard_for_request(self, request_id: str) -> Optional[WorkerShard]:
        """The shard currently serving ``request_id`` (chaos tests)."""
        for shard in self.fleet.shards:
            if shard.current_request == request_id:
                return shard
        return None

    def __repr__(self):
        return (
            f"DiagnosisServer(workers={self.fleet.size}, "
            f"queued={self.admission.queued}, "
            f"in_flight={self.admission.in_flight}, "
            f"draining={self.admission.draining})"
        )
