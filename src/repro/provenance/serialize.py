"""Persistence for provenance graphs.

A graph is written as JSON lines — one record per vertex, edge list,
and derivation — so recorded provenance can be archived and queried
offline (diagnostic queries are rare; the paper ages logs out over
time, and an operator may want to keep the provenance of an incident
after the logs are gone).

Values inside tuples are encoded with a small codec that round-trips
ints, strings, booleans, IPv4 addresses, and prefixes.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..addresses import IPv4Address, Prefix
from ..datalog.tuples import Tuple
from ..errors import ReproError
from .graph import DerivationInfo, ProvenanceGraph
from .vertices import VertexKind

__all__ = ["encode_value", "decode_value", "dump_graph", "load_graph"]


def encode_value(value):
    """JSON-encode one tuple field value."""
    if isinstance(value, bool) or isinstance(value, (int, str)):
        return value
    if isinstance(value, IPv4Address):
        return {"$ip": str(value)}
    if isinstance(value, Prefix):
        return {"$pfx": str(value)}
    if isinstance(value, float):
        return {"$f": value}
    raise ReproError(f"cannot serialize value {value!r} of {type(value)}")


def decode_value(encoded):
    if isinstance(encoded, dict):
        if "$ip" in encoded:
            return IPv4Address(encoded["$ip"])
        if "$pfx" in encoded:
            return Prefix(encoded["$pfx"])
        if "$f" in encoded:
            return float(encoded["$f"])
        raise ReproError(f"unknown encoded value {encoded!r}")
    return encoded


def _encode_tuple(tup: Tuple) -> Dict:
    return {"t": tup.table, "a": [encode_value(v) for v in tup.args]}


def _decode_tuple(data: Dict) -> Tuple:
    return Tuple(data["t"], [decode_value(v) for v in data["a"]])


def dump_graph(graph: ProvenanceGraph, path: str) -> int:
    """Write a graph as JSON lines; returns the number of records."""
    records = 0
    with open(path, "w", encoding="utf-8") as handle:
        for vertex in graph.vertices:
            record = {
                "kind": "vertex",
                "id": vertex.id,
                "vk": vertex.kind.value,
                "node": vertex.node,
                "tuple": _encode_tuple(vertex.tuple),
                "time": vertex.time,
                "end": vertex.end_time,
                "rule": vertex.rule,
                "did": vertex.derivation_id,
                "mutable": vertex.mutable,
                "children": [c.id for c in graph.children(vertex)],
            }
            handle.write(json.dumps(record) + "\n")
            records += 1
        for info in graph.derivations.values():
            record = {
                "kind": "derivation",
                "id": info.id,
                "rule": info.rule_name,
                "head": _encode_tuple(info.head),
                "body": [_encode_tuple(t) for t in info.body],
                "env": {k: encode_value(v) for k, v in info.env.items()},
                "trigger": info.trigger_index,
                "time": info.time,
            }
            handle.write(json.dumps(record) + "\n")
            records += 1
    return records


def load_graph(path: str) -> ProvenanceGraph:
    """Rebuild a graph from a JSON-lines dump."""
    graph = ProvenanceGraph()
    pending_edges: List = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record["kind"] == "vertex":
                vertex = graph.add_vertex(
                    VertexKind(record["vk"]),
                    record["node"],
                    _decode_tuple(record["tuple"]),
                    record["time"],
                    end_time=record["end"],
                    rule=record["rule"],
                    derivation_id=record["did"],
                    mutable=record["mutable"],
                )
                if vertex.id != record["id"]:
                    raise ReproError(
                        f"vertex ids must be dense and ordered "
                        f"(got {record['id']}, expected {vertex.id})"
                    )
                pending_edges.append((vertex, record["children"]))
            elif record["kind"] == "derivation":
                graph.add_derivation(
                    DerivationInfo(
                        record["id"],
                        record["rule"],
                        _decode_tuple(record["head"]),
                        tuple(_decode_tuple(t) for t in record["body"]),
                        {k: decode_value(v) for k, v in record["env"].items()},
                        record["trigger"],
                        record["time"],
                    )
                )
            else:
                raise ReproError(f"unknown record kind {record['kind']!r}")
    for vertex, child_ids in pending_edges:
        graph.set_children(vertex, [graph.vertices[i] for i in child_ids])
    return graph
