"""The naive tree-comparison strawman of Section 2.5.

Two baselines are provided:

- :func:`naive_diff` — compare the two trees vertex by vertex (by a
  timestamp-insensitive label) and report everything that differs.
  Small differences at the leaves cascade into a "butterfly effect"
  higher up, so the diff is routinely *larger* than either tree —
  Table 1's "Plain tree diff" row.

- :func:`tree_edit_distance` — the classical ordered tree edit
  distance (Zhang–Shasha), the "tree-based edit distance algorithm"
  the paper cites [5] and argues against.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, List

from .tree import ProvenanceTree, TreeNode
from .vertices import Vertex

__all__ = ["vertex_label", "naive_diff", "tree_edit_distance"]


def vertex_label(vertex: Vertex) -> tuple:
    """A timestamp-insensitive label for tree comparison.

    Timestamps always differ between two executions, so comparing them
    would flag every vertex; the strawman at least masks those.
    """
    return (vertex.kind.value, vertex.node, vertex.tuple.table, vertex.tuple.args,
            vertex.rule)


def naive_diff(
    good: ProvenanceTree,
    bad: ProvenanceTree,
    label: Callable[[Vertex], tuple] = vertex_label,
) -> List[tuple]:
    """Vertexes present in one tree but not the other (multiset diff).

    Returns the combined list of differing labels; ``len()`` of the
    result is the "Plain tree diff" count reported in Table 1.
    """
    good_counts = Counter(label(n.vertex) for n in good.root.walk())
    bad_counts = Counter(label(n.vertex) for n in bad.root.walk())
    only_good = good_counts - bad_counts
    only_bad = bad_counts - good_counts
    result: List[tuple] = []
    for lbl, count in sorted(only_good.items(), key=lambda kv: str(kv[0])):
        result.extend([lbl] * count)
    for lbl, count in sorted(only_bad.items(), key=lambda kv: str(kv[0])):
        result.extend([lbl] * count)
    return result


def tree_edit_distance(
    good: ProvenanceTree,
    bad: ProvenanceTree,
    label: Callable[[Vertex], tuple] = vertex_label,
) -> int:
    """Ordered tree edit distance (Zhang–Shasha, 1989).

    Unit costs for insert/delete/relabel.  Quadratic in tree size, so
    use on moderate trees only (the paper's point is precisely that
    edit distance does not give useful diagnostics, however efficiently
    it is computed).
    """
    return _zhang_shasha(good.root, bad.root, label)


def _zhang_shasha(
    root_a: TreeNode, root_b: TreeNode, label: Callable[[Vertex], tuple]
) -> int:
    nodes_a, lmld_a, keyroots_a = _index(root_a)
    nodes_b, lmld_b, keyroots_b = _index(root_b)
    size_a, size_b = len(nodes_a), len(nodes_b)
    dist = [[0] * size_b for _ in range(size_a)]

    def cost(i: int, j: int) -> int:
        return 0 if label(nodes_a[i].vertex) == label(nodes_b[j].vertex) else 1

    for ka in keyroots_a:
        for kb in keyroots_b:
            _treedist(ka, kb, nodes_a, nodes_b, lmld_a, lmld_b, dist, cost)
    return dist[size_a - 1][size_b - 1]


def _index(root: TreeNode):
    """Postorder nodes, leftmost-leaf-descendant indices, keyroots."""
    nodes: List[TreeNode] = []

    def postorder(node: TreeNode) -> int:
        first = None
        for child in node.children:
            leftmost = postorder(child)
            if first is None:
                first = leftmost
        nodes.append(node)
        index = len(nodes) - 1
        lmld.append(first if first is not None else index)
        return lmld[index]

    lmld: List[int] = []
    postorder(root)
    keyroots = []
    seen = set()
    for index in range(len(nodes) - 1, -1, -1):
        if lmld[index] not in seen:
            keyroots.append(index)
            seen.add(lmld[index])
    keyroots.sort()
    return nodes, lmld, keyroots


def _treedist(i, j, nodes_a, nodes_b, lmld_a, lmld_b, dist, cost):
    li, lj = lmld_a[i], lmld_b[j]
    rows = i - li + 2
    cols = j - lj + 2
    forest = [[0] * cols for _ in range(rows)]
    for a in range(1, rows):
        forest[a][0] = forest[a - 1][0] + 1
    for b in range(1, cols):
        forest[0][b] = forest[0][b - 1] + 1
    for a in range(1, rows):
        for b in range(1, cols):
            node_a = li + a - 1
            node_b = lj + b - 1
            if lmld_a[node_a] == li and lmld_b[node_b] == lj:
                forest[a][b] = min(
                    forest[a - 1][b] + 1,
                    forest[a][b - 1] + 1,
                    forest[a - 1][b - 1] + cost(node_a, node_b),
                )
                dist[node_a][node_b] = forest[a][b]
            else:
                fa = lmld_a[node_a] - li
                fb = lmld_b[node_b] - lj
                forest[a][b] = min(
                    forest[a - 1][b] + 1,
                    forest[a][b - 1] + 1,
                    forest[fa][fb] + dist[node_a][node_b],
                )
