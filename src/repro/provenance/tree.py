"""Provenance trees: the per-event projection of the graph.

The provenance of an event ``e`` is the tree rooted at ``e``'s vertex
in which each vertex's children are its direct causes (Section 2.1).
Because the graph is a DAG, shared sub-provenance is *duplicated* when
projected into a tree — this is why the paper's trees have hundreds of
vertexes even on small networks, and our vertex counts follow the same
convention.

Two views are provided:

- the **vertex view** (:class:`TreeNode`): every
  INSERT/APPEAR/EXIST/DERIVE vertex is a tree node.  Table 1 counts
  these.
- the **tuple view** (:class:`TupleNode`): EXIST→APPEAR→{INSERT|DERIVE}
  chains are collapsed to one node per tuple instance.  The DiffProv
  algorithm walks this view.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..datalog.tuples import Tuple
from ..errors import ReproError
from .graph import DerivationInfo, ProvenanceGraph
from .vertices import Vertex, VertexKind

__all__ = ["TreeNode", "TupleNode", "ProvenanceTree"]


class TreeNode:
    """A vertex-view tree node."""

    __slots__ = ("vertex", "children", "parent")

    def __init__(self, vertex: Vertex, children: Optional[List["TreeNode"]] = None):
        self.vertex = vertex
        self.children = children if children is not None else []
        self.parent: Optional[TreeNode] = None

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def walk(self) -> Iterator["TreeNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0, max_depth: Optional[int] = None) -> str:
        lines = [("  " * indent) + self.vertex.label()]
        if max_depth is None or indent < max_depth:
            for child in self.children:
                lines.append(child.render(indent + 1, max_depth))
        return "\n".join(lines)

    def __repr__(self):
        return f"TreeNode({self.vertex.label()}, {len(self.children)} children)"


class TupleNode:
    """A tuple-view tree node: one tuple instance plus how it came to be."""

    __slots__ = (
        "tuple",
        "node",
        "rule",
        "derivation",
        "children",
        "parent",
        "appear_time",
        "mutable",
        "exist_vertex",
    )

    def __init__(
        self,
        tup: Tuple,
        node: str,
        rule: Optional[str],
        derivation: Optional[DerivationInfo],
        appear_time: int,
        mutable: Optional[bool],
        exist_vertex: Optional[Vertex],
    ):
        self.tuple = tup
        self.node = node
        self.rule = rule
        self.derivation = derivation
        self.children: List[TupleNode] = []
        self.parent: Optional[TupleNode] = None
        self.appear_time = appear_time
        self.mutable = mutable
        self.exist_vertex = exist_vertex

    @property
    def is_base(self) -> bool:
        return self.rule is None

    @property
    def trigger_index(self) -> Optional[int]:
        return self.derivation.trigger_index if self.derivation is not None else None

    def trigger_child(self) -> Optional["TupleNode"]:
        """The child that triggered this node's derivation."""
        if self.derivation is None or not self.children:
            return None
        index = self.derivation.trigger_index
        if 0 <= index < len(self.children):
            return self.children[index]
        return None

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def walk(self) -> Iterator["TupleNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["TupleNode"]:
        if not self.children:
            yield self
        else:
            for child in self.children:
                yield from child.leaves()

    def path_to_root(self) -> List["TupleNode"]:
        path = [self]
        while path[-1].parent is not None:
            path.append(path[-1].parent)
        return path

    def render(self, indent: int = 0) -> str:
        via = f" via {self.rule}" if self.rule else " (base)"
        lines = [("  " * indent) + f"{self.tuple}{via} @t{self.appear_time}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self):
        return f"TupleNode({self.tuple}, rule={self.rule!r})"


class ProvenanceTree:
    """The provenance of one event: vertex view + tuple view."""

    def __init__(self, graph: ProvenanceGraph, root_vertex: Vertex):
        self.graph = graph
        self.root = self._project(root_vertex, depth=0)
        self.tuple_root = self._tuple_view(self.root)

    # -- vertex view ------------------------------------------------------

    _MAX_DEPTH = 100_000

    def _project(self, vertex: Vertex, depth: int) -> TreeNode:
        if depth > self._MAX_DEPTH:  # pragma: no cover - defensive
            raise ReproError("provenance projection exceeded depth bound")
        node = TreeNode(vertex)
        for child_vertex in self.graph.children(vertex):
            child = self._project(child_vertex, depth + 1)
            child.parent = node
            node.children.append(child)
        return node

    def size(self) -> int:
        """Number of vertexes in the (expanded) provenance tree."""
        return self.root.size()

    def render(self, max_depth: Optional[int] = None) -> str:
        return self.root.render(max_depth=max_depth)

    # -- tuple view -------------------------------------------------------

    def _tuple_view(self, node: TreeNode) -> TupleNode:
        """Collapse EXIST→APPEAR→{INSERT, DERIVE} chains."""
        vertex = node.vertex
        if vertex.kind == VertexKind.EXIST:
            appear = _single_child(node, (VertexKind.APPEAR,))
            return self._tuple_view(appear) if appear else self._leaf(node)
        if vertex.kind == VertexKind.APPEAR:
            cause = _single_child(node, (VertexKind.INSERT, VertexKind.DERIVE))
            if cause is None:
                return self._leaf(node)
            if cause.vertex.kind == VertexKind.INSERT:
                return TupleNode(
                    vertex.tuple,
                    vertex.node,
                    None,
                    None,
                    vertex.time,
                    cause.vertex.mutable,
                    _exist_ancestor(node),
                )
            # DERIVE
            derive = cause
            info = self.graph.derivations.get(derive.vertex.derivation_id)
            result = TupleNode(
                vertex.tuple,
                vertex.node,
                derive.vertex.rule,
                info,
                vertex.time,
                None,
                _exist_ancestor(node),
            )
            for child in derive.children:
                child_node = self._tuple_view(child)
                child_node.parent = result
                result.children.append(child_node)
            return result
        if vertex.kind == VertexKind.DERIVE:
            info = self.graph.derivations.get(vertex.derivation_id)
            result = TupleNode(
                vertex.tuple, vertex.node, vertex.rule, info, vertex.time, None, None
            )
            for child in node.children:
                child_node = self._tuple_view(child)
                child_node.parent = result
                result.children.append(child_node)
            return result
        return self._leaf(node)

    def _leaf(self, node: TreeNode) -> TupleNode:
        vertex = node.vertex
        return TupleNode(
            vertex.tuple,
            vertex.node,
            None,
            None,
            vertex.time,
            vertex.mutable,
            vertex if vertex.kind == VertexKind.EXIST else None,
        )


def _single_child(node: TreeNode, kinds) -> Optional[TreeNode]:
    for child in node.children:
        if child.vertex.kind in kinds:
            return child
    return None


def _exist_ancestor(node: TreeNode) -> Optional[Vertex]:
    current = node
    while current is not None:
        if current.vertex.kind == VertexKind.EXIST:
            return current.vertex
        current = current.parent
    return None
