"""Temporal provenance: the seven-vertex graph of Section 3.2.

The graph is built incrementally at runtime by a
:class:`~repro.provenance.recorder.ProvenanceRecorder` attached to an
engine (*inferred* mode), fed explicitly through the recorder's
``report`` API (*reported* mode, used by the instrumented MapReduce
runtime), or reconstructed from packet traces by the
*external-specification* recorder in :mod:`repro.provenance.external`
(black-box mode, used for the complex-network scenario).
"""

from .vertices import Vertex, VertexKind
from .graph import ProvenanceGraph
from .recorder import ProvenanceRecorder
from .tree import ProvenanceTree, TupleNode
from .query import provenance_query
from .diff import naive_diff, tree_edit_distance
from .serialize import dump_graph, load_graph
from .viz import diff_to_dot, tree_to_dot
from .distributed import DistributedQueryStats, PartitionedProvenance

__all__ = [
    "Vertex",
    "VertexKind",
    "ProvenanceGraph",
    "ProvenanceRecorder",
    "ProvenanceTree",
    "TupleNode",
    "provenance_query",
    "naive_diff",
    "tree_edit_distance",
    "dump_graph",
    "load_graph",
    "tree_to_dot",
    "diff_to_dot",
    "PartitionedProvenance",
    "DistributedQueryStats",
]
