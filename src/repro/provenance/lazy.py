"""Lazy provenance: record compact annotations, build the graph on demand.

Eagerly mirroring every engine event into a :class:`ProvenanceGraph`
pays the full seven-vertex construction cost on every replay — even
though DiffProv's inner loop (FIRSTDIV's liveness walk, competitor
search) only asks a handful of cheap questions per replay and
materializes a tree for the rare candidate that survives them.  This
module implements the record-little/reconstruct-on-query split of
*Provenance for Large-scale Datalog* and *Provenance Traces*: the
recorder appends one compact event per kept observation (rule id,
premise tuple ids, timestamps) to an append-only arena, a small amount
of incremental state answers the hot liveness queries directly, and the
full graph is reconstructed — identically, vertex for vertex — only
when a caller touches an API that needs real vertexes.

Equivalence argument: recorder-side fault filtering happens *before*
events reach the arena, so replaying the arena through
:func:`apply_event` performs exactly the ``add_vertex`` sequence the
eager recorder would have performed for the same kept events — same
order, same children lookups against the same partial graph.  The
reconstructed graph is therefore byte-identical to the eager one, and
every derived artifact (trees, serialized forms, diffs, reports) is
too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..datalog.tuples import Tuple
from ..errors import ReproError
from .graph import DerivationInfo, ProvenanceGraph
from .vertices import VertexKind

__all__ = ["LazyProvenanceGraph", "ProofNode", "apply_event"]


class ProofNode:
    """One node of a reconstructed minimal proof tree.

    A leaf (``rule is None``) is a base insertion; an inner node is the
    minimal-height derivation of its tuple, with one child per body
    member in body order.
    """

    __slots__ = ("tuple", "rule", "children", "height")

    def __init__(self, tup, rule, children, height):
        self.tuple = tup
        self.rule = rule
        self.children = tuple(children)
        self.height = height

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def render(self, indent: int = 0) -> str:
        label = (
            str(self.tuple)
            if self.rule is None
            else f"{self.tuple} <= {self.rule}"
        )
        lines = ["  " * indent + label]
        lines.extend(
            child.render(indent + 1) for child in self.children
        )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"ProofNode({self.tuple}, rule={self.rule!r}, "
            f"height={self.height}, size={self.size()})"
        )


def apply_event(graph: ProvenanceGraph, event: tuple) -> None:
    """Apply one arena event to an eager graph.

    This is the single construction path for lazily-recorded
    provenance: the recorder encodes each kept observation as a compact
    tuple, and this function performs the same vertex/edge construction
    the eager recorder callbacks perform (see
    :class:`repro.provenance.recorder.ProvenanceRecorder`).
    """
    kind = event[0]
    if kind == "ins":
        _, node, tup, time, mutable = event
        graph.add_vertex(VertexKind.INSERT, node, tup, time, mutable=mutable)
    elif kind == "del":
        _, node, tup, time = event
        graph.add_vertex(VertexKind.DELETE, node, tup, time)
    elif kind == "app":
        _, node, tup, time, cause_kind, derivation_id = event
        if cause_kind == "insert":
            parent = graph.latest_insert(tup)
        else:
            parent = graph.derive_vertex(derivation_id)
        children = [parent] if parent is not None else []
        appear = graph.add_vertex(
            VertexKind.APPEAR, node, tup, time, children=children
        )
        graph.add_vertex(VertexKind.EXIST, node, tup, time, children=[appear])
    elif kind == "dis":
        _, node, tup, time, cause_kind, derivation_id = event
        children = []
        if cause_kind == "underive" and derivation_id is not None:
            derive_vertex = graph.derive_vertex(derivation_id)
            if derive_vertex is not None:
                children = [derive_vertex]
        graph.close_exist(tup, time)
        graph.add_vertex(
            VertexKind.DISAPPEAR, node, tup, time, children=children
        )
    elif kind == "der":
        _, node, info, time = event
        graph.add_derivation(info)
        children = []
        for member in info.body:
            exist = graph.exist_at(member, time)
            if exist is None:
                exist = graph.exist_at(member)
            if exist is not None:
                children.append(exist)
        graph.add_vertex(
            VertexKind.DERIVE,
            node,
            info.head,
            time,
            children=children,
            rule=info.rule_name,
            derivation_id=info.id,
        )
    elif kind == "und":
        _, node, head, time, rule_name, derivation_id = event
        derive_vertex = graph.derive_vertex(derivation_id)
        children = [derive_vertex] if derive_vertex is not None else []
        graph.add_vertex(
            VertexKind.UNDERIVE,
            node,
            head,
            time,
            children=children,
            rule=rule_name,
            derivation_id=derivation_id,
        )
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown arena event {kind!r}")


class LazyProvenanceGraph:
    """A :class:`ProvenanceGraph` facade that materializes on demand.

    While unmaterialized, it holds the event arena plus just enough
    incremental state to answer DiffProv's hot queries (liveness
    intervals, appear times, derivation records) without building a
    single vertex.  The first call that needs real vertexes — tree
    projection, serialization, history — triggers one reconstruction
    (metered as ``provenance.lazy.reconstructions``), after which every
    call delegates to the materialized graph.

    The facade's identity is stable: ``recorder.graph`` returns the
    same object before and after materialization, so long-lived
    references (``ReplayResult.graph``, emulation views) stay valid.
    """

    def __init__(self, recorder=None, annotated: bool = False):
        # Backref for telemetry: read dynamically on every use, because
        # replay-cache restores reattach a fresh Telemetry to the
        # recorder after unpickling.
        self._recorder = recorder
        self._arena: List[tuple] = []
        self._graph: Optional[ProvenanceGraph] = None
        # Incremental cheap state, maintained by record():
        self._exists: Dict[Tuple, List[list]] = {}  # tup -> [[start, end|None]]
        self._appears: Dict[Tuple, List[int]] = {}  # tup -> appear times
        self._insert_counts: Dict[Tuple, int] = {}
        self._derive_ids: Set[int] = set()
        self._derivations: Dict[int, DerivationInfo] = {}
        self._vertex_count = 0
        # Subsumption-based proof annotations (provenance="annotated",
        # after Souffle's height annotations): per-tuple live base
        # support count and, per head tuple, the heights of its live
        # derivations recorded at derive time.  From these,
        # minimal_proof() reconstructs an exact minimal proof tree
        # without materializing the graph.
        self._annotated = annotated
        self._base_live: Dict[Tuple, int] = {}
        self._live_ders: Dict[Tuple, Dict[int, int]] = {}

    # -- recording (called by the owning recorder) ---------------------------

    @property
    def pending(self) -> bool:
        """True while the graph has not been materialized yet."""
        return self._graph is None

    def record(self, event: tuple) -> None:
        """Ingest one kept event: cheap state, metrics, arena/graph.

        Vertex and edge metrics are computed here, at record time, from
        the incremental state — the counts are provably equal to what
        eager construction would report, because every child lookup in
        :func:`apply_event` reduces to an existence test this state
        answers exactly (has the tuple any EXIST interval / any INSERT
        / is the derivation id known).
        """
        telemetry = self._recorder.telemetry if self._recorder is not None else None
        kind = event[0]
        if kind == "ins":
            tup = event[2]
            self._insert_counts[tup] = self._insert_counts.get(tup, 0) + 1
            self._note_vertex(telemetry, "insert")
        elif kind == "del":
            self._note_vertex(telemetry, "delete")
        elif kind == "app":
            _, _, tup, time, cause_kind, derivation_id = event
            if cause_kind == "insert":
                parent_edges = 1 if self._insert_counts.get(tup) else 0
            else:
                parent_edges = 1 if derivation_id in self._derive_ids else 0
            self._note_vertex(telemetry, "appear", parent_edges)
            self._appears.setdefault(tup, []).append(time)
            self._exists.setdefault(tup, []).append([time, None])
            self._note_vertex(telemetry, "exist", 1)
        elif kind == "dis":
            _, _, tup, time, cause_kind, derivation_id = event
            edges = (
                1
                if cause_kind == "underive"
                and derivation_id is not None
                and derivation_id in self._derive_ids
                else 0
            )
            self._close(tup, time)
            self._note_vertex(telemetry, "disappear", edges)
        elif kind == "der":
            info = event[2]
            if info.id in self._derivations:
                # Same failure the eager graph's add_derivation raises,
                # surfaced at record time rather than reconstruction.
                raise ReproError(f"duplicate derivation id {info.id}")
            edges = sum(1 for member in info.body if self._exists.get(member))
            self._derivations[info.id] = info
            self._derive_ids.add(info.id)
            self._note_vertex(telemetry, "derive", edges)
        elif kind == "und":
            derivation_id = event[5]
            edges = 1 if derivation_id in self._derive_ids else 0
            self._note_vertex(telemetry, "underive", edges)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown arena event {kind!r}")
        if self._annotated:
            self._annotate(event)
        if self._graph is not None:
            # Already materialized (e.g. a tree was projected mid-run):
            # keep the eager graph current instead of re-growing the arena.
            apply_event(self._graph, event)
        else:
            self._arena.append(event)

    def _note_vertex(self, telemetry, kind_name: str, edges: int = 0) -> None:
        self._vertex_count += 1
        if telemetry is not None:
            telemetry.inc("recorder.vertices." + kind_name)
            if edges:
                telemetry.inc("recorder.edges", edges)

    def _annotate(self, event: tuple) -> None:
        """Maintain min-height/first-derivation annotations for one event.

        Heights follow the Souffle subsumption scheme: a base-supported
        tuple has height 0; a derivation's height is one more than the
        tallest of its body members' minimal heights *at derive time*.
        Keeping every live derivation's height (rather than one global
        minimum) makes underivation exact: the minimum over the
        survivors is the tuple's new minimal height.
        """
        kind = event[0]
        if kind == "ins":
            tup = event[2]
            self._base_live[tup] = self._base_live.get(tup, 0) + 1
        elif kind == "del":
            tup = event[2]
            count = self._base_live.get(tup, 0)
            if count:
                self._base_live[tup] = count - 1
        elif kind == "der":
            info = event[2]
            height = 1 + max(
                (self._height_of(member) for member in info.body),
                default=0,
            )
            self._live_ders.setdefault(info.head, {})[info.id] = height
        elif kind == "und":
            derivation_id = event[5]
            ders = self._live_ders.get(event[2])
            if ders is not None:
                ders.pop(derivation_id, None)

    def _height_of(self, tup: Tuple) -> int:
        if self._base_live.get(tup):
            return 0
        ders = self._live_ders.get(tup)
        if ders:
            return min(ders.values())
        # Unknown member (e.g. its report was lost under lossy
        # logging): treat as a leaf so proofs stay constructible.
        return 0

    def _close(self, tup: Tuple, time: int) -> None:
        # Mirror ProvenanceGraph.close_exist: end the latest open interval.
        best = None
        for interval in self._exists.get(tup, ()):
            if interval[1] is None and (best is None or interval[0] > best[0]):
                best = interval
        if best is not None:
            best[1] = time

    # -- cheap queries (no materialization) ----------------------------------

    @property
    def derivations(self) -> Dict[int, DerivationInfo]:
        if self._graph is not None:
            return self._graph.derivations
        return self._derivations

    def alive_at(self, tup: Tuple, time: int) -> bool:
        if self._graph is not None:
            return self._graph.alive_at(tup, time)
        for start, end in self._exists.get(tup, ()):
            if start <= time and (end is None or end >= time):
                return True
        return False

    def alive_during(self, tup: Tuple, from_time: int) -> bool:
        if self._graph is not None:
            return self._graph.alive_during(tup, from_time)
        for _, end in self._exists.get(tup, ()):
            if end is None or end >= from_time:
                return True
        return False

    def appear_times(self, tup: Tuple) -> List[int]:
        if self._graph is not None:
            return self._graph.appear_times(tup)
        return list(self._appears.get(tup, ()))

    def ever_existed(self, tup: Tuple) -> bool:
        if self._graph is not None:
            return self._graph.ever_existed(tup)
        return bool(self._exists.get(tup))

    def live_tuples(self, table: Optional[str] = None) -> List[Tuple]:
        if self._graph is not None:
            return self._graph.live_tuples(table)
        result = []
        for tup, intervals in self._exists.items():
            if table is not None and tup.table != table:
                continue
            if any(end is None for _, end in intervals):
                result.append(tup)
        return result

    def __len__(self) -> int:
        if self._graph is not None:
            return len(self._graph)
        return self._vertex_count

    # -- annotation-based proof reconstruction -------------------------------

    @property
    def annotated(self) -> bool:
        return self._annotated

    def height_of(self, tup: Tuple) -> int:
        """The tuple's current minimal proof height (annotated mode)."""
        self._require_annotations()
        return self._height_of(tup)

    def minimal_proof(self, tup: Tuple) -> ProofNode:
        """Reconstruct an exact minimal proof tree for ``tup`` on demand.

        Works entirely from the recorded annotations — no graph
        materialization (metered as ``provenance.annotated.proofs``).
        At every tuple the live derivation with the smallest
        (height, derivation id) wins, so the result is deterministic
        and minimal under the recorded heights; ties and recursion are
        broken by derivation id (record order) and a path guard.
        """
        self._require_annotations()
        telemetry = (
            self._recorder.telemetry if self._recorder is not None else None
        )
        if telemetry is not None:
            telemetry.inc("provenance.annotated.proofs")
        return self._prove(tup, frozenset())

    def _prove(self, tup: Tuple, path: frozenset) -> ProofNode:
        if self._base_live.get(tup):
            return ProofNode(tup, None, (), 0)
        ders = self._live_ders.get(tup)
        if ders:
            on_path = path | {tup}
            for derivation_id, _height in sorted(
                ders.items(), key=lambda item: (item[1], item[0])
            ):
                info = self._derivations.get(derivation_id)
                if info is None or any(m in on_path for m in info.body):
                    continue
                children = [self._prove(m, on_path) for m in info.body]
                height = 1 + max(
                    (child.height for child in children), default=0
                )
                return ProofNode(tup, info.rule_name, children, height)
        if self._insert_counts.get(tup):
            # Base support that was later deleted: the tuple's original
            # insertion still proves the (historic) body of a
            # non-revocable derivation above it.
            return ProofNode(tup, None, (), 0)
        raise ReproError(f"no proof recorded for {tup}")

    def _require_annotations(self) -> None:
        if not self._annotated:
            raise ReproError(
                "proof annotations were not recorded; run with "
                "EngineConfig(provenance='annotated')"
            )

    # -- materialization ------------------------------------------------------

    def materialize(self) -> ProvenanceGraph:
        """The full eager graph, reconstructing it on first call."""
        graph = self._graph
        if graph is None:
            telemetry = (
                self._recorder.telemetry if self._recorder is not None else None
            )
            if telemetry is not None:
                telemetry.inc("provenance.lazy.reconstructions")
            graph = ProvenanceGraph()
            for event in self._arena:
                apply_event(graph, event)
            self._graph = graph
            # The arena is fully consumed; record() applies directly
            # to the graph from here on.
            self._arena = []
        return graph

    def __getattr__(self, name):
        # Reached only when normal lookup fails, i.e. for eager-graph
        # APIs this facade does not implement cheaply.  Guard dunder
        # and private probes (pickle, copy) so they fail fast instead
        # of materializing.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.materialize(), name)

    def __repr__(self):
        state = (
            f"materialized, {len(self._graph)} vertices"
            if self._graph is not None
            else f"pending, {len(self._arena)} events"
        )
        return f"LazyProvenanceGraph({state})"
