"""Provenance recorder: builds the graph while the system runs.

Supports the first two of the paper's three extraction modes
(Section 5):

- **inferred** — attach the recorder to a
  :class:`repro.datalog.engine.Engine`; the engine invokes the ``on_*``
  callbacks and the recorder mirrors every event into the graph.

- **reported** — an instrumented system (the imperative MapReduce
  runtime) calls the ``report_*`` methods explicitly.  The recorder
  maintains its own logical clock in this mode.

The third mode (external specifications over packet traces) lives in
:mod:`repro.provenance.external`.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence

from ..datalog.config import PROVENANCE_MODES
from ..datalog.state import Derivation
from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..observability import active as _active_telemetry
from .graph import DerivationInfo, ProvenanceGraph
from .lazy import LazyProvenanceGraph
from .vertices import VertexKind

__all__ = ["ProvenanceRecorder"]


class ProvenanceRecorder:
    """Builds a :class:`ProvenanceGraph` from engine or reported events.

    ``provenance`` selects the construction mode (see
    :mod:`repro.datalog.config`):

    - ``"annotated"`` (default) — lazy arena recording plus per-tuple
      min-height/first-derivation annotations; minimal proof trees are
      reconstructed on demand via ``graph.minimal_proof()`` without
      materializing a single vertex;
    - ``"lazy"`` — arena recording only (see
      :mod:`repro.provenance.lazy`); the seven-vertex graph is
      reconstructed when something projects a tree or serializes;
    - ``"eager"`` — classic eager construction, the reference mode the
      equivalence tests compare against.  Passing an explicit ``graph``
      also forces eager mode.

    The old ``lazy=`` boolean is a deprecated shim for
    ``provenance="lazy"``/``"eager"``.
    """

    def __init__(
        self,
        graph: Optional[ProvenanceGraph] = None,
        faults=None,
        telemetry=None,
        lazy: Optional[bool] = None,
        provenance: Optional[str] = None,
    ):
        if lazy is not None:
            if provenance is not None:
                raise ValueError(
                    "pass either provenance= or the deprecated lazy= "
                    "boolean, not both"
                )
            warnings.warn(
                "ProvenanceRecorder(lazy=) is deprecated; pass "
                "provenance='lazy'/'eager' (or an EngineConfig upstream)",
                DeprecationWarning,
                stacklevel=2,
            )
            provenance = "lazy" if lazy else "eager"
        if provenance is None:
            provenance = "annotated"
        if provenance not in PROVENANCE_MODES:
            raise ValueError(
                f"unknown provenance mode {provenance!r}; expected one "
                f"of {', '.join(PROVENANCE_MODES)}"
            )
        self.provenance = provenance
        if graph is not None:
            self.graph = graph
            self._lazy = None
        elif provenance == "eager":
            self.graph = ProvenanceGraph()
            self._lazy = None
        else:
            self._lazy = LazyProvenanceGraph(
                self, annotated=(provenance == "annotated")
            )
            self.graph = self._lazy
        # Optional FaultInjector modelling lossy provenance logging: a
        # fraction of events is acknowledged (the clock still advances)
        # but never persisted into the graph.
        self.faults = faults
        # Optional Telemetry; None means no instrumentation.
        self.telemetry = _active_telemetry(telemetry)
        self.seen_events = 0
        self.lost_events = 0
        self._clock = 0  # used only by the report_* (instrumented) API
        self._next_reported_id = -1  # reported derivations count downward

    def __getstate__(self):
        # Strip telemetry before snapshotting/pickling (see
        # Engine.__getstate__); callers reattach after restore.
        state = self.__dict__.copy()
        state["telemetry"] = None
        return state

    def _keep(self, kind: str) -> bool:
        """Whether one logged event survives; counts losses either way."""
        self.seen_events += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.inc("recorder.events.seen")
            telemetry.inc("recorder.events." + kind)
        if self.faults is not None and not self.faults.keep_log_event(kind):
            self.lost_events += 1
            if telemetry is not None:
                telemetry.inc("recorder.events.lost")
            return False
        return True

    def _vertex(self, kind, node, tup, time, children=(), **extra):
        """``graph.add_vertex`` plus per-kind vertex/edge accounting."""
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.inc("recorder.vertices." + kind.name.lower())
            if children:
                telemetry.inc("recorder.edges", len(children))
        return self.graph.add_vertex(
            kind, node, tup, time, children=children, **extra
        )

    # ------------------------------------------------------------------
    # Inferred mode: callbacks invoked by the engine.
    # ------------------------------------------------------------------

    def on_insert(self, node: str, tup: Tuple, time: int, mutable: bool) -> None:
        if not self._keep("insert"):
            self._bump(time)
            return
        if self._lazy is not None:
            self._lazy.record(("ins", node, tup, time, mutable))
        else:
            self._vertex(
                VertexKind.INSERT, node, tup, time, mutable=mutable
            )
        self._bump(time)

    def on_delete(self, node: str, tup: Tuple, time: int) -> None:
        if not self._keep("delete"):
            self._bump(time)
            return
        if self._lazy is not None:
            self._lazy.record(("del", node, tup, time))
        else:
            self._vertex(VertexKind.DELETE, node, tup, time)
        self._bump(time)

    def on_appear(self, node: str, tup: Tuple, time: int, cause) -> None:
        if not self._keep("appear"):
            self._bump(time)
            return
        kind, payload = cause
        if kind not in ("insert", "derive"):  # pragma: no cover - defensive
            raise ReproError(f"unknown appear cause {kind!r}")
        if self._lazy is not None:
            derivation_id = payload.id if kind == "derive" else None
            self._lazy.record(("app", node, tup, time, kind, derivation_id))
            self._bump(time)
            return
        if kind == "insert":
            parent = self.graph.latest_insert(tup)
            children = [parent] if parent is not None else []
        else:
            derive_vertex = self.graph.derive_vertex(payload.id)
            children = [derive_vertex] if derive_vertex is not None else []
        appear = self._vertex(
            VertexKind.APPEAR, node, tup, time, children=children
        )
        self._vertex(
            VertexKind.EXIST, node, tup, time, children=[appear]
        )
        self._bump(time)

    def on_disappear(self, node: str, tup: Tuple, time: int, cause) -> None:
        if not self._keep("disappear"):
            # A lost disappear leaves the EXIST interval open — the log
            # never learned the tuple died.
            self._bump(time)
            return
        kind, payload = cause
        if self._lazy is not None:
            derivation_id = payload.id if payload is not None else None
            self._lazy.record(("dis", node, tup, time, kind, derivation_id))
            self._bump(time)
            return
        children = []
        if kind == "underive" and payload is not None:
            derive_vertex = self.graph.derive_vertex(payload.id)
            if derive_vertex is not None:
                children = [derive_vertex]
        self.graph.close_exist(tup, time)
        self._vertex(
            VertexKind.DISAPPEAR, node, tup, time, children=children
        )
        self._bump(time)

    def on_derive(self, node: str, derivation: Derivation, time: int) -> None:
        if not self._keep("derive"):
            self._bump(time)
            return
        info = DerivationInfo(
            derivation.id,
            derivation.rule_name,
            derivation.head,
            derivation.body,
            derivation.env,
            derivation.trigger_index,
            time,
        )
        self._add_derive(node, info, time)

    def on_underive(self, node: str, derivation: Derivation, time: int) -> None:
        if not self._keep("underive"):
            self._bump(time)
            return
        if self._lazy is not None:
            self._lazy.record(
                ("und", node, derivation.head, time,
                 derivation.rule_name, derivation.id)
            )
            self._bump(time)
            return
        derive_vertex = self.graph.derive_vertex(derivation.id)
        children = [derive_vertex] if derive_vertex is not None else []
        self._vertex(
            VertexKind.UNDERIVE,
            node,
            derivation.head,
            time,
            children=children,
            rule=derivation.rule_name,
            derivation_id=derivation.id,
        )
        self._bump(time)

    # ------------------------------------------------------------------
    # Reported mode: explicit instrumentation hooks.
    # ------------------------------------------------------------------

    def report_insert(
        self,
        node: str,
        tup: Tuple,
        mutable: bool = True,
        time: Optional[int] = None,
    ) -> None:
        """Report a base tuple (external input / configuration state)."""
        time = self._reported_time(time)
        self.on_insert(node, tup, time, mutable)
        self.on_appear(node, tup, time, ("insert", None))

    def report_delete(self, node: str, tup: Tuple, time: Optional[int] = None) -> None:
        time = self._reported_time(time)
        self.on_delete(node, tup, time)
        if self._lazy is not None:
            self._lazy.record(("dis", node, tup, time, "delete", None))
            return
        self.graph.close_exist(tup, time)
        self._vertex(VertexKind.DISAPPEAR, node, tup, time)

    def report_derive(
        self,
        node: str,
        head: Tuple,
        rule_name: str,
        body: Sequence[Tuple],
        env: Optional[Dict[str, object]] = None,
        trigger_index: Optional[int] = None,
        time: Optional[int] = None,
    ) -> DerivationInfo:
        """Report a dependency: ``head`` was computed from ``body``.

        Every body tuple must have been reported (or derived) earlier —
        an instrumented system reports dependencies in causal order.
        """
        time = self._reported_time(time)
        body = tuple(body)
        if self.faults is None:
            # Under lossy logging a body member's report may simply have
            # been dropped; the causal-order invariant is unenforceable.
            for member in body:
                if self.graph.exist_at(member, time) is None:
                    raise ReproError(
                        f"reported derivation of {head} depends on {member}, "
                        f"which has never been reported"
                    )
        if trigger_index is None:
            trigger_index = self._latest_appearing(body, time)
        info = DerivationInfo(
            self._next_reported_id,
            rule_name,
            head,
            body,
            env or {},
            trigger_index,
            time,
        )
        self._next_reported_id -= 1
        self._add_derive(node, info, time)
        self.on_appear(node, head, time, ("derive", info))
        return info

    # ------------------------------------------------------------------
    # Shared internals.
    # ------------------------------------------------------------------

    def _add_derive(self, node: str, info: DerivationInfo, time: int) -> None:
        if self._lazy is not None:
            self._lazy.record(("der", node, info, time))
            self._bump(time)
            return
        self.graph.add_derivation(info)
        children = []
        for member in info.body:
            exist = self.graph.exist_at(member, time)
            if exist is None:
                # The body member should exist when the rule fires; fall
                # back to its latest interval so the graph stays connected.
                exist = self.graph.exist_at(member)
            if exist is not None:
                children.append(exist)
        self._vertex(
            VertexKind.DERIVE,
            node,
            info.head,
            time,
            children=children,
            rule=info.rule_name,
            derivation_id=info.id,
        )
        self._bump(time)

    def _latest_appearing(self, body, time: int) -> int:
        best_index = 0
        best_time = -1
        for index, member in enumerate(body):
            appears = self.graph.appears_of(member)
            relevant = [v.time for v in appears if v.time <= time]
            appeared = max(relevant) if relevant else -1
            if appeared > best_time:
                best_time = appeared
                best_index = index
        return best_index

    def _reported_time(self, time: Optional[int]) -> int:
        if time is not None:
            self._bump(time)
            return time
        self._clock += 1
        return self._clock

    def _bump(self, time: int) -> None:
        if time > self._clock:
            self._clock = time
