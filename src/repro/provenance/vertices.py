"""The seven provenance vertex types of Section 3.2.

- ``INSERT(n, τ, t)`` / ``DELETE(n, τ, t)``: base tuple τ was inserted
  (deleted) on node n at time t;
- ``EXIST(n, τ, [t1, t2])``: τ existed on n from t1 to t2;
- ``DERIVE(n, τ, R, t)`` / ``UNDERIVE(n, τ, R, t)``: τ was derived
  (underived) via rule R on n at t;
- ``APPEAR(n, τ, t)`` / ``DISAPPEAR(n, τ, t)``: τ appeared
  (disappeared) on n at t.

Having INSERT, APPEAR and EXIST as separate vertexes looks redundant
but is load-bearing: DiffProv's seed search walks APPEAR timestamps
(Section 4.2), while equivalence checks and tree alignment operate on
EXIST intervals.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..datalog.tuples import Tuple

__all__ = ["VertexKind", "Vertex"]


class VertexKind(enum.Enum):
    INSERT = "INSERT"
    DELETE = "DELETE"
    EXIST = "EXIST"
    DERIVE = "DERIVE"
    UNDERIVE = "UNDERIVE"
    APPEAR = "APPEAR"
    DISAPPEAR = "DISAPPEAR"


class Vertex:
    """One vertex in the temporal provenance graph."""

    __slots__ = (
        "id",
        "kind",
        "node",
        "tuple",
        "time",
        "end_time",
        "rule",
        "derivation_id",
        "mutable",
    )

    def __init__(
        self,
        id: int,
        kind: VertexKind,
        node: str,
        tup: Tuple,
        time: int,
        end_time: Optional[int] = None,
        rule: Optional[str] = None,
        derivation_id: Optional[int] = None,
        mutable: Optional[bool] = None,
    ):
        self.id = id
        self.kind = kind
        self.node = node
        self.tuple = tup
        self.time = time
        self.end_time = end_time
        self.rule = rule
        self.derivation_id = derivation_id
        self.mutable = mutable

    @property
    def is_open(self) -> bool:
        """Whether this is an EXIST interval that has not closed."""
        return self.kind == VertexKind.EXIST and self.end_time is None

    def covers(self, time: int) -> bool:
        """Whether an EXIST interval covers the given instant."""
        if self.kind != VertexKind.EXIST:
            return self.time == time
        if time < self.time:
            return False
        return self.end_time is None or time <= self.end_time

    def label(self) -> str:
        """Human-readable label used in rendered trees."""
        if self.kind == VertexKind.EXIST:
            end = "now" if self.end_time is None else str(self.end_time)
            return f"EXIST({self.node}, {self.tuple}, [{self.time}, {end}])"
        if self.kind in (VertexKind.DERIVE, VertexKind.UNDERIVE):
            return (
                f"{self.kind.value}({self.node}, {self.tuple}, "
                f"{self.rule}, {self.time})"
            )
        return f"{self.kind.value}({self.node}, {self.tuple}, {self.time})"

    def __repr__(self):
        return f"Vertex(#{self.id} {self.label()})"
