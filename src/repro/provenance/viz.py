"""Graphviz (DOT) rendering of provenance trees.

``tree_to_dot`` draws one tree in the style of the paper's Figure 2(a);
``diff_to_dot`` draws the good and bad trees side by side with shared
vertexes green and differing ones red, like Figures 2(b) and 2(c) — the
picture that motivates why a naive diff is useless and differential
provenance is needed.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from .diff import vertex_label
from .tree import ProvenanceTree, TreeNode
from .vertices import VertexKind

__all__ = ["tree_to_dot", "diff_to_dot"]

_SHAPES = {
    VertexKind.INSERT: "box",
    VertexKind.DELETE: "box",
    VertexKind.EXIST: "ellipse",
    VertexKind.DERIVE: "hexagon",
    VertexKind.UNDERIVE: "hexagon",
    VertexKind.APPEAR: "ellipse",
    VertexKind.DISAPPEAR: "ellipse",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _emit_tree(lines: List[str], root: TreeNode, prefix: str, colors=None):
    counter = [0]

    def walk(node: TreeNode) -> str:
        name = f"{prefix}{counter[0]}"
        counter[0] += 1
        vertex = node.vertex
        color = ""
        if colors is not None:
            color = f', style=filled, fillcolor="{colors(vertex)}"'
        shape = _SHAPES.get(vertex.kind, "ellipse")
        lines.append(
            f'  {name} [label="{_escape(vertex.label())}", '
            f"shape={shape}{color}];"
        )
        for child in node.children:
            child_name = walk(child)
            lines.append(f"  {name} -> {child_name};")
        return name

    walk(root)


def tree_to_dot(tree: ProvenanceTree, title: str = "provenance") -> str:
    """One provenance tree as a DOT digraph."""
    lines = [f'digraph "{_escape(title)}" {{', "  rankdir=TB;"]
    _emit_tree(lines, tree.root, "v")
    lines.append("}")
    return "\n".join(lines)


def diff_to_dot(
    good: ProvenanceTree,
    bad: ProvenanceTree,
    title: str = "differential provenance",
) -> str:
    """Both trees, shared vertexes green and differing ones red.

    Sharing is determined by the same timestamp-insensitive labels the
    naive diff uses, so the picture shows exactly what that strawman
    sees — including the butterfly effect of red spreading up the tree.
    """
    good_counts = Counter(vertex_label(n.vertex) for n in good.root.walk())
    bad_counts = Counter(vertex_label(n.vertex) for n in bad.root.walk())
    shared = set((good_counts & bad_counts).keys())

    def colors(vertex):
        return "palegreen" if vertex_label(vertex) in shared else "lightcoral"

    lines = [f'digraph "{_escape(title)}" {{', "  rankdir=TB;"]
    lines.append('  subgraph cluster_good { label="good (T_G)";')
    _emit_tree(lines, good.root, "g", colors)
    lines.append("  }")
    lines.append('  subgraph cluster_bad { label="bad (T_B)";')
    _emit_tree(lines, bad.root, "b", colors)
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
