"""Classic provenance queries — the "Y!" baseline of the evaluation.

``provenance_query(graph, event)`` returns the full provenance tree of
a single event, exactly what systems like ExSPAN and Y! answer.  Table 1
and Figure 7 compare DiffProv against these single-tree queries.
"""

from __future__ import annotations

from typing import Optional

from ..datalog.tuples import Tuple
from ..errors import ReproError
from .graph import ProvenanceGraph
from .tree import ProvenanceTree

__all__ = ["provenance_query"]


def provenance_query(
    graph: ProvenanceGraph, event: Tuple, time: Optional[int] = None
) -> ProvenanceTree:
    """The provenance tree of ``event`` as of ``time`` (default: latest).

    Raises :class:`ReproError` when the event never occurred — a
    provenance system can only explain events it has observed.  (The
    paper's Y! extends this to *missing* events via negative
    provenance; that is out of scope here, and DiffProv does not need
    it.)
    """
    root = graph.exist_at(event, time)
    if root is None:
        raise ReproError(
            f"event {event} was never observed"
            + (f" at time {time}" if time is not None else "")
        )
    return ProvenanceTree(graph, root)
